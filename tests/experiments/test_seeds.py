"""Tests for deterministic seed management."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.seeds import rng_from, spawn_seeds, trial_seeds


def test_spawn_seeds_deterministic_and_distinct():
    first = spawn_seeds(7, 10)
    second = spawn_seeds(7, 10)
    assert first == second
    assert len(set(first)) == 10
    assert spawn_seeds(8, 10) != first


def test_spawn_seeds_rejects_negative_count():
    with pytest.raises(ConfigurationError):
        spawn_seeds(0, -1)


def test_rng_from_is_stable_and_key_sensitive():
    a = rng_from(0, "table1", "bfw", 3).integers(0, 1_000_000)
    b = rng_from(0, "table1", "bfw", 3).integers(0, 1_000_000)
    c = rng_from(0, "table1", "bfw", 4).integers(0, 1_000_000)
    d = rng_from(0, "table1", "other", 3).integers(0, 1_000_000)
    assert a == b
    assert a != c or a != d  # different keys give (almost surely) different streams


def test_trial_seeds_stable():
    assert trial_seeds(1, "exp", 5) == trial_seeds(1, "exp", 5)
    assert trial_seeds(1, "exp", 5) != trial_seeds(1, "other", 5)
    assert len(trial_seeds(1, "exp", 50)) == 50


def test_trial_seeds_rejects_negative():
    with pytest.raises(ConfigurationError):
        trial_seeds(1, "exp", -2)
