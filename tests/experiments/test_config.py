"""Tests for experiment configuration objects."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    GraphSpec,
    ProtocolSpecConfig,
    SweepConfig,
    TrialConfig,
)


def test_graph_spec_label_and_validation():
    spec = GraphSpec(family="path", n=32)
    assert spec.label == "path(32)"
    with pytest.raises(ConfigurationError):
        GraphSpec(family="not-a-family", n=10)
    with pytest.raises(ConfigurationError):
        GraphSpec(family="path", n=0)


def test_protocol_spec_label_includes_params():
    plain = ProtocolSpecConfig(name="bfw")
    assert plain.label == "bfw"
    parameterised = ProtocolSpecConfig(name="bfw", params={"beep_probability": 0.25})
    assert parameterised.label == "bfw[beep_probability=0.25]"


def test_sweep_config_cells():
    sweep = SweepConfig(
        name="test",
        protocols=(ProtocolSpecConfig(name="bfw"), ProtocolSpecConfig(name="emek-keren")),
        graphs=(GraphSpec(family="path", n=8), GraphSpec(family="clique", n=8)),
        num_seeds=3,
    )
    assert len(sweep.cells()) == 4


def test_sweep_config_validation():
    with pytest.raises(ConfigurationError):
        SweepConfig(name="x", protocols=(), graphs=(GraphSpec("path", 4),))
    with pytest.raises(ConfigurationError):
        SweepConfig(
            name="x",
            protocols=(ProtocolSpecConfig(name="bfw"),),
            graphs=(),
        )
    with pytest.raises(ConfigurationError):
        SweepConfig(
            name="x",
            protocols=(ProtocolSpecConfig(name="bfw"),),
            graphs=(GraphSpec("path", 4),),
            num_seeds=0,
        )


def test_trial_config_holds_fields():
    trial = TrialConfig(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=12),
        seed=99,
        max_rounds=500,
    )
    assert trial.seed == 99
    assert trial.max_rounds == 500
