"""Tests for the trial/sweep runner and the protocol dispatch."""

import pytest

from repro.baselines import PipelinedIDElection
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.errors import ConfigurationError
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig, TrialConfig
from repro.experiments.runner import (
    instantiate_protocol,
    run_protocol_on,
    run_sweep,
    run_trial,
)
from repro.graphs.generators import clique_graph, path_graph


def test_instantiate_bfw_family():
    topology = path_graph(9)
    assert isinstance(instantiate_protocol("bfw", topology), BFWProtocol)
    nonuniform = instantiate_protocol("bfw-nonuniform", topology)
    assert isinstance(nonuniform, NonUniformBFWProtocol)
    assert nonuniform.diameter == topology.diameter()


def test_instantiate_baselines_with_graph_knowledge():
    topology = path_graph(9)
    id_broadcast = instantiate_protocol("id-broadcast", topology)
    assert id_broadcast.requires_unique_ids
    random_ids = instantiate_protocol("id-broadcast-random", topology)
    assert not random_ids.requires_unique_ids
    assert isinstance(instantiate_protocol("pipelined-ids", topology), PipelinedIDElection)
    epochs = instantiate_protocol("emek-keren", topology)
    assert epochs.epoch_length == topology.diameter() + 2


def test_instantiate_unknown_protocol():
    with pytest.raises(ConfigurationError):
        instantiate_protocol("quantum-election", path_graph(4))


def test_run_protocol_on_dispatch():
    topology = clique_graph(10)
    # Constant-state protocol -> vectorised engine.
    result_bfw = run_protocol_on(topology, BFWProtocol(), rng=0)
    assert result_bfw.converged
    # Memory protocol -> memory simulator.
    knockout = instantiate_protocol("gilbert-newport", topology)
    result_knockout = run_protocol_on(topology, knockout, rng=0)
    assert result_knockout.converged
    # Standalone runner.
    result_pipelined = run_protocol_on(topology, PipelinedIDElection(), rng=0)
    assert result_pipelined.converged


def test_run_protocol_on_rejects_unknown_objects():
    with pytest.raises(ConfigurationError):
        run_protocol_on(path_graph(4), object())


def test_run_trial_produces_record():
    trial = TrialConfig(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=10),
        seed=5,
    )
    record = run_trial(trial)
    assert record.protocol == "bfw"
    assert record.graph == "cycle(10)"
    assert record.n == 10
    assert record.diameter == 5
    assert record.converged
    assert record.convergence_round is not None


def test_run_sweep_counts_and_progress():
    sweep = SweepConfig(
        name="tiny",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=(GraphSpec(family="clique", n=8), GraphSpec(family="path", n=6)),
        num_seeds=2,
        master_seed=3,
    )
    lines = []
    records = run_sweep(sweep, progress=lines.append)
    assert len(records) == 4
    assert len(lines) == 2
    assert all(record.converged for record in records)


def test_run_sweep_is_reproducible():
    sweep = SweepConfig(
        name="repro-check",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=(GraphSpec(family="cycle", n=8),),
        num_seeds=3,
        master_seed=11,
    )
    first = [record.convergence_round for record in run_sweep(sweep)]
    second = [record.convergence_round for record in run_sweep(sweep)]
    assert first == second
