"""Tests for the Monte-Carlo runner and its sweep wiring."""

import numpy as np
import pytest

from repro.baselines import GilbertNewportKnockout, PipelinedIDElection
from repro.core.bfw import BFWProtocol
from repro.errors import ConfigurationError
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.figures import scaling_experiment
from repro.experiments.montecarlo import (
    MonteCarloRunner,
    run_monte_carlo,
)
from repro.experiments.runner import run_protocol_batch_on, run_sweep
from repro.experiments.seeds import replica_streams, trial_seeds
from repro.graphs.generators import clique_graph, cycle_graph, path_graph


def test_runner_routes_constant_state_protocols_to_batched_engine():
    batch = MonteCarloRunner().run(cycle_graph(16), BFWProtocol(), [1, 2, 3])
    assert batch.num_replicas == 3
    assert batch.final_states is not None  # batched path carries states
    assert batch.converged.all()


def test_runner_routes_memory_baselines_to_the_batched_memory_engine():
    topology = clique_graph(8)
    protocol = GilbertNewportKnockout()
    batch = MonteCarloRunner().run(topology, protocol, [1, 2])
    assert batch.num_replicas == 2
    assert batch.final_states is None  # memory baselines carry no state vector
    assert batch.seeds == (1, 2)
    # ... but the batched engine does record the elected node.
    assert batch.converged.all()
    assert ((batch.leader_node >= 0) & (batch.leader_node < topology.n)).all()
    # Trajectories are always kept on this path, like the loop it replaced.
    assert batch.leader_counts is not None


def test_runner_routes_pipelined_ids_through_run_batch():
    topology = cycle_graph(8)
    batch = MonteCarloRunner().run(topology, PipelinedIDElection(), [1, 2])
    assert batch.num_replicas == 2
    assert batch.final_states is None  # the batch entry point carries none
    # Unlike the per-seed loop it replaced, run_batch records the winners.
    assert ((batch.leader_node >= 0) & (batch.leader_node < topology.n)).all()
    assert batch.seeds == (1, 2)
    # Byte-identical to looping run() over the seeds (the routing contract).
    loop = [
        PipelinedIDElection().run(topology, rng=seed, max_rounds=None)
        for seed in (1, 2)
    ]
    for index, single in enumerate(loop):
        assert bool(batch.converged[index]) == single.converged
        assert int(batch.convergence_round[index]) == single.convergence_round
        assert int(batch.rounds_executed[index]) == single.rounds_executed


def test_runner_keeps_batchless_standalone_runners_on_the_loop_path():
    class LoopOnlyRunner:
        """A standalone runner without a run_batch entry point."""

        def run(self, topology, rng=None, max_rounds=None):
            return PipelinedIDElection().run(topology, rng=rng, max_rounds=max_rounds)

    topology = cycle_graph(8)
    batch = MonteCarloRunner().run(topology, LoopOnlyRunner(), [1, 2])
    assert batch.num_replicas == 2
    assert batch.final_states is None  # assembled from single runs
    assert (batch.leader_node == -1).all()
    assert batch.seeds == (1, 2)


def test_report_counts_distinct_leaders_for_pipelined_ids():
    report = run_monte_carlo(
        protocol="pipelined-ids", graph="cycle", n=8, replicas=2, master_seed=1
    )
    assert report.batched is True
    assert 1 <= report.distinct_leaders <= 2
    assert "unknown" not in report.render()


def test_report_counts_distinct_leaders_for_batched_memory_baselines():
    report = run_monte_carlo(
        protocol="emek-keren", graph="cycle", n=12, replicas=6, master_seed=2
    )
    assert report.batched is True
    assert report.convergence_rate == 1.0
    assert 1 <= report.distinct_leaders <= 6
    assert "unknown" not in report.render()


def test_runner_rejects_empty_seed_list():
    with pytest.raises(ConfigurationError):
        MonteCarloRunner().run(cycle_graph(8), BFWProtocol(), [])


def test_batch_matches_loop_for_memory_protocols():
    from repro.experiments.runner import run_protocol_on

    topology = cycle_graph(8)
    seeds = [3, 4, 5]
    batch = run_protocol_batch_on(topology, GilbertNewportKnockout(), seeds)
    for index, seed in enumerate(seeds):
        single = run_protocol_on(topology, GilbertNewportKnockout(), rng=seed)
        replica = batch.replica(index)
        assert replica.converged == single.converged
        assert replica.convergence_round == single.convergence_round
        assert replica.rounds_executed == single.rounds_executed


def test_run_sweep_batched_records_are_identical():
    sweep = SweepConfig(
        name="parity-sweep",
        protocols=(
            ProtocolSpecConfig("bfw"),
            ProtocolSpecConfig("gilbert-newport"),
        ),
        graphs=(GraphSpec("cycle", 16), GraphSpec("path", 9)),
        num_seeds=5,
        master_seed=11,
    )
    assert run_sweep(sweep) == run_sweep(sweep, backend="batched")


def test_scaling_experiment_batched_is_identical():
    kwargs = dict(
        mode="uniform", family="cycle", diameters=(4, 8), num_seeds=4, master_seed=6
    )
    looped = scaling_experiment(**kwargs)
    batched = scaling_experiment(backend="batched", **kwargs)
    assert looped.points == batched.points
    assert looped.power_law == batched.power_law


def test_run_monte_carlo_is_reproducible_and_seeded_from_trial_seeds():
    first = run_monte_carlo(
        protocol="bfw", graph="cycle", n=24, replicas=6, master_seed=9
    )
    second = run_monte_carlo(
        protocol="bfw", graph="cycle", n=24, replicas=6, master_seed=9
    )
    np.testing.assert_array_equal(
        first.result.effective_rounds(), second.result.effective_rounds()
    )
    np.testing.assert_array_equal(first.result.leader_node, second.result.leader_node)
    assert first.result.seeds == trial_seeds(9, "montecarlo/bfw/cycle/24", 6)
    assert first.convergence_rate == 1.0
    assert first.num_replicas == 6
    assert 1 <= first.distinct_leaders <= 6
    rendered = first.render()
    assert "Monte Carlo" in rendered
    assert "replica-rounds/sec" in rendered


def test_run_monte_carlo_rejects_bad_replica_count():
    with pytest.raises(ConfigurationError):
        run_monte_carlo(replicas=0)


def test_replica_streams_match_trial_seed_generators():
    streams = replica_streams(4, "exp", 3)
    assert streams.seed_values == trial_seeds(4, "exp", 3)
    for index, seed in enumerate(streams.seed_values):
        np.testing.assert_array_equal(
            streams.generator(index).random(4),
            np.random.default_rng(seed).random(4),
        )
