"""Tests for the figure-shaped experiments (scaling, lower bound, ablation)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import (
    ablation_experiment,
    crossover_experiment,
    lower_bound_experiment,
    scaling_experiment,
)


def test_scaling_experiment_uniform_small():
    result = scaling_experiment(
        mode="uniform", diameters=(4, 8, 16), num_seeds=4, master_seed=1
    )
    assert result.mode == "uniform"
    assert [point.diameter for point in result.points] == [4, 8, 16]
    assert all(point.convergence_rate == 1.0 for point in result.points)
    # Convergence time grows super-linearly in D for the uniform protocol.
    assert result.power_law.exponent > 1.2
    assert "scaling" in result.render().lower()


def test_scaling_experiment_nonuniform_small():
    result = scaling_experiment(
        mode="nonuniform", diameters=(4, 8, 16), num_seeds=4, master_seed=2
    )
    assert all(point.convergence_rate == 1.0 for point in result.points)
    # The non-uniform protocol's exponent is visibly smaller than quadratic.
    assert result.power_law.exponent < 1.9


def test_scaling_experiment_rejects_bad_mode():
    with pytest.raises(ConfigurationError):
        scaling_experiment(mode="warp-speed")


def test_crossover_speedups_favour_nonuniform():
    result = crossover_experiment(diameters=(8, 16), num_seeds=4)
    assert len(result.speedups) == 2
    # At these diameters the non-uniform variant is already faster on average.
    for _, speedup in result.speedups:
        assert speedup > 1.0
    assert "Speed-up" in result.render()


def test_lower_bound_experiment_quadratic_shape():
    result = lower_bound_experiment(diameters=(8, 16, 32), num_seeds=8, master_seed=3)
    assert len(result.points) == 3
    # Elimination time normalised by D^2 stays within a constant band.
    ratios = [point.normalised_by_d2 for point in result.points]
    assert max(ratios) / min(ratios) < 6.0
    # The fitted exponent is clearly super-linear.
    assert result.power_law.exponent > 1.3
    assert "conjecture" in result.render().lower() or "D^" in result.render()


def test_ablation_experiment_small():
    result = ablation_experiment(
        diameter=8, probabilities=(0.25, 0.5), num_seeds=3, master_seed=4
    )
    assert len(result.sweep_points) == 2
    assert all(point.convergence_rate == 1.0 for point in result.sweep_points)
    by_variant = {outcome.variant: outcome for outcome in result.ablations}
    assert by_variant["bfw (full)"].convergence_rate == 1.0
    # Removing wave relaying prevents convergence on a diameter-8 path.
    assert by_variant["no-relay"].convergence_rate == 0.0
    assert "ablation" in result.render().lower() or "variant" in result.render()


def test_lower_bound_experiment_batched_is_identical():
    kwargs = dict(diameters=(4, 8), num_seeds=4, master_seed=3)
    looped = lower_bound_experiment(**kwargs)
    batched = lower_bound_experiment(backend="batched", **kwargs)
    # The batched engine reproduces each planted-leaders run exactly, so the
    # whole result object — summaries and fitted exponent included — matches.
    assert looped == batched


def test_ablation_experiment_batched_is_identical():
    kwargs = dict(
        diameter=6, probabilities=(0.25, 0.5), num_seeds=3, master_seed=4
    )
    looped = ablation_experiment(**kwargs)
    batched = ablation_experiment(backend="batched", **kwargs)
    assert looped == batched
