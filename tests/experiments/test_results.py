"""Tests for result records and aggregation."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.results import (
    TrialRecord,
    aggregate_records,
    records_to_arrays,
)


def _record(protocol="bfw", graph="path(8)", seed=0, rounds=100, converged=True):
    return TrialRecord(
        protocol=protocol,
        graph=graph,
        n=8,
        diameter=7,
        seed=seed,
        converged=converged,
        convergence_round=rounds if converged else None,
        rounds_executed=rounds,
    )


def test_record_as_dict_includes_extras():
    record = TrialRecord(
        protocol="bfw",
        graph="path(8)",
        n=8,
        diameter=7,
        seed=1,
        converged=True,
        convergence_round=42,
        rounds_executed=42,
        extra={"stage_rounds": 10},
    )
    payload = record.as_dict()
    assert payload["stage_rounds"] == 10
    assert payload["convergence_round"] == 42


def test_aggregate_records_groups_by_cell():
    records = [
        _record(seed=0, rounds=100),
        _record(seed=1, rounds=200),
        _record(protocol="emek-keren", seed=0, rounds=50),
    ]
    summaries = aggregate_records(records)
    assert len(summaries) == 2
    bfw_summary = next(s for s in summaries if s.protocol == "bfw")
    assert bfw_summary.num_trials == 2
    assert bfw_summary.rounds.mean == pytest.approx(150.0)
    assert bfw_summary.convergence_rate == 1.0


def test_aggregate_records_counts_nonconverged():
    records = [
        _record(seed=0, rounds=100),
        _record(seed=1, rounds=500, converged=False),
    ]
    (summary,) = aggregate_records(records)
    assert summary.num_converged == 1
    assert summary.convergence_rate == pytest.approx(0.5)
    # Non-converged trials contribute their executed rounds as lower bounds.
    assert summary.rounds.maximum == 500


def test_cell_summary_as_dict():
    (summary,) = aggregate_records([_record()])
    payload = summary.as_dict()
    assert payload["protocol"] == "bfw"
    assert payload["rounds_mean"] == pytest.approx(100.0)


def test_records_to_arrays():
    arrays = records_to_arrays([_record(seed=0), _record(seed=1, rounds=300)])
    assert arrays["n"].shape == (2,)
    assert arrays["convergence_round"][1] == pytest.approx(300.0)
    with pytest.raises(ConfigurationError):
        records_to_arrays([])
