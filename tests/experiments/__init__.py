"""Test package."""
