"""Tests for the leader-extinction experiment (E15)."""

import numpy as np
import pytest

from repro.batch import LeaderExtinctionReport
from repro.errors import ConfigurationError
from repro.experiments.dynamics import DEFAULT_DYNAMIC_MAX_ROUNDS
from repro.experiments.extinction import leader_extinction_experiment


def _small(**kwargs):
    defaults = dict(
        families=("cycle",),
        sizes=(12,),
        churn_rates=(0, 2),
        num_seeds=4,
        max_rounds=1500,
    )
    defaults.update(kwargs)
    return leader_extinction_experiment(**defaults)


def test_extinction_experiment_static_row_is_clean():
    result = _small()
    assert len(result.rows) == 2
    static_row, churn_row = result.rows
    assert static_row.schedule == "static" and static_row.churn_rate == 0
    # Lemma 9 holds on static graphs: the control row must measure zero.
    assert static_row.extinction_rate == 0.0
    assert static_row.absorbed_rate == 0.0
    assert static_row.mean_extinction_round is None
    assert static_row.capped_runs == 0
    assert churn_row.churn_rate == 2
    assert isinstance(churn_row.report, LeaderExtinctionReport)
    assert churn_row.report.num_replicas == 4


def test_extinction_experiment_is_backend_invariant():
    sequential = _small(backend="sequential")
    batched = _small(backend="batched")
    assert sequential.records == batched.records
    for row_a, row_b in zip(sequential.rows, batched.rows):
        assert row_a.extinction_rate == row_b.extinction_rate
        assert row_a.report == row_b.report


def test_extinction_experiment_measures_extinction_under_heavy_churn():
    # The ROADMAP's measured finding at sweep scale: disconnect-capable
    # churn on small cycles destroys every leader in some replicas, after
    # which the configuration is absorbing — extinct replicas never
    # converge and burn their whole (capped) budget.
    result = leader_extinction_experiment(
        families=("cycle",),
        sizes=(16,),
        churn_rates=(0, 4, 8),
        num_seeds=20,
        max_rounds=1500,
    )
    static_row = result.rows[0]
    assert static_row.extinction_rate == 0.0
    churned = result.rows[1:]
    assert any(row.extinction_rate > 0 for row in churned)
    for row in churned:
        report = row.report
        extinct = report.extinct
        # Absorbing: every extinct replica ends leaderless and never
        # converges, so it is exactly the capped set.
        np.testing.assert_array_equal(report.leaderless_final, extinct)
        assert row.capped_runs == int(extinct.sum())
        if extinct.any():
            assert (report.rounds_observed[extinct] == result.max_rounds).all()


def test_extinction_experiment_caps_budget_by_default():
    result = _small(max_rounds=None, churn_rates=(2,))
    assert result.max_rounds == DEFAULT_DYNAMIC_MAX_ROUNDS


def test_extinction_experiment_renders_table():
    rendered = _small().render()
    assert "Leader extinction" in rendered
    assert "E15" in rendered
    assert "extinct" in rendered
    assert "static" in rendered


def test_extinction_experiment_validates_inputs():
    with pytest.raises(ConfigurationError, match="num_seeds"):
        _small(num_seeds=0)
    with pytest.raises(ConfigurationError, match="at least one"):
        _small(churn_rates=())
    with pytest.raises(ConfigurationError, match="max_rounds"):
        _small(max_rounds=0)
