"""Tests for result serialisation."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.io import (
    load_records_json,
    save_records_csv,
    save_records_json,
    save_summaries_csv,
)
from repro.experiments.results import TrialRecord, aggregate_records


def _records():
    return [
        TrialRecord(
            protocol="bfw",
            graph="path(8)",
            n=8,
            diameter=7,
            seed=seed,
            converged=True,
            convergence_round=100 + seed,
            rounds_executed=100 + seed,
            extra={"note": "x"},
        )
        for seed in range(3)
    ]


def test_json_round_trip(tmp_path):
    records = _records()
    path = tmp_path / "out" / "records.json"
    save_records_json(records, path)
    loaded = load_records_json(path)
    assert len(loaded) == 3
    assert loaded[0].protocol == "bfw"
    assert loaded[2].convergence_round == 102
    assert loaded[0].extra == {"note": "x"}


def test_json_rejects_non_list(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "a list"}', encoding="utf-8")
    with pytest.raises(ConfigurationError):
        load_records_json(path)


def test_csv_output(tmp_path):
    records = _records()
    path = tmp_path / "records.csv"
    save_records_csv(records, path)
    content = path.read_text(encoding="utf-8")
    assert "protocol" in content.splitlines()[0]
    assert len(content.splitlines()) == 4


def test_csv_rejects_empty(tmp_path):
    with pytest.raises(ConfigurationError):
        save_records_csv([], tmp_path / "empty.csv")


def test_summaries_csv(tmp_path):
    summaries = aggregate_records(_records())
    path = tmp_path / "summaries.csv"
    save_summaries_csv(summaries, path)
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    assert "rounds_mean" in lines[0]
