"""Tests for the Table-1 generator (kept small so the suite stays fast)."""

import pytest

from repro.experiments.config import GraphSpec
from repro.experiments.tables import (
    BFW_NONUNIFORM_INFO,
    BFW_UNIFORM_INFO,
    DEFAULT_TABLE1_PROTOCOLS,
    TABLE1_INFO,
    generate_table1,
)


def test_bfw_rows_match_the_paper():
    assert BFW_UNIFORM_INFO.round_complexity == "O(D^2 log n)"
    assert BFW_UNIFORM_INFO.knowledge == "none"
    assert BFW_UNIFORM_INFO.states == "O(1)"
    assert not BFW_UNIFORM_INFO.termination_detection
    assert BFW_NONUNIFORM_INFO.round_complexity == "O(D log n)"
    assert BFW_NONUNIFORM_INFO.knowledge == "D"


def test_every_default_protocol_has_qualitative_info():
    for name in DEFAULT_TABLE1_PROTOCOLS:
        assert name in TABLE1_INFO


def test_generate_table1_small():
    result = generate_table1(
        protocols=("bfw", "bfw-nonuniform", "gilbert-newport"),
        graphs=(GraphSpec(family="clique", n=16), GraphSpec(family="path", n=9)),
        num_seeds=2,
        master_seed=7,
    )
    assert result.graph_labels == ("clique(16)", "path(9)")
    assert len(result.rows) == 3
    # Every cell that ran converged in this small setting.
    assert all(record.converged for record in result.records)
    # The clique-only baseline has no measurement on the path.
    knockout_row = next(row for row in result.rows if row.protocol == "gilbert-newport")
    assert "path(9)" not in knockout_row.measured_rounds
    assert "clique(16)" in knockout_row.measured_rounds
    # BFW has measurements everywhere.
    bfw_row = next(row for row in result.rows if row.protocol == "bfw")
    assert set(bfw_row.measured_rounds) == {"clique(16)", "path(9)"}
    rendering = result.render()
    assert "Table 1" in rendering
    assert "bfw-nonuniform" in rendering


def test_generate_table1_batched_is_identical():
    kwargs = dict(
        protocols=(
            "bfw",
            "emek-keren",
            "id-broadcast",
            "id-broadcast-random",
            "gilbert-newport",
            "pipelined-ids",
        ),
        graphs=(GraphSpec(family="cycle", n=12), GraphSpec(family="clique", n=8)),
        num_seeds=3,
        master_seed=7,
    )
    looped = generate_table1(**kwargs)
    batched = generate_table1(backend="batched", **kwargs)
    # Both batched engines (constant-state and memory) and the standalone
    # fallback reproduce each seeded trial exactly, so the raw records —
    # and therefore every rendered cell — are identical.
    assert looped.records == batched.records
    assert looped.render() == batched.render()


def test_table1_ordering_shape_on_path():
    """On a path, uniform BFW should be slower than the D-aware variant."""
    result = generate_table1(
        protocols=("bfw", "bfw-nonuniform"),
        graphs=(GraphSpec(family="path", n=17),),
        num_seeds=3,
        master_seed=9,
    )
    by_name = {row.protocol: row for row in result.rows}
    uniform = by_name["bfw"].measured_rounds["path(17)"]
    nonuniform = by_name["bfw-nonuniform"].measured_rounds["path(17)"]
    assert uniform > nonuniform
