"""The metrics registry and the engines' once-per-run sampling."""

import numpy as np
import pytest

from repro.batch import BatchedEngine
from repro.batch.memory import BatchedMemoryEngine
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import MemorySimulator
from repro.core.bfw import BFWProtocol
from repro.dynamics import ScheduleSpec, build_schedule
from repro.experiments.runner import instantiate_protocol
from repro.telemetry import (
    MetricsRegistry,
    current_metrics,
    sample_engine_run,
    use_metrics,
)


def test_registry_counters_gauges_timers():
    registry = MetricsRegistry()
    assert not registry
    registry.count("rounds")
    registry.count("rounds", 9)
    registry.gauge("rate", 2.0)
    registry.gauge("rate", 3.0)  # last write wins
    registry.add_time("phase", 0.25)
    registry.add_time("phase", 0.25)
    with registry.time("phase"):
        pass
    assert registry
    snapshot = registry.snapshot()
    assert snapshot["counters"]["rounds"] == 10
    assert snapshot["gauges"]["rate"] == 3.0
    assert snapshot["timers"]["phase"] >= 0.5
    # Snapshots are detached copies.
    snapshot["counters"]["rounds"] = -1
    assert registry.counters["rounds"] == 10


def test_registry_merge():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.count("a", 1)
    right.count("a", 2)
    right.gauge("g", 7.0)
    right.add_time("t", 1.5)
    left.merge(right)
    assert left.counters["a"] == 3
    assert left.gauges["g"] == 7.0
    assert left.timers["t"] == 1.5


def test_use_metrics_installs_and_nests():
    assert current_metrics() is None
    outer = MetricsRegistry()
    inner = MetricsRegistry()
    with use_metrics(outer):
        assert current_metrics() is outer
        with use_metrics(inner):
            assert current_metrics() is inner
        assert current_metrics() is outer
    assert current_metrics() is None


def test_sample_engine_run_without_registry_is_a_noop():
    sample_engine_run("batched", rounds_advanced=10, replicas=2, wall_seconds=0.1)


def test_sample_engine_run_records_everything():
    registry = MetricsRegistry()
    with use_metrics(registry):
        sample_engine_run(
            "batched",
            rounds_advanced=100,
            replicas=4,
            wall_seconds=0.5,
            replicas_converged=3,
            replicas_leaderless=1,
            cache_stats={"swap_cache_hits": 3, "swap_cache_misses": 1},
        )
    assert registry.counters["engine.runs"] == 1
    assert registry.counters["engine.rounds_advanced"] == 100
    assert registry.counters["engine.replicas"] == 4
    assert registry.counters["engine.replicas_converged"] == 3
    assert registry.counters["engine.replicas_leaderless"] == 1
    assert registry.counters["cache.swap_cache_hits"] == 3
    assert registry.gauges["engine.rounds_per_second"] == 200.0
    assert registry.gauges["cache.swap_cache_hit_rate"] == 0.75
    assert registry.timers["engine.batched.wall_seconds"] == pytest.approx(0.5)


def test_batched_engine_samples_once_per_run(small_cycle, bfw):
    registry = MetricsRegistry()
    with use_metrics(registry):
        batch = BatchedEngine(small_cycle, bfw).run(
            list(range(4)), max_rounds=20_000
        )
    assert registry.counters["engine.runs"] == 1
    assert registry.counters["engine.replicas"] == 4
    assert registry.counters["engine.rounds_advanced"] == int(
        batch.rounds_executed.sum()
    )
    assert registry.counters["engine.replicas_converged"] == int(
        batch.converged.sum()
    )
    assert "engine.batched.wall_seconds" in registry.timers
    assert registry.gauges["engine.rounds_per_second"] > 0


def test_batched_engine_samples_schedule_cache_stats(small_cycle, bfw):
    spec = ScheduleSpec(
        "edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7}
    )
    registry = MetricsRegistry()
    with use_metrics(registry):
        BatchedEngine(
            small_cycle, bfw, schedule=build_schedule(spec, small_cycle)
        ).run(list(range(3)), max_rounds=2000)
    # Dynamic runs surface the swap-cache and the schedule's pool/memo rates.
    assert "cache.swap_cache_misses" in registry.counters
    assert "cache.topology_pool_hits" in registry.counters
    assert "cache.round_memo_hits" in registry.counters
    for kind in ("swap_cache", "topology_pool", "round_memo"):
        assert 0.0 <= registry.gauges[f"cache.{kind}_hit_rate"] <= 1.0


def test_all_four_engines_sample_their_own_timer(small_cycle, bfw):
    memory_protocol = instantiate_protocol("id-broadcast", small_cycle)
    registry = MetricsRegistry()
    with use_metrics(registry):
        BatchedEngine(small_cycle, bfw).run([0, 1], max_rounds=20_000)
        VectorizedEngine(small_cycle, bfw).run(rng=0, max_rounds=20_000)
        MemorySimulator(small_cycle, memory_protocol).run(rng=0, max_rounds=2000)
        BatchedMemoryEngine(small_cycle, memory_protocol).run(
            [0, 1], max_rounds=2000
        )
    for engine in ("batched", "vectorized", "memory", "batched-memory"):
        assert f"engine.{engine}.wall_seconds" in registry.timers
    assert registry.counters["engine.runs"] == 4
    assert registry.counters["engine.replicas"] == 6


def test_engines_run_clean_without_a_registry(small_cycle, bfw):
    # The no-telemetry hot path: nothing installed, nothing sampled.
    assert current_metrics() is None
    batch = BatchedEngine(small_cycle, bfw).run([0, 1], max_rounds=20_000)
    assert batch.num_replicas == 2


# --------------------------------------------------------------------------- #
# Metrics flow through the execution layer
# --------------------------------------------------------------------------- #


def _one_cell():
    from repro.experiments.config import GraphSpec

    from tests.batch.parity_harness import backend_parity_cells

    return backend_parity_cells(
        protocols=("bfw",),
        graphs=(GraphSpec(family="cycle", n=12),),
        num_seeds=3,
    )


@pytest.mark.parametrize("backend", ["sequential", "batched"])
def test_cell_outcomes_carry_wall_time_and_metrics(backend):
    from repro.exec import resolve_backend

    cells = _one_cell()
    (outcome,) = resolve_backend(backend).run_cell_outcomes(cells)
    assert outcome.wall_seconds is not None and outcome.wall_seconds > 0
    assert outcome.rounds_advanced > 0
    assert outcome.metrics is not None
    assert outcome.metrics["counters"]["engine.replicas"] == 3
    assert outcome.metrics["counters"]["engine.rounds_advanced"] == (
        outcome.rounds_advanced
    )


def test_cell_events_carry_wall_time(small_cycle):
    from repro.exec import resolve_backend

    events = []
    resolve_backend("sequential").run_cell_outcomes(
        _one_cell(), progress=events.append
    )
    (event,) = events
    assert event.wall_seconds is not None
    assert event.rounds_advanced == event.outcome.rounds_advanced


def test_outcome_equality_ignores_telemetry_fields():
    from repro.exec import resolve_backend

    cells = _one_cell()
    (first,) = resolve_backend("sequential").run_cell_outcomes(cells)
    (second,) = resolve_backend("sequential").run_cell_outcomes(cells)
    # wall_seconds/metrics differ run to run; equality is about the physics.
    assert first.wall_seconds != second.wall_seconds
    assert first == second
    assert first.to_records() == second.to_records()
