"""Out-of-core traces: spilled segments replay byte-identically.

Acceptance contract of the spilling recorder: a trace recorded under a byte
budget (many small ``.npz`` segments, bounded window RAM) is
*content-identical* to the in-memory :class:`BatchTrace` of the same run —
``replica(r)`` byte for byte, ``load()`` field for field — on static and
dynamic schedules.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis import first_beep_round_batch, first_beep_round
from repro.batch import BatchedEngine, BatchTraceRecorder
from repro.core.bfw import BFWProtocol
from repro.dynamics import ScheduleSpec, build_schedule
from repro.errors import ConfigurationError, SimulationError, TraceError
from repro.telemetry import SpilledTrace, SpillingTraceRecorder

from tests.batch.parity_harness import assert_same_trace

SEEDS = tuple(range(5))


def _record_both(topology, protocol, tmp_path, spec=None, window_rows=7, **run_kwargs):
    """One batched run recording in memory and spilled-to-disk side by side."""
    recorder = BatchTraceRecorder()
    spiller = SpillingTraceRecorder(
        directory=str(tmp_path), window_rows=window_rows
    )
    schedule = None if spec is None else build_schedule(spec, topology)
    BatchedEngine(topology, protocol, schedule=schedule).run(
        list(SEEDS), observers=[recorder, spiller], **run_kwargs
    )
    return recorder.trace(), spiller


def test_spilled_replicas_byte_identical(small_cycle, bfw, tmp_path):
    batch, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    # A tiny window forces many segments — the replay is genuinely stitched.
    assert len(spilled._manifest["segment_rows"]) > 1
    assert spilled.num_replicas == batch.num_replicas
    assert spilled.num_rounds == batch.num_rounds
    np.testing.assert_array_equal(spilled.rounds_executed, batch.rounds_executed)
    np.testing.assert_array_equal(spilled.valid_mask(), batch.valid_mask())
    for replica in range(batch.num_replicas):
        assert_same_trace(spilled.replica(replica), batch.replica(replica))
    assert spilled.load() == batch
    for mine, theirs in zip(spilled.to_traces(), batch.to_traces()):
        assert_same_trace(mine, theirs)


def test_spilled_replicas_byte_identical_under_churn(small_cycle, bfw, tmp_path):
    spec = ScheduleSpec(
        "edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7}
    )
    batch, spiller = _record_both(
        small_cycle, bfw, tmp_path, spec=spec, max_rounds=2000
    )
    spilled = spiller.trace()
    for replica in range(batch.num_replicas):
        assert_same_trace(spilled.replica(replica), batch.replica(replica))
    assert spilled.load() == batch


def test_segments_tile_the_full_history(small_cycle, bfw, tmp_path):
    batch, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    starts = []
    windows = []
    for start, window in spilled.segments():
        starts.append(start)
        windows.append(window)
        assert window.shape[1:] == (batch.num_replicas, batch.n)
        assert window.shape[0] <= 7  # never wider than the window
    assert starts == list(np.cumsum([0] + [w.shape[0] for w in windows[:-1]]))
    np.testing.assert_array_equal(np.concatenate(windows, axis=0), batch.states)


def test_byte_budget_bounds_the_window(small_cycle, bfw, tmp_path):
    # budget // (R * n) = 240 // (5 * 12) = 4 rounds per window.
    spiller = SpillingTraceRecorder(directory=str(tmp_path), byte_budget=240)
    BatchedEngine(small_cycle, bfw).run(
        list(SEEDS), observers=[spiller], max_rounds=20_000
    )
    spilled = spiller.trace()
    assert spilled.byte_budget == 240
    row_bytes = len(SEEDS) * small_cycle.n
    assert spiller.peak_window_bytes <= 4 * row_bytes
    assert spilled.peak_window_bytes == spiller.peak_window_bytes
    for _, window in spilled.segments():
        assert window.shape[0] <= 4


def test_out_of_core_analysis_replay(small_cycle, bfw, tmp_path):
    # The README workflow: stream the spilled trace back through the
    # analysis layer without rehydrating the whole history.
    batch, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    expected = first_beep_round_batch(batch)
    for replica in range(spilled.num_replicas):
        np.testing.assert_array_equal(
            first_beep_round(spilled.replica(replica)), expected[replica]
        )


def test_from_batch_trace_round_trip(cycle_batch_trace, tmp_path):
    spilled = SpilledTrace.from_batch_trace(
        cycle_batch_trace, directory=str(tmp_path), byte_budget=500
    )
    assert spilled.load() == cycle_batch_trace
    assert spilled == SpilledTrace.from_batch_trace(
        cycle_batch_trace, directory=str(tmp_path)
    )  # content equality across window sizes
    assert spilled.protocol_name == cycle_batch_trace.protocol_name
    assert spilled.topology_name == cycle_batch_trace.topology_name
    assert spilled.seeds == cycle_batch_trace.seeds


def test_merge_results_matches_batched_recording(small_cycle, bfw, tmp_path):
    # The sequential backend's path: one R = 1 spill per replica, merged.
    from repro.beeping.engine import VectorizedEngine

    per_replica = []
    for seed in SEEDS:
        solo = SpillingTraceRecorder(directory=str(tmp_path), window_rows=7)
        VectorizedEngine(small_cycle, bfw).run(
            rng=seed, max_rounds=20_000, observers=[solo]
        )
        per_replica.append(solo.trace())
    merged = SpillingTraceRecorder.merge_results(per_replica)
    batch, _ = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    assert merged.load() == batch


def test_spilled_trace_is_picklable(small_cycle, bfw, tmp_path):
    import pickle

    _, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    clone = pickle.loads(pickle.dumps(spilled))
    assert clone == spilled
    assert_same_trace(clone.replica(0), spilled.replica(0))


def test_cleanup_removes_the_spill_directory(small_cycle, bfw, tmp_path):
    _, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    assert os.path.isdir(spilled.directory)
    spilled.cleanup()
    assert not os.path.exists(spilled.directory)


def test_memory_engines_are_rejected(small_cycle, tmp_path):
    from repro.batch.memory import BatchedMemoryEngine
    from repro.experiments.runner import instantiate_protocol

    protocol = instantiate_protocol("id-broadcast", small_cycle)
    with pytest.raises(ConfigurationError):
        BatchedMemoryEngine(small_cycle, protocol).run(
            [0, 1],
            observers=[SpillingTraceRecorder(directory=str(tmp_path))],
            max_rounds=500,
        )


def test_error_paths(tmp_path):
    with pytest.raises(ConfigurationError):
        SpillingTraceRecorder(byte_budget=0)
    with pytest.raises(ConfigurationError):
        SpillingTraceRecorder(window_rows=0)
    with pytest.raises(SimulationError):
        SpillingTraceRecorder(directory=str(tmp_path)).trace()
    with pytest.raises(TraceError):
        SpilledTrace(str(tmp_path / "missing"))
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "manifest.json").write_text(json.dumps({"format": "not-a-trace"}))
    with pytest.raises(TraceError):
        SpilledTrace(str(bad))


def test_replica_index_out_of_range(small_cycle, bfw, tmp_path):
    _, spiller = _record_both(small_cycle, bfw, tmp_path, max_rounds=20_000)
    spilled = spiller.trace()
    with pytest.raises(TraceError):
        spilled.replica(len(SEEDS))
    with pytest.raises(TraceError):
        spilled.replica(-1)
