"""Lazy export surfaces: ``repro.batch`` PEP 562 exports, the analysis
re-exports of the streaming reducers, and cold-process observer-kind
resolution (the path spawn workers take)."""

import subprocess
import sys

import pytest


def test_batch_dir_lists_lazy_exports_without_importing_them():
    import repro.batch as batch

    listed = dir(batch)
    for name in ("BatchedEngine", "BatchTrace", "ObserverSpec", "run_batch"):
        assert name in listed
    assert listed == sorted(set(listed))
    assert set(batch.__all__) <= set(listed)


def test_batch_getattr_resolves_and_caches():
    import repro.batch as batch

    engine = batch.BatchedEngine
    from repro.batch.engine import BatchedEngine

    assert engine is BatchedEngine
    assert "BatchedEngine" in vars(batch)  # cached after first access
    with pytest.raises(AttributeError, match="no attribute"):
        batch.not_an_export


def test_analysis_reexports_streaming_reducers_lazily():
    import repro.analysis as analysis

    listed = dir(analysis)
    for name in (
        "StreamingBeepTotals",
        "StreamingConvergence",
        "StreamingFirstBeep",
        "StreamingInvariantChecker",
        "StreamingInvariantSummary",
        "StreamingWaveFronts",
    ):
        assert name in listed
        assert name in analysis.__all__
    from repro.analysis import StreamingConvergence
    from repro.telemetry.reducers import (
        StreamingConvergence as TelemetryStreamingConvergence,
    )

    assert StreamingConvergence is TelemetryStreamingConvergence
    with pytest.raises(AttributeError, match="no attribute"):
        analysis.StreamingNothing


def test_observer_kinds_resolve_in_a_cold_process():
    # A fresh interpreter that never imports repro.telemetry: ObserverSpec
    # must late-register the streaming/spill kinds on first sight — this is
    # exactly what a spawn worker does when it unpickles an observed cell.
    code = (
        "import sys\n"
        "from repro.batch.observers import ObserverSpec, build_observer\n"
        "assert 'repro.telemetry' not in sys.modules\n"
        "spec = ObserverSpec('streaming-first-beep')\n"
        "assert 'repro.telemetry' in sys.modules\n"
        "observer = build_observer(ObserverSpec('spill-trace'))\n"
        "print(type(observer).__name__)\n"
    )
    import os

    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    completed = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    assert completed.stdout.strip() == "SpillingTraceRecorder"


def test_unknown_observer_kind_still_fails_cleanly():
    from repro.batch.observers import ObserverSpec
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="unknown observer kind"):
        ObserverSpec("streaming-nonsense")
