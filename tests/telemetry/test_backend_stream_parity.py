"""Cross-backend parity for streaming and spilling observed cells.

Observed cells carrying streaming reducers and the spilling recorder must
produce byte-identical records *and* observations on every execution
backend — the sequential loop (per-replica observers merged afterwards),
the batched engines (one observer over the whole batch) and a spawn-started
process pool (specs pickled to workers that never imported the telemetry
package explicitly).  On top of the cross-backend agreement, the reference
backend's streamed values must equal the post-hoc reductions of the trace
recorded in the same cells.
"""

import numpy as np
import pytest

from repro.batch import BatchTrace
from repro.batch.observers import ObserverSpec
from repro.exec import resolve_backend
from repro.telemetry import SpilledTrace

from tests.batch.parity_harness import observed_parity_cells
from tests.telemetry.test_reducer_parity import (
    assert_stream_results_match_post_hoc,
)

#: Spec order matters: observations come back in spec order per cell.
STREAM_KEYS = (
    "first-beep",
    "wave-fronts",
    "invariants",
    "beep-totals",
    "convergence",
)


def _stream_specs(tmp_path):
    return (
        ObserverSpec("trace"),
        ObserverSpec("spill-trace", {"directory": str(tmp_path)}),
        *(ObserverSpec(f"streaming-{key}") for key in STREAM_KEYS),
    )


def _assert_observation_equal(spec, mine, theirs, context):
    if isinstance(theirs, np.ndarray):
        np.testing.assert_array_equal(mine, theirs)
    else:
        assert mine == theirs, f"{spec.label} differs on {context}"


@pytest.fixture(scope="module")
def reference_outcomes(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("spill")
    cells = observed_parity_cells(specs=_stream_specs(tmp_path))
    return cells, resolve_backend("sequential").run_cell_outcomes(cells)


def test_reference_streams_equal_post_hoc(reference_outcomes):
    cells, outcomes = reference_outcomes
    for outcome in outcomes:
        trace = outcome.observations[0]
        assert isinstance(trace, BatchTrace)
        streamed = dict(zip(STREAM_KEYS, outcome.observations[2:]))
        assert_stream_results_match_post_hoc(trace, streamed)


def test_reference_spill_equals_trace(reference_outcomes):
    cells, outcomes = reference_outcomes
    for outcome in outcomes:
        trace = outcome.observations[0]
        spilled = outcome.observations[1]
        assert isinstance(spilled, SpilledTrace)
        assert spilled.load() == trace


@pytest.mark.parametrize("backend", ["batched", "process:2"])
def test_backends_match_sequential_observations(
    backend, reference_outcomes
):
    cells, reference = reference_outcomes
    outcomes = resolve_backend(backend).run_cell_outcomes(cells)
    for ref, out in zip(reference, outcomes):
        assert out.to_records() == ref.to_records(), (
            f"{backend} records differ on {ref.cell.label}"
        )
        assert len(out.observations) == len(ref.cell.observers)
        for spec, mine, theirs in zip(
            ref.cell.observers, out.observations, ref.observations
        ):
            _assert_observation_equal(
                spec, mine, theirs, f"{backend}/{ref.cell.label}"
            )


def test_streaming_specs_resolve_by_label():
    # The registry names are the public contract the CLI/README rely on.
    for key in STREAM_KEYS:
        spec = ObserverSpec(f"streaming-{key}")
        assert spec.label == f"streaming-{key}"
    spec = ObserverSpec("spill-trace", {"byte_budget": 1024})
    assert spec.label == "spill-trace[byte_budget=1024]"
