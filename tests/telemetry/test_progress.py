"""ProgressReporter, the telemetry JSONL stream and ``repro tail``."""

import io
import json

import pytest

from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.runner import run_sweep
from repro.telemetry import (
    ProgressReporter,
    iter_telemetry,
    render_event,
    tail_telemetry,
)


def _tiny_sweep():
    return SweepConfig(
        name="telemetry-test",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=(GraphSpec(family="cycle", n=12), GraphSpec(family="path", n=9)),
        num_seeds=2,
        max_rounds=20_000,
    )


def test_reporter_writes_prefixed_lines():
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, prefix="  ")
    reporter.line("hello")
    reporter("world")  # drop-in for Callable[[str], None]
    reporter.close()
    assert stream.getvalue() == "  hello\n  world\n"


def test_quiet_suppresses_lines_but_not_telemetry(tmp_path):
    stream = io.StringIO()
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(
        quiet=True, stream=stream, telemetry_path=str(path)
    ) as reporter:
        reporter.line("invisible")
        run_sweep(_tiny_sweep(), progress=reporter)
    assert stream.getvalue() == ""
    records = list(iter_telemetry(str(path)))
    assert [r["event"] for r in records] == ["cell", "cell", "summary"]


def test_telemetry_records_carry_cell_fields(tmp_path):
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
        records = run_sweep(_tiny_sweep(), progress=reporter, backend="batched")
    cells = [r for r in iter_telemetry(str(path)) if r["event"] == "cell"]
    assert [c["index"] for c in cells] == [0, 1]
    assert all(c["total"] == 2 for c in cells)
    assert cells[0]["protocol"] == "bfw"
    assert cells[0]["graph"] == "cycle(12)"
    assert cells[0]["n"] == 12
    assert cells[0]["replicas"] == 2
    assert cells[0]["backend"] == "batched"
    assert cells[0]["wall_seconds"] > 0
    assert cells[0]["rounds_advanced"] > 0
    assert cells[0]["mean_rounds"] > 0
    metrics = cells[0]["metrics"]
    assert metrics["counters"]["engine.replicas"] == 2
    (summary,) = [r for r in iter_telemetry(str(path)) if r["event"] == "summary"]
    assert summary["cells"] == 2
    assert summary["rounds_advanced"] == sum(c["rounds_advanced"] for c in cells)
    assert len(records) == 4  # the sweep itself still returns its records


def test_progress_lines_include_wall_time(tmp_path):
    stream = io.StringIO()
    with ProgressReporter(stream=stream) as reporter:
        run_sweep(_tiny_sweep(), progress=reporter)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert "mean rounds:" in line
        assert line.rstrip().endswith("]")
        assert "s" in line.split("[", 1)[1]
        assert "replica-rounds/s" in line


def test_render_event_formats():
    cell = {
        "event": "cell",
        "index": 0,
        "total": 3,
        "protocol": "bfw",
        "graph": "cycle(12)",
        "mean_rounds": 41.5,
        "wall_seconds": 0.5,
        "rounds_advanced": 100,
    }
    line = render_event(cell)
    assert line == "[1/3] bfw on cycle(12) mean rounds 41.5 in 0.500s (200 replica-rounds/s)"
    summary = {
        "event": "summary",
        "cells": 3,
        "wall_seconds": 1.25,
        "rounds_advanced": 300,
    }
    assert render_event(summary) == (
        "sweep complete: 3 cells, 1.250s total, 300 replica-rounds"
    )
    # Unknown events fall back to raw JSON rather than crashing the tail.
    assert json.loads(render_event({"event": "other", "x": 1})) == {
        "event": "other",
        "x": 1,
    }


def test_tail_renders_a_finished_stream(tmp_path):
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
        run_sweep(_tiny_sweep(), progress=reporter)
    out = io.StringIO()
    rendered = tail_telemetry(str(path), out=out)
    assert rendered == 3
    lines = out.getvalue().splitlines()
    assert lines[0].startswith("[1/2] bfw on cycle(12)")
    assert lines[-1].startswith("sweep complete: 2 cells")


def test_tail_follow_stops_at_summary(tmp_path):
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
        run_sweep(_tiny_sweep(), progress=reporter)
    out = io.StringIO()
    rendered = tail_telemetry(
        str(path), follow=True, interval=0.01, out=out, max_wait=5.0
    )
    assert rendered == 3  # saw the summary and returned without the deadline


def test_tail_follow_respects_max_wait(tmp_path):
    # No summary record: the safety valve must end the polling loop.
    path = tmp_path / "stream.jsonl"
    path.write_text(json.dumps({"event": "cell", "index": 0, "total": 1}) + "\n")
    out = io.StringIO()
    rendered = tail_telemetry(
        str(path), follow=True, interval=0.01, out=out, max_wait=0.05
    )
    assert rendered == 1


def test_iter_telemetry_leaves_partial_trailing_line_unparsed(tmp_path):
    # A record caught mid-write (no newline yet) must not crash the reader;
    # it is picked up once the rest of the line lands.
    path = tmp_path / "stream.jsonl"
    first = json.dumps({"event": "cell", "index": 0, "total": 2})
    second = json.dumps({"event": "cell", "index": 1, "total": 2})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(first + "\n" + second[:7])  # second record cut mid-object
    records = list(iter_telemetry(str(path)))
    assert [r["index"] for r in records] == [0]
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(second[7:] + "\n")
    records = list(iter_telemetry(str(path)))
    assert [r["index"] for r in records] == [0, 1]


def test_iter_telemetry_empty_or_headless_file(tmp_path):
    path = tmp_path / "stream.jsonl"
    path.write_text("")
    assert list(iter_telemetry(str(path))) == []
    # A lone partial line with no newline at all parses as nothing.
    path.write_text('{"event": "cel')
    assert list(iter_telemetry(str(path))) == []


def test_tail_follow_buffers_a_record_written_in_two_chunks(tmp_path):
    import threading
    import time

    path = tmp_path / "stream.jsonl"
    record = json.dumps({"event": "cell", "index": 0, "total": 1})
    summary = json.dumps(
        {"event": "summary", "cells": 1, "wall_seconds": 0.1, "rounds_advanced": 5}
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(record[:9])  # partial first record, no newline

    def finish_writing():
        time.sleep(0.1)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(record[9:] + "\n")
            fh.flush()
            time.sleep(0.05)
            fh.write(summary + "\n")

    writer = threading.Thread(target=finish_writing)
    writer.start()
    out = io.StringIO()
    rendered = tail_telemetry(
        str(path), follow=True, interval=0.01, out=out, max_wait=5.0
    )
    writer.join()
    assert rendered == 2
    assert out.getvalue().splitlines()[0].startswith("[1/1]")


def test_sharded_sweep_emits_shard_records_but_summary_counts_cells(tmp_path):
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
        run_sweep(
            _tiny_sweep(), progress=reporter, backend="batched", shard_size=1
        )
    records = list(iter_telemetry(str(path)))
    shards = [r for r in records if r["event"] == "shard"]
    cells = [r for r in records if r["event"] == "cell"]
    (summary,) = [r for r in records if r["event"] == "summary"]
    # Two cells x two seeds, shard_size=1 -> two shard records per cell.
    assert [(s["index"], s["shard"]) for s in shards] == [
        (0, 0),
        (0, 1),
        (1, 0),
        (1, 1),
    ]
    assert all(s["shards"] == 2 and s["replicas"] == 1 for s in shards)
    assert [c["index"] for c in cells] == [0, 1]
    # Shard sub-progress does not inflate the summary totals.
    assert summary["cells"] == 2
    assert summary["rounds_advanced"] == sum(c["rounds_advanced"] for c in cells)


def test_render_event_shard_format():
    line = render_event(
        {
            "event": "shard",
            "index": 0,
            "total": 2,
            "shard": 1,
            "shards": 4,
            "protocol": "bfw",
            "graph": "cycle(12)",
            "replicas": 8,
            "wall_seconds": 0.25,
        }
    )
    assert line == "[1/2] shard 2/4 bfw on cycle(12) (8 replicas) in 0.250s"


def test_tail_renders_shard_lines_from_a_sharded_sweep(tmp_path):
    path = tmp_path / "stream.jsonl"
    with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
        run_sweep(
            _tiny_sweep(), progress=reporter, backend="batched", shard_size=1
        )
    out = io.StringIO()
    rendered = tail_telemetry(str(path), out=out)
    lines = out.getvalue().splitlines()
    assert rendered == 7  # 4 shard + 2 cell + 1 summary
    assert sum("shard" in line for line in lines) == 4
    assert lines[-1].startswith("sweep complete: 2 cells")


def test_reporter_appends_across_instances(tmp_path):
    path = tmp_path / "stream.jsonl"
    for _ in range(2):
        with ProgressReporter(quiet=True, telemetry_path=str(path)) as reporter:
            reporter.emit({"event": "probe"})
    records = list(iter_telemetry(str(path)))
    assert [r["event"] for r in records] == ["probe", "summary", "probe", "summary"]


# --------------------------------------------------------------------------- #
# CLI round trips
# --------------------------------------------------------------------------- #


def test_cli_tail_renders_file(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "stream.jsonl"
    path.write_text(
        json.dumps(
            {
                "event": "summary",
                "cells": 1,
                "wall_seconds": 0.5,
                "rounds_advanced": 10,
            }
        )
        + "\n"
    )
    assert main(["tail", str(path)]) == 0
    captured = capsys.readouterr()
    assert "sweep complete: 1 cells" in captured.out


def test_cli_tail_missing_file_fails(tmp_path, capsys):
    from repro.cli import main

    assert main(["tail", str(tmp_path / "absent.jsonl")]) == 1
    assert "absent.jsonl" in capsys.readouterr().err


def test_cli_quiet_and_telemetry_flags_parse():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["table1", "--quiet", "--telemetry", "out.jsonl"]
    )
    assert args.quiet is True
    assert args.telemetry == "out.jsonl"
    args = build_parser().parse_args(["dynamic"])
    assert args.quiet is False
    assert args.telemetry is None
