"""Unit tests for the in-flight heartbeat emitter and its ambient context.

The heartbeat contract the engines and backends rely on: ``due`` is a pure
modulo, ``rounds_advanced`` is cumulative and monotone across engine runs
under one emitter, ``pulse`` restates the last beat with a fresh timestamp
(the liveness primitive), and ``use_heartbeat(None)`` explicitly silences
nested runs.
"""

import pytest

from repro.telemetry.heartbeat import (
    Heartbeat,
    HeartbeatEmitter,
    current_heartbeat,
    use_heartbeat,
)


def _beat(emitter, round_index=0, rounds_advanced=0, **overrides):
    kwargs = dict(
        engine="test",
        round_index=round_index,
        replicas=4,
        active=3,
        converged=1,
        leaderless=0,
        rounds_advanced=rounds_advanced,
    )
    kwargs.update(overrides)
    return emitter.beat(**kwargs)


# --------------------------------------------------------------------------- #
# Construction and the due() hot path
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("interval", [0, -1, -100])
def test_nonpositive_interval_is_rejected(interval):
    with pytest.raises(ValueError) as excinfo:
        HeartbeatEmitter(interval, lambda beat: None)
    assert "positive" in str(excinfo.value)


def test_interval_is_coerced_to_int():
    emitter = HeartbeatEmitter(7.0, lambda beat: None)
    assert emitter.interval == 7


def test_due_is_a_modulo():
    emitter = HeartbeatEmitter(5, lambda beat: None)
    assert [emitter.due(r) for r in range(11)] == [
        True, False, False, False, False,
        True, False, False, False, False,
        True,
    ]
    assert HeartbeatEmitter(1, lambda beat: None).due(123) is True


# --------------------------------------------------------------------------- #
# beat(): snapshots, sink delivery, cumulative counters
# --------------------------------------------------------------------------- #


def test_beat_feeds_the_sink_and_snapshots_fields():
    seen = []
    emitter = HeartbeatEmitter(3, seen.append)
    beat = _beat(emitter, round_index=9, rounds_advanced=36)
    assert seen == [beat]
    assert beat.engine == "test"
    assert beat.round_index == 9
    assert beat.replicas == 4
    assert beat.active == 3
    assert beat.converged == 1
    assert beat.leaderless == 0
    assert beat.rounds_advanced == 36
    assert beat.elapsed_seconds >= 0.0
    assert beat.timestamp > 0.0
    assert emitter.beats_emitted == 1
    assert emitter.last_beat is beat


def test_rounds_advanced_is_monotone_across_engine_runs():
    # One emitter outliving several engine runs (the sequential executor
    # runs one engine per seed): when the run-local counter resets, the
    # finished run's total is banked into an offset.
    emitter = HeartbeatEmitter(1, lambda beat: None)
    assert _beat(emitter, rounds_advanced=10).rounds_advanced == 10
    assert _beat(emitter, rounds_advanced=25).rounds_advanced == 25
    # New run: the counter restarts below the previous value.
    assert _beat(emitter, rounds_advanced=4).rounds_advanced == 29
    assert _beat(emitter, rounds_advanced=8).rounds_advanced == 33
    # And a third run keeps accumulating (25 + 8 banked, plus 2 live).
    assert _beat(emitter, rounds_advanced=2).rounds_advanced == 35


def test_rate_is_derived_from_the_cumulative_counter():
    emitter = HeartbeatEmitter(1, lambda beat: None)
    _beat(emitter, rounds_advanced=100)
    beat = _beat(emitter, rounds_advanced=300)
    # perf_counter moved forward between beats, so the rate is finite and
    # positive (200 replica-rounds over a tiny window).
    assert beat.rounds_per_second > 0.0


def test_to_record_is_json_ready():
    emitter = HeartbeatEmitter(2, lambda beat: None)
    record = _beat(emitter, round_index=4, rounds_advanced=16).to_record()
    assert record["engine"] == "test"
    assert record["round_index"] == 4
    assert record["rounds_advanced"] == 16
    assert record["kernel"] is None  # engines stamp the active kernel
    assert set(record) == {
        "engine", "round_index", "replicas", "active", "converged",
        "leaderless", "rounds_advanced", "rounds_per_second",
        "elapsed_seconds", "timestamp", "kernel",
    }


# --------------------------------------------------------------------------- #
# pulse(): the liveness-only beat
# --------------------------------------------------------------------------- #


def test_pulse_before_any_beat_emits_zero_counters():
    seen = []
    emitter = HeartbeatEmitter(1, seen.append)
    pulse = emitter.pulse(engine="fault-injector")
    assert pulse.engine == "fault-injector"
    assert pulse.round_index == 0
    assert pulse.rounds_advanced == 0
    assert pulse.rounds_per_second == 0.0
    assert seen == [pulse]
    assert emitter.beats_emitted == 1


def test_pulse_restates_the_last_beat_with_fresh_timestamp():
    emitter = HeartbeatEmitter(1, lambda beat: None)
    beat = _beat(emitter, round_index=50, rounds_advanced=200)
    pulse = emitter.pulse()
    # Counters are restated, progress rate is explicitly zero (alive but
    # not advancing), and the timestamp is at least as fresh.
    assert pulse.engine == beat.engine
    assert pulse.round_index == beat.round_index
    assert pulse.rounds_advanced == beat.rounds_advanced
    assert pulse.rounds_per_second == 0.0
    assert pulse.timestamp >= beat.timestamp
    assert pulse.elapsed_seconds >= beat.elapsed_seconds
    assert emitter.beats_emitted == 2


# --------------------------------------------------------------------------- #
# Ambient context: current_heartbeat / use_heartbeat
# --------------------------------------------------------------------------- #


def test_ambient_default_is_none():
    assert current_heartbeat() is None


def test_use_heartbeat_installs_and_restores():
    emitter = HeartbeatEmitter(1, lambda beat: None)
    with use_heartbeat(emitter) as installed:
        assert installed is emitter
        assert current_heartbeat() is emitter
    assert current_heartbeat() is None


def test_use_heartbeat_none_shadows_an_outer_emitter():
    # The no-op fast path installs None explicitly so a nested run stays
    # silent even inside an emitting scope.
    outer = HeartbeatEmitter(1, lambda beat: None)
    with use_heartbeat(outer):
        with use_heartbeat(None):
            assert current_heartbeat() is None
        assert current_heartbeat() is outer


def test_heartbeat_is_frozen():
    beat = Heartbeat(
        engine="x", round_index=0, replicas=1, active=1, converged=0,
        leaderless=0, rounds_advanced=0, rounds_per_second=0.0,
        elapsed_seconds=0.0,
    )
    with pytest.raises(AttributeError):
        beat.round_index = 5
