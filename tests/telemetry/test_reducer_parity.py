"""Streaming reducers vs their post-hoc counterparts: exact equality.

The tentpole contract of the telemetry layer: every ``Streaming*`` observer
folds its reduction online and produces a result *bit-equal* to the batch
analysis function applied to the full recorded :class:`BatchTrace` — for
every registered protocol, on static and dynamic schedules, including the
budget-exhaustion (no early stop) path.
"""

import numpy as np
import pytest

from repro.analysis import (
    check_leader_always_exists_batch,
    check_leader_count_nonincreasing_batch,
    check_max_beep_count_is_leader_batch,
    beep_count_matrix_batch,
    first_beep_round_batch,
    summarize_batch,
    wave_fronts_batch,
)
from repro.batch import BatchTrace, BatchedEngine, BatchTraceRecorder
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.core.registry import available_protocols, create_protocol
from repro.dynamics import build_schedule
from repro.errors import ConfigurationError, InvariantViolation
from repro.telemetry import (
    StreamingBeepTotals,
    StreamingConvergence,
    StreamingFirstBeep,
    StreamingInvariantChecker,
    StreamingWaveFronts,
)

from tests.batch.parity_harness import (
    DYNAMIC_PARITY_SCHEDULES,
    parity_topologies,
)

SEEDS = tuple(range(4))

POST_HOC_CHECKS = (
    check_leader_always_exists_batch,
    check_leader_count_nonincreasing_batch,
    check_max_beep_count_is_leader_batch,
)


def _violation_message(callback) -> "str | None":
    try:
        callback()
    except InvariantViolation as error:
        return str(error)
    return None


def _run_with_streams(topology, protocol, seeds=SEEDS, spec=None, **run_kwargs):
    """One batched run driving the trace recorder and every streaming reducer."""
    recorder = BatchTraceRecorder()
    streams = {
        "first-beep": StreamingFirstBeep(),
        "wave-fronts": StreamingWaveFronts(),
        "invariants": StreamingInvariantChecker(),
        "beep-totals": StreamingBeepTotals(),
        "convergence": StreamingConvergence(),
    }
    schedule = None if spec is None else build_schedule(spec, topology)
    BatchedEngine(topology, protocol, schedule=schedule).run(
        list(seeds),
        observers=[recorder, *streams.values()],
        **run_kwargs,
    )
    return recorder.trace(), streams


def assert_stream_results_match_post_hoc(trace: BatchTrace, results) -> None:
    """Streamed reduction *values* equal their post-hoc counterparts on ``trace``.

    ``results`` maps the short reducer key (``"first-beep"`` ...) to the
    value the reducer produced — either ``observer.result()`` or the merged
    observation an execution backend shipped back.
    """
    np.testing.assert_array_equal(
        results["first-beep"], first_beep_round_batch(trace)
    )
    assert results["wave-fronts"] == wave_fronts_batch(trace)
    assert results["convergence"] == summarize_batch(trace)

    matrix = beep_count_matrix_batch(trace)
    totals = results["beep-totals"]
    for replica in range(trace.num_replicas):
        last = int(trace.rounds_executed[replica])
        np.testing.assert_array_equal(totals[replica], matrix[last, replica])

    summary = results["invariants"]
    np.testing.assert_array_equal(summary.rounds_observed, trace.rounds_executed)
    streamed_raises = (
        summary.raise_if_leaderless,
        summary.raise_if_increase,
        summary.raise_if_max_beep_violation,
    )
    for check, raiser in zip(POST_HOC_CHECKS, streamed_raises):
        assert _violation_message(raiser) == _violation_message(
            lambda check=check: check(trace)
        )


def assert_streams_match_post_hoc(trace: BatchTrace, streams) -> None:
    """Every streaming observer's result equals its post-hoc counterpart."""
    assert_stream_results_match_post_hoc(
        trace, {key: observer.result() for key, observer in streams.items()}
    )


@pytest.mark.parametrize("name", available_protocols())
@pytest.mark.parametrize(
    "family", [family for family, _ in parity_topologies()]
)
def test_streams_match_post_hoc_for_registered_protocols(name, family):
    topology = dict(parity_topologies())[family]
    protocol = create_protocol(
        name, diameter=max(1, topology.diameter()), n=topology.n
    )
    trace, streams = _run_with_streams(
        topology, protocol, max_rounds=4000
    )
    assert_streams_match_post_hoc(trace, streams)


@pytest.mark.parametrize(
    "spec", DYNAMIC_PARITY_SCHEDULES, ids=lambda spec: spec.label
)
def test_streams_match_post_hoc_under_schedules(spec, small_cycle, bfw):
    trace, streams = _run_with_streams(
        small_cycle, bfw, spec=spec, max_rounds=2000
    )
    assert_streams_match_post_hoc(trace, streams)


def test_streams_match_post_hoc_without_early_stopping(small_cycle, bfw):
    # Budget exhaustion: every replica runs (and streams) the full horizon.
    trace, streams = _run_with_streams(
        small_cycle, bfw, max_rounds=80, stop_at_single_leader=False
    )
    assert (trace.rounds_executed == 80).all()
    assert_streams_match_post_hoc(trace, streams)


def test_streams_match_post_hoc_on_vectorized_engine(small_path, bfw):
    # The R = 1 driver: the vectorised engine feeds the same hooks.
    streams = {
        "first-beep": StreamingFirstBeep(),
        "wave-fronts": StreamingWaveFronts(),
        "invariants": StreamingInvariantChecker(),
        "beep-totals": StreamingBeepTotals(),
        "convergence": StreamingConvergence(),
    }
    result = VectorizedEngine(small_path, bfw).run(
        rng=3, record_trace=True, max_rounds=20_000, observers=list(streams.values())
    )
    assert result.trace is not None
    trace = BatchTrace.from_traces([result.trace])
    assert_streams_match_post_hoc(trace, streams)


def test_streaming_reducers_reject_memory_engines(small_cycle):
    # Memory engines report no beeping classification; the constant-state
    # reducers must refuse rather than silently stream garbage.
    from repro.batch.memory import BatchedMemoryEngine
    from repro.experiments.runner import instantiate_protocol

    protocol = instantiate_protocol("id-broadcast", small_cycle)
    with pytest.raises(ConfigurationError):
        BatchedMemoryEngine(small_cycle, protocol).run(
            [0, 1], observers=[StreamingFirstBeep()], max_rounds=500
        )


# --------------------------------------------------------------------------- #
# Invariant violations: streamed messages == post-hoc messages, exactly
# --------------------------------------------------------------------------- #


def _drive_checker(trace: BatchTrace) -> "StreamingInvariantChecker":
    """Feed a trace through the streaming checker, row for row."""
    from repro.batch.observers import BatchRunInfo

    checker = StreamingInvariantChecker()
    checker.on_start(
        BatchRunInfo(
            num_replicas=trace.num_replicas,
            n=trace.n,
            beeping_values=trace.beeping_values,
            leader_values=trace.leader_values,
        )
    )
    beeping = trace.beeping_history()
    leaders = trace.leader_history()
    valid = trace.valid_mask()
    for t in range(trace.states.shape[0]):
        checker.on_round(t, trace.states[t], beeping[t], leaders[t], valid[t])
    checker.on_finish(trace.rounds_executed)
    return checker


def _random_violating_trace(seed: int) -> BatchTrace:
    """A synthetic trace whose random states violate all three invariants."""
    rng = np.random.default_rng(seed)
    states = rng.integers(0, 4, size=(9, 3, 5), dtype=np.int8)
    return BatchTrace(
        states=states,
        rounds_executed=np.array([8, 5, 8], dtype=np.int64),
        # Value 3 both beeps and leads; 1 only beeps; 2 only leads.
        beeping_values=(1, 3),
        leader_values=(2, 3),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_streamed_violation_messages_equal_post_hoc(seed):
    trace = _random_violating_trace(seed)
    summary = _drive_checker(trace).summary()
    streamed_raises = (
        summary.raise_if_leaderless,
        summary.raise_if_increase,
        summary.raise_if_max_beep_violation,
    )
    messages = []
    for check, raiser in zip(POST_HOC_CHECKS, streamed_raises):
        expected = _violation_message(lambda check=check: check(trace))
        assert _violation_message(raiser) == expected
        messages.append(expected)
    # Random 4-valued states on 5 nodes make each violation overwhelmingly
    # likely; make sure the parametrisation is actually exercising them.
    assert any(message is not None for message in messages)
    if messages[0] is not None:
        assert not summary.ok
        with pytest.raises(InvariantViolation, match="Lemma 9 violated"):
            summary.raise_if_violated()


def test_streamed_summary_ok_on_clean_run(small_cycle, bfw):
    recorder = BatchTraceRecorder()
    checker = StreamingInvariantChecker()
    BatchedEngine(small_cycle, bfw).run(
        list(SEEDS), observers=[recorder, checker], max_rounds=20_000
    )
    summary = checker.summary()
    assert summary.ok
    assert summary.num_replicas == len(SEEDS)
    summary.raise_if_violated()  # must not raise
    trace = recorder.trace()
    for check in POST_HOC_CHECKS:
        check(trace)  # post-hoc agrees: no violations


def test_invariant_summary_merge_round_trip():
    trace = _random_violating_trace(7)
    whole = _drive_checker(trace).summary()
    per_replica = []
    for index in range(trace.num_replicas):
        solo = BatchTrace.from_traces([trace.replica(index)])
        per_replica.append(_drive_checker(solo).summary())
    merged = StreamingInvariantChecker.merge_results(per_replica)
    assert merged == whole
