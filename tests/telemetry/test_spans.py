"""Unit tests for the span recorder and its two export formats.

The acceptance-level property pinned here: ``chrome_trace`` emits the
Chrome trace-event JSON document Perfetto loads — complete events
(``"ph": "X"``) with microsecond ``ts``/``dur``, one track per cell.
"""

import json

import pytest

from repro.telemetry.spans import (
    SPAN_KINDS,
    Span,
    SpanRecorder,
    chrome_trace,
    load_spans_jsonl,
    spans_from_records,
    write_chrome_trace,
)


def _tree(recorder=None):
    """A finished sweep → cell → shard → attempt tree with known times."""
    recorder = recorder or SpanRecorder()
    sweep = recorder.begin("sweep", "sweep s1", start=100.0, attrs={"cells": 1})
    cell = recorder.begin(
        "cell", "cell 0", parent_id=sweep, start=100.5, attrs={"cell": 0}
    )
    shard = recorder.begin(
        "shard", "cell 0 shard 0", parent_id=cell, start=101.0,
        attrs={"cell": 0, "shard": 0},
    )
    attempt = recorder.begin(
        "attempt", "cell 0 shard 0 attempt 0", parent_id=shard, start=101.0,
        attrs={"cell": 0, "shard": 0, "attempt": 0},
    )
    recorder.finish(attempt, end=102.0, attrs={"outcome": "done"})
    recorder.finish(shard, end=102.0)
    recorder.finish(cell, end=102.5)
    recorder.finish(sweep, end=103.0)
    return recorder


# --------------------------------------------------------------------------- #
# Recorder lifecycle
# --------------------------------------------------------------------------- #


def test_begin_finish_builds_a_linked_tree():
    recorder = _tree()
    spans = recorder.spans()
    assert len(recorder) == 4
    assert [span.kind for span in spans] == list(SPAN_KINDS)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.kind == "sweep":
            assert span.parent_id is None
        else:
            assert span.parent_id in by_id
    attempt = spans[-1]
    assert attempt.attrs["outcome"] == "done"  # finish() merged attrs
    assert attempt.duration == pytest.approx(1.0)


def test_unknown_kind_is_rejected():
    with pytest.raises(ValueError) as excinfo:
        SpanRecorder().begin("phase", "nope")
    assert "phase" in str(excinfo.value)
    for kind in SPAN_KINDS:
        assert kind in str(excinfo.value)


def test_finish_is_idempotent_and_tolerates_unknown_ids():
    recorder = SpanRecorder()
    span_id = recorder.begin("sweep", "s", start=10.0)
    recorder.finish(span_id, end=11.0)
    # A racy double-finish (worker vs watchdog) keeps the first end.
    recorder.finish(span_id, end=99.0, attrs={"late": True})
    (span,) = recorder.spans()
    assert span.end == 11.0
    assert "late" not in span.attrs
    recorder.finish("no-such-span")  # no-op, no raise


def test_record_is_begin_plus_finish():
    recorder = SpanRecorder()
    span_id = recorder.record("cell", "c", start=5.0, end=7.5, attrs={"cell": 2})
    (span,) = recorder.spans()
    assert span.span_id == span_id
    assert (span.start, span.end) == (5.0, 7.5)
    assert span.duration == pytest.approx(2.5)


def test_annotate_merges_attrs():
    recorder = SpanRecorder()
    span_id = recorder.begin("shard", "s", start=0.0, attrs={"cell": 0})
    recorder.annotate(span_id, retries=2)
    recorder.annotate("unknown", retries=9)  # no-op
    (span,) = recorder.spans()
    assert span.attrs == {"cell": 0, "retries": 2}


def test_spans_returns_a_snapshot_copy():
    recorder = _tree()
    snapshot = recorder.spans()
    snapshot[0].attrs["mutated"] = True
    assert "mutated" not in recorder.spans()[0].attrs


def test_unfinished_span_has_zero_duration():
    recorder = SpanRecorder()
    recorder.begin("sweep", "live", start=1.0)
    (span,) = recorder.spans()
    assert span.end is None
    assert span.duration == 0.0


# --------------------------------------------------------------------------- #
# JSONL round trip
# --------------------------------------------------------------------------- #


def test_jsonl_round_trip(tmp_path):
    recorder = _tree()
    path = tmp_path / "spans.jsonl"
    recorder.write_jsonl(str(path))
    loaded = load_spans_jsonl(str(path))
    assert [span.to_record() for span in loaded] == [
        span.to_record() for span in recorder.spans()
    ]


def test_spans_from_records_decodes_service_payloads():
    records = [span.to_record() for span in _tree().spans()]
    spans = spans_from_records(records)
    assert all(isinstance(span, Span) for span in spans)
    assert [span.to_record() for span in spans] == records


# --------------------------------------------------------------------------- #
# Chrome trace-event export (the acceptance schema check)
# --------------------------------------------------------------------------- #


def test_chrome_trace_schema():
    document = chrome_trace(_tree().spans())
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert len(events) == 4
    for event in events:
        # Every complete event carries the full trace-event schema.
        assert set(event) == {
            "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
        }
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float)
        assert event["dur"] >= 0.0
        assert event["args"]["span_id"]
    assert sorted(event["cat"] for event in events) == sorted(SPAN_KINDS)
    sweep = next(event for event in events if event["cat"] == "sweep")
    attempt = next(event for event in events if event["cat"] == "attempt")
    # Microsecond timestamps and durations.
    assert sweep["ts"] == pytest.approx(100.0 * 1e6)
    assert sweep["dur"] == pytest.approx(3.0 * 1e6)
    assert attempt["dur"] == pytest.approx(1.0 * 1e6)
    # Track mapping: the sweep sits on track 0, cell work on cell + 1.
    assert sweep["tid"] == 0
    assert attempt["tid"] == 1
    assert "parent_id" not in sweep["args"]
    assert attempt["args"]["parent_id"]


def test_chrome_trace_renders_unfinished_spans_with_zero_duration():
    recorder = SpanRecorder()
    recorder.begin("sweep", "still running", start=42.0)
    (event,) = chrome_trace(recorder.spans())["traceEvents"]
    assert event["dur"] == 0.0
    assert event["ts"] == pytest.approx(42.0 * 1e6)


def test_write_chrome_trace_emits_loadable_json(tmp_path):
    path = tmp_path / "sweep.trace.json"
    write_chrome_trace(_tree().spans(), str(path))
    document = json.loads(path.read_text(encoding="utf-8"))
    assert len(document["traceEvents"]) == 4
    assert all(event["ph"] == "X" for event in document["traceEvents"])
