"""Tests for power-law fitting and scaling-model comparison."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.regression import compare_scaling_models, fit_power_law


def test_fit_power_law_recovers_exact_exponent():
    x = np.array([4, 8, 16, 32, 64], dtype=float)
    y = 3.0 * x**2
    fit = fit_power_law(x, y)
    assert fit.exponent == pytest.approx(2.0, abs=1e-9)
    assert fit.prefactor == pytest.approx(3.0, rel=1e-6)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(10.0) == pytest.approx(300.0, rel=1e-6)


def test_fit_power_law_with_noise():
    rng = np.random.default_rng(0)
    x = np.array([4, 8, 16, 32, 64, 128], dtype=float)
    y = 5.0 * x**1.5 * np.exp(rng.normal(0, 0.05, size=x.size))
    fit = fit_power_law(x, y)
    assert fit.exponent == pytest.approx(1.5, abs=0.15)
    assert fit.r_squared > 0.95
    assert fit.stderr >= 0.0


def test_fit_power_law_validation():
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0], [2.0])
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0, 2.0], [2.0])
    with pytest.raises(ConfigurationError):
        fit_power_law([1.0, -2.0], [2.0, 3.0])


def test_compare_scaling_models_identifies_d2_logn():
    diameters = np.array([8, 16, 32, 64], dtype=float)
    sizes = diameters + 1
    times = 0.3 * diameters**2 * np.log(sizes)
    comparison = compare_scaling_models(diameters, sizes, times)
    assert comparison.best_model == "D^2 log n"
    assert comparison.relative_errors["D^2 log n"] < 0.01
    assert comparison.constants["D^2 log n"] == pytest.approx(0.3, rel=0.05)


def test_compare_scaling_models_identifies_d_logn():
    diameters = np.array([8, 16, 32, 64], dtype=float)
    sizes = diameters + 1
    times = 2.0 * diameters * np.log(sizes)
    comparison = compare_scaling_models(diameters, sizes, times)
    assert comparison.best_model == "D log n"


def test_compare_scaling_models_validation():
    with pytest.raises(ConfigurationError):
        compare_scaling_models([1, 2], [1, 2], [1])
    with pytest.raises(ConfigurationError):
        compare_scaling_models([1], [1], [1])
