"""Tests for summary statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.stats.summary import (
    exceedance_probability,
    geometric_mean,
    mean_confidence_interval,
    summarize_sample,
)


def test_summarize_sample_fields():
    summary = summarize_sample([1, 2, 3, 4, 5])
    assert summary.count == 5
    assert summary.mean == pytest.approx(3.0)
    assert summary.median == pytest.approx(3.0)
    assert summary.minimum == 1 and summary.maximum == 5
    assert summary.q25 == pytest.approx(2.0)
    assert summary.q75 == pytest.approx(4.0)
    assert summary.as_dict()["mean"] == pytest.approx(3.0)


def test_summarize_single_value_has_zero_std():
    summary = summarize_sample([7.0])
    assert summary.std == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ConfigurationError):
        summarize_sample([])


def test_mean_confidence_interval_contains_mean():
    mean, low, high = mean_confidence_interval([10, 12, 9, 11, 10, 12, 8, 10])
    assert low <= mean <= high
    assert high - low > 0


def test_mean_confidence_interval_single_sample_degenerate():
    mean, low, high = mean_confidence_interval([5.0])
    assert mean == low == high == 5.0


def test_mean_confidence_interval_validation():
    with pytest.raises(ConfigurationError):
        mean_confidence_interval([1.0, 2.0], confidence=1.5)
    with pytest.raises(ConfigurationError):
        mean_confidence_interval([])


def test_exceedance_probability():
    values = [1, 2, 3, 4]
    assert exceedance_probability(values, 2.5) == pytest.approx(0.5)
    assert exceedance_probability(values, 100) == 0.0
    with pytest.raises(ConfigurationError):
        exceedance_probability([], 1.0)


def test_geometric_mean():
    assert geometric_mean([1, 4]) == pytest.approx(2.0)
    assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        geometric_mean([1.0, -1.0])
    with pytest.raises(ConfigurationError):
        geometric_mean([])
