"""Test package."""
