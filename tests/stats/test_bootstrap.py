"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.stats.bootstrap import (
    bootstrap_interval,
    bootstrap_median,
    bootstrap_ratio_of_means,
)


def test_bootstrap_interval_contains_estimate():
    rng = np.random.default_rng(1)
    sample = rng.normal(10.0, 2.0, size=200)
    interval = bootstrap_interval(sample, rng=2)
    assert interval.low <= interval.estimate <= interval.high
    assert interval.estimate == pytest.approx(10.0, abs=0.5)
    assert interval.width > 0
    assert interval.confidence == pytest.approx(0.95)


def test_bootstrap_interval_reproducible():
    sample = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    first = bootstrap_interval(sample, rng=7, num_resamples=500)
    second = bootstrap_interval(sample, rng=7, num_resamples=500)
    assert first == second


def test_bootstrap_interval_validation():
    with pytest.raises(ConfigurationError):
        bootstrap_interval([])
    with pytest.raises(ConfigurationError):
        bootstrap_interval([1.0], confidence=2.0)
    with pytest.raises(ConfigurationError):
        bootstrap_interval([1.0], num_resamples=0)


def test_bootstrap_median_skewed_sample():
    rng = np.random.default_rng(3)
    sample = rng.exponential(5.0, size=300)
    interval = bootstrap_median(sample, rng=4)
    assert interval.low <= np.median(sample) <= interval.high


def test_bootstrap_ratio_of_means():
    slow = [100.0, 110.0, 95.0, 105.0]
    fast = [10.0, 11.0, 9.0, 10.5]
    interval = bootstrap_ratio_of_means(slow, fast, rng=5)
    assert interval.estimate == pytest.approx(10.1, abs=1.0)
    assert interval.low <= interval.estimate <= interval.high


def test_bootstrap_ratio_validation():
    with pytest.raises(ConfigurationError):
        bootstrap_ratio_of_means([], [1.0])
    with pytest.raises(ConfigurationError):
        bootstrap_ratio_of_means([1.0], [0.0])
