"""Heartbeats are pure observability: records stay byte-identical.

The invariant the ISSUE pins down: whether heartbeats are off, every
round (K=1) or sparse (K=7), every backend produces records
byte-identical to the silent sequential reference — heartbeats never
touch the random generator or control flow.  On top of parity, the
emitted :class:`ShardProgress` events must carry well-formed heartbeats
and, on sharding backends, the shard/attempt tags.
"""

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BatchedBackend,
    CellCompleted,
    ProcessBackend,
    SequentialBackend,
    ShardProgress,
    resolve_backend,
)
from repro.experiments.config import GraphSpec

from tests.batch.parity_harness import backend_parity_cells

#: A compact slice of the standard parity set: one constant-state
#: protocol and one memory baseline over the harness's graph family mix,
#: so all four engines emit beats without tripling the suite's runtime.
PARITY_CELLS = backend_parity_cells(
    protocols=("bfw", "emek-keren"), num_seeds=3
)


def _run(backend, cells=PARITY_CELLS):
    events = []
    records = backend.run_cells(cells, progress=events.append)
    return records, [e for e in events if isinstance(e, ShardProgress)]


# --------------------------------------------------------------------------- #
# Interval validation through resolve_backend
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("interval", [0, -3, "fast"])
def test_bad_heartbeat_interval_is_a_configuration_error(interval):
    with pytest.raises(ConfigurationError):
        resolve_backend("sequential", heartbeat_interval=interval)
    with pytest.raises(ConfigurationError):
        SequentialBackend(heartbeat_interval=interval)


def test_resolve_backend_sets_the_interval_on_any_backend():
    assert resolve_backend("batched").heartbeat_interval is None
    backend = resolve_backend("process:2", heartbeat_interval=16)
    assert backend.heartbeat_interval == 16


# --------------------------------------------------------------------------- #
# Byte-identity across K ∈ {1, 7, off}
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("spec", ["sequential", "batched"])
@pytest.mark.parametrize("interval", [1, 7, None])
def test_heartbeats_never_change_records(spec, interval):
    reference = SequentialBackend().run_cells(PARITY_CELLS)
    backend = resolve_backend(spec, heartbeat_interval=interval)
    records, beats = _run(backend)
    assert records == reference
    if interval is None:
        assert beats == []
    else:
        assert beats  # in-flight events actually flowed


def test_process_backend_heartbeats_preserve_parity_and_tag_shards():
    cells = PARITY_CELLS[:4]
    reference = SequentialBackend().run_cells(cells)
    backend = resolve_backend("process:2", shard_size=2, heartbeat_interval=1)
    records, beats = _run(backend, cells)
    assert records == reference
    assert beats, "process workers shipped no heartbeats"
    for event in beats:
        assert event.backend == "process:2"
        assert event.shard_index is not None and event.shard_count is not None
        assert 0 <= event.shard_index < event.shard_count


# --------------------------------------------------------------------------- #
# Event payloads
# --------------------------------------------------------------------------- #


def test_shard_progress_payload_is_well_formed():
    cells = PARITY_CELLS[:2]
    records, beats = _run(BatchedBackend(heartbeat_interval=1), cells)
    assert beats
    for event in beats:
        assert 0 <= event.index < event.total == len(cells)
        assert event.backend == "batched"
        assert event.cell in cells
        beat = event.heartbeat
        assert beat.round_index >= 0
        assert 0 <= beat.active <= beat.replicas == len(event.cell.seeds)
        assert beat.rounds_advanced >= 0
    # Cumulative replica-rounds are monotone per cell.
    for index in range(len(cells)):
        advanced = [
            e.heartbeat.rounds_advanced for e in beats if e.index == index
        ]
        assert advanced == sorted(advanced)


def test_sparser_intervals_emit_fewer_beats():
    cell_set = backend_parity_cells(protocols=("bfw",), num_seeds=3)
    _, dense = _run(resolve_backend("batched", heartbeat_interval=1), cell_set)
    _, sparse = _run(resolve_backend("batched", heartbeat_interval=50), cell_set)
    assert len(sparse) < len(dense)


def test_heartbeats_without_a_progress_hook_are_the_noop_path():
    # No hook to deliver to → no emitter is built; this must not raise
    # and must match the silent reference.
    backend = BatchedBackend(heartbeat_interval=1)
    assert backend.run_cells(PARITY_CELLS[:2]) == SequentialBackend().run_cells(
        PARITY_CELLS[:2]
    )


def test_cell_events_still_arrive_interleaved_with_beats():
    cells = PARITY_CELLS[:3]
    events = []
    SequentialBackend(heartbeat_interval=1).run_cells(
        cells, progress=events.append
    )
    completions = [e for e in events if isinstance(e, CellCompleted)]
    assert [e.index for e in completions] == [0, 1, 2]
    # Each cell's beats precede its completion event in the stream.
    for completion in completions:
        position = events.index(completion)
        later_beats = [
            e for e in events[position + 1:]
            if isinstance(e, ShardProgress) and e.index == completion.index
        ]
        assert later_beats == []
