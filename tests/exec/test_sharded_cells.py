"""Intra-cell sharding: split/merge units and the sharded-parity suite.

The defect these tests pin down: a single large cell used to occupy one
core no matter how many workers ``process:N`` had, because cells were the
smallest schedulable unit.  Seed-list sharding (``shard_size``) splits a
cell into sub-cells, executes them independently and merges the outcomes —
and every test here asserts the merge is byte-identical to running the
cell whole: records, batch arrays, observations (traces, streaming
reducers, spilled traces) and telemetry sample merges included.
"""

import numpy as np
import pytest

from repro.batch.observers import ObserverSpec
from repro.batch.results import BatchResult
from repro.dynamics import ScheduleSpec
from repro.errors import ConfigurationError
from repro.exec import (
    BatchedBackend,
    ExecutionCell,
    ProcessBackend,
    SequentialBackend,
    merge_cell_outcomes,
    resolve_backend,
    resolve_shard_size,
    split_cell,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.montecarlo import run_monte_carlo
from repro.experiments.runner import run_sweep

from tests.batch.parity_harness import (
    assert_same_batch,
    assert_sharded_parity,
    backend_parity_cells,
    dynamic_parity_cells,
    observed_parity_cells,
)

#: The worker configuration the CI tests job pins.
WORKERS = 2


def make_cell(protocol="bfw", n=16, num_seeds=4, master_seed=61, **kwargs):
    return ExecutionCell(
        protocol=ProtocolSpecConfig(name=protocol),
        graph=GraphSpec(family="cycle", n=n),
        seeds=tuple(range(master_seed, master_seed + num_seeds)),
        max_rounds=4000,
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# resolve_shard_size / split_cell / merge_cell_outcomes units
# --------------------------------------------------------------------------- #


def test_resolve_shard_size_values():
    assert resolve_shard_size(None, 10, workers=4) is None
    assert resolve_shard_size("auto", 10, workers=4) == 3
    assert resolve_shard_size("auto", 10, workers=1) == 10
    assert resolve_shard_size("auto", 1, workers=8) == 1
    assert resolve_shard_size(5, 10) == 5
    assert resolve_shard_size("5", 10) == 5


@pytest.mark.parametrize("bad", [0, -1, "nope", "0"])
def test_resolve_shard_size_rejects_invalid(bad):
    with pytest.raises(ConfigurationError):
        resolve_shard_size(bad, 10)


def test_split_cell_slices_seed_list_in_order():
    cell = make_cell(num_seeds=7)
    shards = split_cell(cell, 3)
    assert len(shards) == 3
    assert [shard.seeds for shard in shards] == [
        cell.seeds[0:3],
        cell.seeds[3:6],
        cell.seeds[6:7],
    ]
    for shard in shards:
        assert shard.protocol == cell.protocol
        assert shard.graph == cell.graph
        assert shard.max_rounds == cell.max_rounds


def test_split_cell_covering_size_is_identity():
    cell = make_cell(num_seeds=4)
    assert split_cell(cell, None) == (cell,)
    assert split_cell(cell, 4) == (cell,)
    assert split_cell(cell, 99) == (cell,)


def test_split_cell_rejects_nonpositive_size():
    with pytest.raises(ConfigurationError):
        split_cell(make_cell(), 0)


def test_merge_requires_shards_covering_the_cell():
    cell = make_cell(num_seeds=4)
    shards = split_cell(cell, 2)
    outcomes = [BatchedBackend().run_cell_outcomes((shard,))[0] for shard in shards]
    with pytest.raises(ConfigurationError):
        merge_cell_outcomes(cell, [])
    with pytest.raises(ConfigurationError):
        merge_cell_outcomes(cell, outcomes[:1])
    with pytest.raises(ConfigurationError):
        merge_cell_outcomes(cell, list(reversed(outcomes)))


def test_merge_is_byte_identical_to_whole_cell():
    cell = make_cell(num_seeds=6)
    whole = BatchedBackend().run_cell_outcomes((cell,))[0]
    shards = split_cell(cell, 2)
    outcomes = [BatchedBackend().run_cell_outcomes((shard,))[0] for shard in shards]
    merged = merge_cell_outcomes(cell, outcomes)
    assert merged.cell == cell
    assert merged.to_records() == whole.to_records()
    assert_same_batch(whole.batch, merged.batch)
    # Wall time sums and metrics merge counter-wise across the shards.
    assert merged.wall_seconds == pytest.approx(
        sum(outcome.wall_seconds for outcome in outcomes)
    )
    assert merged.metrics is not None and whole.metrics is not None
    merged_engine = merged.metrics["counters"]
    whole_engine = whole.metrics["counters"]
    for key in ("engine.replicas", "engine.rounds_advanced"):
        assert merged_engine[key] == whole_engine[key]


def test_batch_concatenate_rejects_mismatched_shards():
    cell = make_cell(num_seeds=4)
    outcome = BatchedBackend().run_cell_outcomes((cell,))[0]
    other = BatchResult.from_simulation_results(
        outcome.results, seeds=list(cell.seeds)
    )
    with pytest.raises(ConfigurationError):
        BatchResult.concatenate([])
    with pytest.raises(ConfigurationError):
        # One shard carries final states, the other does not.
        BatchResult.concatenate([outcome.batch, other])


# --------------------------------------------------------------------------- #
# Sharded-merge parity suite (satellite: sizes 1, 3, R, R+7 x backends)
# --------------------------------------------------------------------------- #

#: backend_parity_cells uses num_seeds=4, so these are {1, 3, R, R+7}.
PARITY_SHARD_SIZES = (1, 3, 4, 11)


@pytest.mark.parametrize("backend", ["sequential", "batched"])
def test_sharded_parity_on_backend_parity_cells(backend):
    # Constant-state protocols, the D-aware variant and a memory baseline
    # over cycle/path/Erdős–Rényi — sharded output must match whole cells.
    assert_sharded_parity(
        backend, cells=backend_parity_cells(), shard_sizes=PARITY_SHARD_SIZES
    )


def test_sharded_parity_on_process_backend():
    cells = backend_parity_cells(protocols=("bfw", "emek-keren"), num_seeds=4)
    assert_sharded_parity(
        f"process:{WORKERS}", cells=cells, shard_sizes=(1, 3, "auto")
    )


def test_sharded_parity_every_registered_protocol_and_baseline():
    from repro.core.registry import available_protocols

    protocols = tuple(available_protocols()) + (
        "id-broadcast",
        "emek-keren",
        "pipelined-ids",
    )
    cells = backend_parity_cells(
        protocols=protocols,
        graphs=(GraphSpec(family="cycle", n=12),),
        num_seeds=4,
        master_seed=29,
    )
    assert_sharded_parity("batched", cells=cells, shard_sizes=(1, 3))
    assert_sharded_parity("sequential", cells=cells, shard_sizes=(3,))


def test_sharded_parity_on_dynamic_schedules():
    cells = dynamic_parity_cells(protocols=("bfw",), num_seeds=3)
    assert_sharded_parity("batched", cells=cells, shard_sizes=(1, 2))


def test_sharded_parity_on_observed_cells():
    # Every registered observer kind, static and dynamic.
    assert_sharded_parity(
        "batched", cells=observed_parity_cells(), shard_sizes=(1, 2)
    )


def test_sharded_parity_all_observer_kinds(tmp_path):
    specs = (
        ObserverSpec("trace"),
        ObserverSpec("leader-counts"),
        ObserverSpec("beep-counts"),
        ObserverSpec("leader-extinction"),
        ObserverSpec("streaming-first-beep"),
        ObserverSpec("streaming-wave-fronts"),
        ObserverSpec("streaming-invariants"),
        ObserverSpec("streaming-beep-totals"),
        ObserverSpec("streaming-convergence"),
    )
    cells = (make_cell(num_seeds=5, master_seed=71, observers=specs),)
    assert_sharded_parity("batched", cells=cells, shard_sizes=(1, 2, 5, 12))
    assert_sharded_parity("sequential", cells=cells, shard_sizes=(2,))


def test_sharded_parity_spilling_cells(tmp_path):
    # Spilled traces compare by content, so a re-spilled merge with a
    # different segment layout must still equal the whole-cell spill.
    spec = ObserverSpec(
        "spill-trace",
        {"directory": str(tmp_path / "spill"), "byte_budget": 2048},
    )
    cells = (make_cell(num_seeds=4, master_seed=83, observers=(spec,)),)
    assert_sharded_parity("batched", cells=cells, shard_sizes=(1, 2))


def test_sharded_state_aware_cells_merge_batched_but_match_records():
    # A state-aware schedule forces the whole-cell batched run onto the
    # sequential fallback (R > 1), while its R = 1 shards run batched; the
    # records must still agree — the documented parity contract.
    cell = make_cell(
        protocol="bfw",
        num_seeds=3,
        master_seed=97,
        schedule=ScheduleSpec("leader-isolating", {"cut_per_round": 1, "seed": 3}),
    )
    whole = resolve_backend("batched").run_cell_outcomes((cell,))[0]
    sharded = resolve_backend("batched", shard_size=1).run_cell_outcomes((cell,))[0]
    assert whole.batch is None  # sequential fallback
    assert sharded.batch is not None  # R = 1 shards ran batched
    assert sharded.to_records() == whole.to_records()


# --------------------------------------------------------------------------- #
# ProcessBackend pool sizing and shard scheduling
# --------------------------------------------------------------------------- #


def test_process_pool_clamps_to_work_units():
    # The regression the bugfix PR is named for: pool size follows the
    # number of schedulable units (shards), not just the number of cells.
    cell = make_cell(num_seeds=4)
    backend = ProcessBackend(workers=8)
    backend.run_cell_outcomes((cell,))
    assert backend.last_pool_size == 1  # one unsharded cell -> one worker

    backend = ProcessBackend(workers=8, shard_size=1)
    backend.run_cell_outcomes((cell,))
    assert backend.last_pool_size == 4  # four shards -> four workers

    backend = ProcessBackend(workers=WORKERS, shard_size=1)
    backend.run_cell_outcomes((cell,))
    assert backend.last_pool_size == WORKERS


def test_process_auto_shard_size_splits_across_workers():
    cell = make_cell(num_seeds=5)
    backend = ProcessBackend(workers=WORKERS, shard_size="auto")
    events = []
    outcome = backend.run_cell_outcomes((cell,), progress=events.append)[0]
    shard_events = [e for e in events if e.shard_index is not None]
    # auto = ceil(5 / 2) = 3 seeds per shard -> 2 shards.
    assert [e.shard_index for e in shard_events] == [0, 1]
    assert all(e.shard_count == 2 for e in shard_events)
    whole = BatchedBackend().run_cell_outcomes((cell,))[0]
    assert outcome.to_records() == whole.to_records()


def test_shard_events_precede_the_cell_event():
    cell = make_cell(num_seeds=4)
    small = make_cell(num_seeds=2, master_seed=5)
    events = []
    backend = BatchedBackend(shard_size=3)
    backend.run_cell_outcomes((cell, small), progress=events.append)
    kinds = [
        (e.index, e.shard_index, e.shard_count) for e in events
    ]
    # Cell 0 splits into 2 shards (sub-events then the merged cell event);
    # cell 1 is covered by one shard and emits no sub-events.
    assert kinds == [(0, 0, 2), (0, 1, 2), (0, None, None), (1, None, None)]
    cell_events = [e for e in events if e.shard_index is None]
    assert all(e.total == 2 for e in events)
    assert cell_events[0].outcome.to_records() == (
        BatchedBackend().run_cell_outcomes((cell,))[0].to_records()
    )


def test_unsharded_event_stream_is_unchanged():
    # Consumers that ignore the shard fields must see the historical
    # one-event-per-cell stream when no sharding is requested.
    cells = (make_cell(num_seeds=3), make_cell(num_seeds=2, master_seed=7))
    events = []
    SequentialBackend().run_cell_outcomes(cells, progress=events.append)
    assert [e.index for e in events] == [0, 1]
    assert all(e.shard_index is None and e.shard_count is None for e in events)


# --------------------------------------------------------------------------- #
# Entry points: resolve_backend, run_sweep, run_monte_carlo
# --------------------------------------------------------------------------- #


def test_resolve_backend_applies_shard_size():
    backend = resolve_backend("batched", shard_size="auto")
    assert backend.shard_size == "auto"
    backend = resolve_backend("process:2", shard_size="3")
    assert backend.shard_size == 3
    with pytest.raises(ConfigurationError):
        resolve_backend("batched", shard_size="zero")
    instance = BatchedBackend()
    assert resolve_backend(instance, shard_size=2) is instance
    assert instance.shard_size == 2


def test_run_sweep_shard_size_is_byte_identical():
    sweep = SweepConfig(
        name="shard-acceptance",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=(GraphSpec(family="cycle", n=16),),
        num_seeds=5,
        master_seed=3,
    )
    reference = run_sweep(sweep, backend="batched")
    assert run_sweep(sweep, backend="batched", shard_size=2) == reference
    assert run_sweep(sweep, backend="sequential", shard_size="auto") == reference


def test_run_monte_carlo_shard_size_is_byte_identical():
    reference = run_monte_carlo(
        protocol="bfw", graph="cycle", n=16, replicas=6, backend="batched"
    )
    sharded = run_monte_carlo(
        protocol="bfw",
        graph="cycle",
        n=16,
        replicas=6,
        backend="batched",
        shard_size=2,
    )
    assert_same_batch(reference.result, sharded.result)
    assert sharded.batched is True
    assert sharded.distinct_leaders == reference.distinct_leaders
