"""Tests for the ExecutionBackend API: cells, resolution, in-process backends."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    BatchedBackend,
    CellCompleted,
    ExecutionBackend,
    ExecutionCell,
    ProcessBackend,
    SequentialBackend,
    execute_cell_batched,
    execute_cell_sequential,
    resolve_backend,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.runner import run_trial, sweep_cells
from repro.experiments.config import TrialConfig

from tests.batch.parity_harness import assert_backend_record_parity


def _cell(**overrides):
    defaults = dict(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=10),
        seeds=(1, 2, 3),
    )
    defaults.update(overrides)
    return ExecutionCell(**defaults)


# --------------------------------------------------------------------------- #
# ExecutionCell
# --------------------------------------------------------------------------- #


def test_cell_requires_at_least_one_seed():
    with pytest.raises(ConfigurationError):
        _cell(seeds=())


def test_cell_normalises_seed_and_leader_types():
    import numpy as np

    cell = _cell(seeds=np.array([4, 5]), planted_leaders=np.array([0, -1]))
    assert cell.seeds == (4, 5)
    assert cell.planted_leaders == (0, -1)
    assert all(isinstance(seed, int) for seed in cell.seeds)


def test_cell_label_and_build_topology():
    cell = _cell()
    assert cell.label == "bfw on cycle(10)"
    topology = cell.build_topology()
    assert topology.n == 10
    assert cell.num_replicas == 3


def test_cell_graph_rng_key_controls_randomised_families():
    base = _cell(graph=GraphSpec(family="erdos-renyi", n=12, seed=3))
    rekeyed = _cell(
        graph=GraphSpec(family="erdos-renyi", n=12, seed=3),
        graph_rng_key=(99, "montecarlo-graph", "erdos-renyi", 12),
    )
    # Different derivations build different random graphs.
    assert base.build_topology().edges != rekeyed.build_topology().edges


def test_cell_outcome_records_match_run_trial():
    cell = _cell()
    outcome = execute_cell_sequential(cell)
    records = outcome.to_records()
    expected = tuple(
        run_trial(
            TrialConfig(protocol=cell.protocol, graph=cell.graph, seed=seed)
        )
        for seed in cell.seeds
    )
    assert records == expected


def test_execute_cell_batched_matches_sequential():
    cell = _cell(seeds=tuple(range(5)))
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert batched.batched is True
    assert batched.batch is not None
    assert sequential.batched is False
    assert sequential.batch is None
    assert sequential.to_records() == batched.to_records()


def test_planted_leaders_negative_index_wraps():
    cell = _cell(
        graph=GraphSpec(family="path", n=9),
        planted_leaders=(0, -1),
        max_rounds=4000,
    )
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert sequential.to_records() == batched.to_records()


def test_planted_leaders_reject_memory_protocols():
    cell = _cell(
        protocol=ProtocolSpecConfig(name="emek-keren"),
        graph=GraphSpec(family="path", n=7),
        planted_leaders=(0,),
    )
    with pytest.raises(ConfigurationError):
        execute_cell_sequential(cell)
    with pytest.raises(ConfigurationError):
        execute_cell_batched(cell)


# --------------------------------------------------------------------------- #
# resolve_backend
# --------------------------------------------------------------------------- #


def test_resolve_backend_specs():
    assert isinstance(resolve_backend("sequential"), SequentialBackend)
    assert isinstance(resolve_backend("batched"), BatchedBackend)
    process = resolve_backend("process:3")
    assert isinstance(process, ProcessBackend)
    assert process.workers == 3
    assert process.name == "process:3"
    assert isinstance(resolve_backend("process"), ProcessBackend)


def test_resolve_backend_defaults_and_instances():
    assert isinstance(resolve_backend(None), SequentialBackend)
    assert isinstance(resolve_backend(None, default="batched"), BatchedBackend)
    backend = BatchedBackend()
    assert resolve_backend(backend) is backend


def test_resolve_backend_service_spec():
    from repro.service.client import ServiceBackend

    backend = resolve_backend("service:http://127.0.0.1:8123")
    assert isinstance(backend, ServiceBackend)
    assert backend.name == "service:http://127.0.0.1:8123"
    # A bare host:port gets the scheme defaulted.
    assert resolve_backend("service:127.0.0.1:8123").url == "http://127.0.0.1:8123"


@pytest.mark.parametrize(
    "spec", ["nonsense", "process:two", "sequential:4", "batched:2", 42]
)
def test_resolve_backend_rejects_unknown_specs(spec):
    with pytest.raises(ConfigurationError):
        resolve_backend(spec)


@pytest.mark.parametrize("spec", ["nonsense", "sequential:4", "batched:2"])
def test_resolve_backend_error_lists_known_specs_and_token(spec):
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend(spec)
    message = str(excinfo.value)
    assert repr(spec) in message  # names the offending token
    for known in ("'sequential'", "'batched'", "'process[:N]'", "'service:URL'"):
        assert known in message


def test_resolve_backend_service_without_url_names_the_spec():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("service:")
    assert "'service:'" in str(excinfo.value)
    assert "URL" in str(excinfo.value)


def test_resolve_backend_bad_worker_count_names_the_token():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("process:x")
    message = str(excinfo.value)
    assert "'x'" in message and "'process:x'" in message


def test_process_backend_rejects_nonpositive_workers():
    with pytest.raises(ConfigurationError):
        ProcessBackend(workers=0)


def test_backends_are_execution_backends():
    for backend in (SequentialBackend(), BatchedBackend(), ProcessBackend(workers=2)):
        assert isinstance(backend, ExecutionBackend)


# --------------------------------------------------------------------------- #
# In-process backend behaviour
# --------------------------------------------------------------------------- #


def test_sequential_and_batched_backends_agree_on_parity_cells():
    assert_backend_record_parity([SequentialBackend(), BatchedBackend()])


@pytest.mark.parametrize("backend_cls", [SequentialBackend, BatchedBackend])
def test_progress_events_are_ordered_and_cell_scoped(backend_cls):
    sweep = SweepConfig(
        name="events",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=(GraphSpec(family="cycle", n=8), GraphSpec(family="path", n=6)),
        num_seeds=2,
        master_seed=3,
    )
    cells = sweep_cells(sweep)
    events = []
    backend = backend_cls()
    records = backend.run_cells(cells, progress=events.append)
    assert [event.index for event in events] == [0, 1]
    assert all(isinstance(event, CellCompleted) for event in events)
    assert all(event.total == 2 for event in events)
    assert all(event.backend == backend.name for event in events)
    assert [event.cell for event in events] == list(cells)
    # The flattened records are exactly the per-event cell records, in order.
    assert records == tuple(
        record for event in events for record in event.outcome.to_records()
    )


def test_run_cell_outcomes_preserves_cell_order():
    cells = (
        _cell(graph=GraphSpec(family="cycle", n=12)),
        _cell(graph=GraphSpec(family="cycle", n=6)),
        _cell(graph=GraphSpec(family="path", n=5)),
    )
    outcomes = BatchedBackend().run_cell_outcomes(cells)
    assert tuple(outcome.cell for outcome in outcomes) == cells
    assert [outcome.n for outcome in outcomes] == [12, 6, 5]
