"""ProcessBackend parity: sharded cells must be byte-identical to in-process.

These tests run real worker processes (spawn start method, 2 workers — the
configuration CI exercises), so they keep workloads small: the point is
byte-identical records and ordered delivery, not throughput (that is
measured in ``benchmarks/bench_batched_engine.py``).
"""

import pytest

from repro.exec import (
    BatchedBackend,
    CellCompleted,
    ExecutionCell,
    ProcessBackend,
    SequentialBackend,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.montecarlo import run_monte_carlo
from repro.experiments.runner import run_sweep, sweep_cells

from tests.batch.parity_harness import (
    assert_backend_record_parity,
    backend_parity_cells,
    dynamic_parity_cells,
)

#: The worker configuration the CI tests job pins.
WORKERS = 2


def test_process_backend_matches_sequential_and_batched_on_parity_cells():
    # The shared parity cell set: constant-state protocols, a memory
    # baseline, and cycle/path/Erdős–Rényi graphs (randomised family
    # included) — all three backends must agree record for record.
    assert_backend_record_parity(
        [SequentialBackend(), BatchedBackend(), ProcessBackend(workers=WORKERS)]
    )


def test_process_backend_handles_planted_leader_cells():
    cells = backend_parity_cells(
        protocols=("bfw",), num_seeds=3, master_seed=23
    )
    planted = tuple(
        ExecutionCell(
            protocol=cell.protocol,
            graph=cell.graph,
            seeds=cell.seeds,
            max_rounds=20_000,
            planted_leaders=(0, -1),
        )
        for cell in cells
        if cell.graph.family == "path"
    )
    assert planted
    assert_backend_record_parity(
        [SequentialBackend(), ProcessBackend(workers=WORKERS)], cells=planted
    )


def test_process_backend_handles_dynamic_topology_cells():
    # Dynamic cells carry their schedule as pure data, so spawn workers
    # rebuild the schedule (and its churn stream) deterministically — the
    # records must match the in-process backends for every schedule kind,
    # including the explicit static schedule and a disconnecting churn.
    cells = dynamic_parity_cells(protocols=("bfw",), num_seeds=2)
    assert_backend_record_parity(
        [SequentialBackend(), BatchedBackend(), ProcessBackend(workers=WORKERS)],
        cells=cells,
    )


def test_run_sweep_process_backend_is_byte_identical_to_sequential():
    # The acceptance criterion of the backend redesign, stated end to end:
    # run_sweep(backend="process:2") == run_sweep(backend="sequential")
    # under the same master seed.
    sweep = SweepConfig(
        name="acceptance",
        protocols=(ProtocolSpecConfig(name="bfw"), ProtocolSpecConfig(name="emek-keren")),
        graphs=(GraphSpec(family="cycle", n=12), GraphSpec(family="erdos-renyi", n=14, seed=4)),
        num_seeds=3,
        master_seed=29,
    )
    assert run_sweep(sweep, backend="process:2") == run_sweep(sweep, backend="sequential")


def test_process_backend_progress_events_arrive_in_cell_order():
    cells = backend_parity_cells(protocols=("bfw",), num_seeds=2)
    events = []
    backend = ProcessBackend(workers=WORKERS)
    backend.run_cells(cells, progress=events.append)
    assert [event.index for event in events] == list(range(len(cells)))
    assert all(isinstance(event, CellCompleted) for event in events)
    assert all(event.backend == f"process:{WORKERS}" for event in events)
    assert [event.cell for event in events] == list(cells)


def test_process_backend_empty_cells_is_a_noop():
    assert ProcessBackend(workers=WORKERS).run_cells(()) == ()


def test_run_monte_carlo_process_backend_matches_batched():
    kwargs = dict(protocol="bfw", graph="cycle", n=16, replicas=4, master_seed=31)
    batched = run_monte_carlo(**kwargs)
    process = run_monte_carlo(backend=f"process:{WORKERS}", **kwargs)
    assert process.batched is True  # workers run the batched cell path
    assert list(batched.result.effective_rounds()) == list(
        process.result.effective_rounds()
    )
    assert list(batched.result.leader_node) == list(process.result.leader_node)
    assert batched.distinct_leaders == process.distinct_leaders
