"""Tests for the canonical cell spec / signature helpers.

The signature keys the sweep service's result cache, so the contract is
strict in both directions: equal cells must hash equal (across processes
and spec round-trips), and any change to a field that affects execution —
seed *order* included — must change the hash.
"""

import json

import pytest

from repro.batch.observers import ObserverSpec
from repro.dynamics.schedules import ScheduleSpec
from repro.errors import ConfigurationError
from repro.exec import (
    ExecutionCell,
    canonical_cell_json,
    cell_from_spec,
    cell_signature,
    cell_to_spec,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig


def _cell(**overrides):
    defaults = dict(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=10),
        seeds=(1, 2, 3),
    )
    defaults.update(overrides)
    return ExecutionCell(**defaults)


# --------------------------------------------------------------------------- #
# Equal cells, equal signatures
# --------------------------------------------------------------------------- #


def test_equal_cells_have_equal_signatures():
    assert cell_signature(_cell()) == cell_signature(_cell())


def test_signature_is_a_sha256_hex_digest():
    signature = cell_signature(_cell())
    assert len(signature) == 64
    assert set(signature) <= set("0123456789abcdef")


def test_signature_survives_spec_round_trip():
    cell = _cell(
        max_rounds=500,
        planted_leaders=(0, 4),
        graph_rng_key=(17, "montecarlo-graph", "cycle", 10),
        schedule=ScheduleSpec(kind="edge-churn", params={"churn_rate": 2, "seed": 7}),
        observers=(ObserverSpec(kind="trace"),),
    )
    # Through JSON: exactly what the service daemon receives and rebuilds.
    rebuilt = cell_from_spec(json.loads(json.dumps(cell_to_spec(cell))))
    assert rebuilt == cell
    assert cell_signature(rebuilt) == cell_signature(cell)


def test_canonical_json_is_key_sorted_and_compact():
    rendering = canonical_cell_json(_cell())
    parsed = json.loads(rendering)
    assert list(parsed) == sorted(parsed)
    assert ": " not in rendering and ", " not in rendering


# --------------------------------------------------------------------------- #
# Any execution-relevant change, different signature
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "variant",
    [
        dict(seeds=(3, 2, 1)),  # seed ORDER matters
        dict(seeds=(1, 2)),
        dict(protocol=ProtocolSpecConfig(name="bfw-nonuniform")),
        dict(protocol=ProtocolSpecConfig(name="bfw", params={"beep_probability": 0.3})),
        dict(graph=GraphSpec(family="path", n=10)),
        dict(graph=GraphSpec(family="cycle", n=12)),
        dict(graph=GraphSpec(family="cycle", n=10, seed=5)),
        dict(max_rounds=100),
        dict(planted_leaders=(0,)),
        dict(graph_rng_key=(1, "montecarlo-graph", "cycle", 10)),
        dict(schedule=ScheduleSpec(kind="edge-churn", params={"churn_rate": 1})),
        dict(observers=(ObserverSpec(kind="trace"),)),
    ],
    ids=[
        "seed-order",
        "seed-count",
        "protocol-name",
        "protocol-params",
        "graph-family",
        "graph-size",
        "graph-seed",
        "max-rounds",
        "planted-leaders",
        "graph-rng-key",
        "schedule",
        "observers",
    ],
)
def test_changed_field_changes_signature(variant):
    assert cell_signature(_cell(**variant)) != cell_signature(_cell())


def test_schedule_param_change_changes_signature():
    churn1 = _cell(schedule=ScheduleSpec(kind="edge-churn", params={"churn_rate": 1}))
    churn2 = _cell(schedule=ScheduleSpec(kind="edge-churn", params={"churn_rate": 2}))
    assert cell_signature(churn1) != cell_signature(churn2)


def test_observer_spec_change_changes_signature():
    plain = _cell(observers=(ObserverSpec(kind="trace"),))
    configured = _cell(
        observers=(ObserverSpec(kind="trace", params={"max_rounds": 5}),)
    )
    assert cell_signature(plain) != cell_signature(configured)


# --------------------------------------------------------------------------- #
# cell_from_spec validation
# --------------------------------------------------------------------------- #


def test_cell_from_spec_rejects_non_object():
    with pytest.raises(ConfigurationError):
        cell_from_spec("not a dict")


@pytest.mark.parametrize(
    "mutate, needle",
    [
        (lambda spec: spec.pop("protocol"), "protocol"),
        (lambda spec: spec.pop("graph"), "graph"),
        (lambda spec: spec.update(seeds=[]), "seeds"),
        (lambda spec: spec["protocol"].pop("name"), "name"),
        (lambda spec: spec["graph"].pop("family"), "family"),
        (lambda spec: spec.update(schedule={"params": {}}), "kind"),
        (lambda spec: spec.update(observers=[{"params": {}}]), "kind"),
    ],
)
def test_cell_from_spec_names_the_offending_field(mutate, needle):
    spec = cell_to_spec(_cell())
    mutate(spec)
    with pytest.raises(ConfigurationError) as excinfo:
        cell_from_spec(spec)
    assert needle in str(excinfo.value)
