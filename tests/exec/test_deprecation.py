"""Deprecation shims: ``batched=`` kwargs and ``--batched`` CLI flags.

Every shim must (a) emit a :class:`DeprecationWarning`, (b) resolve to the
batched backend, and (c) leave output unchanged relative to the explicit
``backend="batched"`` spelling.
"""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.exec import resolve_backend_with_deprecated_batched
from repro.exec.backends import BatchedBackend, SequentialBackend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.figures import (
    ablation_experiment,
    lower_bound_experiment,
    scaling_experiment,
)
from repro.experiments.runner import run_sweep
from repro.experiments.tables import generate_table1

SWEEP = SweepConfig(
    name="shim",
    protocols=(ProtocolSpecConfig(name="bfw"),),
    graphs=(GraphSpec(family="cycle", n=8),),
    num_seeds=2,
    master_seed=13,
)


def test_resolver_maps_batched_booleans_to_backends():
    with pytest.warns(DeprecationWarning):
        backend = resolve_backend_with_deprecated_batched(None, True)
    assert isinstance(backend, BatchedBackend)
    with pytest.warns(DeprecationWarning):
        backend = resolve_backend_with_deprecated_batched(None, False)
    assert isinstance(backend, SequentialBackend)
    # No batched= at all: no warning, default applies.
    assert isinstance(
        resolve_backend_with_deprecated_batched(None, None), SequentialBackend
    )


def test_resolver_rejects_backend_and_batched_together():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ConfigurationError):
            resolve_backend_with_deprecated_batched("sequential", True)


def test_run_sweep_batched_kwarg_warns_and_matches_backend():
    expected = run_sweep(SWEEP, backend="batched")
    with pytest.warns(DeprecationWarning, match="deprecated"):
        records = run_sweep(SWEEP, batched=True)
    assert records == expected
    with pytest.warns(DeprecationWarning):
        records = run_sweep(SWEEP, batched=False)
    assert records == run_sweep(SWEEP)


def test_scaling_experiment_batched_kwarg_warns_and_matches_backend():
    kwargs = dict(mode="uniform", family="cycle", diameters=(4, 8), num_seeds=2, master_seed=6)
    expected = scaling_experiment(backend="batched", **kwargs)
    with pytest.warns(DeprecationWarning):
        result = scaling_experiment(batched=True, **kwargs)
    assert result == expected


def test_lower_bound_experiment_batched_kwarg_warns_and_matches_backend():
    kwargs = dict(diameters=(4, 8), num_seeds=2, master_seed=3)
    expected = lower_bound_experiment(backend="batched", **kwargs)
    with pytest.warns(DeprecationWarning):
        result = lower_bound_experiment(batched=True, **kwargs)
    assert result == expected


def test_ablation_experiment_batched_kwarg_warns_and_matches_backend():
    kwargs = dict(diameter=6, probabilities=(0.5,), num_seeds=2, master_seed=4)
    expected = ablation_experiment(backend="batched", **kwargs)
    with pytest.warns(DeprecationWarning):
        result = ablation_experiment(batched=True, **kwargs)
    assert result == expected


def test_generate_table1_batched_kwarg_warns_and_matches_backend():
    kwargs = dict(
        protocols=("bfw",),
        graphs=(GraphSpec(family="cycle", n=8),),
        num_seeds=2,
        master_seed=7,
    )
    expected = generate_table1(backend="batched", **kwargs)
    with pytest.warns(DeprecationWarning):
        result = generate_table1(batched=True, **kwargs)
    assert result.records == expected.records
    assert result.render() == expected.render()


# --------------------------------------------------------------------------- #
# CLI flag shims
# --------------------------------------------------------------------------- #


def test_cli_batched_flag_warns_and_output_is_unchanged(capsys):
    argv = ["scaling", "--mode", "nonuniform", "--diameters", "4", "8", "--seeds", "2"]
    assert main(argv + ["--backend", "batched"]) == 0
    expected = capsys.readouterr().out
    with pytest.warns(DeprecationWarning, match="--backend batched"):
        assert main(argv + ["--batched"]) == 0
    assert capsys.readouterr().out == expected


def test_cli_ablation_batched_flag_warns(capsys):
    argv = ["ablation", "--diameter", "6", "--seeds", "2"]
    assert main(argv + ["--backend", "batched"]) == 0
    expected = capsys.readouterr().out
    with pytest.warns(DeprecationWarning):
        assert main(argv + ["--batched"]) == 0
    assert capsys.readouterr().out == expected


def test_cli_rejects_batched_with_backend():
    with pytest.raises(ConfigurationError):
        main(
            [
                "scaling", "--mode", "nonuniform", "--diameters", "4",
                "--seeds", "1", "--batched", "--backend", "sequential",
            ]
        )


def test_cli_workers_implies_process_backend(capsys):
    argv = [
        "lower-bound", "--diameters", "4", "8", "--seeds", "2", "--workers", "2",
    ]
    assert main(argv) == 0
    process_out = capsys.readouterr().out
    assert main(["lower-bound", "--diameters", "4", "8", "--seeds", "2"]) == 0
    assert capsys.readouterr().out == process_out


def test_cli_workers_rejects_non_process_backends():
    with pytest.raises(ConfigurationError):
        main(
            [
                "scaling", "--mode", "nonuniform", "--diameters", "4",
                "--seeds", "1", "--backend", "batched", "--workers", "2",
            ]
        )
