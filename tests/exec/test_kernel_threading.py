"""Kernel threading through cells, backends and the service wire.

The ``kernel=`` seam travels exactly like ``shard_size``: validated at the
edges (:func:`repro.batch.kernels.validate_kernel`), stamped onto cells by
the owning backend when a cell does not choose its own, excluded from the
cell signature (records are kernel-invariant, so cache keys must be too),
and forwarded verbatim over the sweep-service wire to resolve on the
executing workers.
"""

import pytest

from repro.batch.kernels import numba_available
from repro.errors import ConfigurationError
from repro.exec import ExecutionCell, resolve_backend
from repro.exec.backends import (
    BatchedBackend,
    ProcessBackend,
    SequentialBackend,
    _stamp_kernel,
)
from repro.exec.cells import (
    canonical_cell_json,
    cell_from_spec,
    cell_signature,
    cell_to_spec,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.seeds import trial_seeds


def _cell(kernel=None, tag="kernel-exec", num_seeds=4):
    return ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=16),
        seeds=trial_seeds(19, tag, num_seeds),
        max_rounds=4000,
        kernel=kernel,
    )


def test_cell_kernel_round_trips_through_spec():
    cell = _cell(kernel="python")
    spec = cell_to_spec(cell)
    assert spec["kernel"] == "python"
    assert cell_from_spec(spec) == cell
    bare = _cell()
    assert cell_to_spec(bare)["kernel"] is None
    assert cell_from_spec(cell_to_spec(bare)).kernel is None


def test_cell_validates_kernel_at_construction():
    assert _cell(kernel=" NumPy ").kernel == "numpy"
    # Availability-blind: a numba-stamped cell must construct on clients
    # without numba (the executing worker may have it).
    assert _cell(kernel="numba").kernel == "numba"
    with pytest.raises(ConfigurationError):
        _cell(kernel="fortran")


def test_kernel_excluded_from_signature():
    bare = _cell()
    assert "kernel" not in canonical_cell_json(bare)
    for kernel in ("numpy", "python", "numba", "xp:numpy"):
        stamped = _cell(kernel=kernel)
        assert canonical_cell_json(stamped) == canonical_cell_json(bare)
        assert cell_signature(stamped) == cell_signature(bare)


def test_stamp_kernel_cell_choice_wins():
    bare = _cell()
    assert _stamp_kernel(bare, None) is bare
    assert _stamp_kernel(bare, "python").kernel == "python"
    own = _cell(kernel="numpy")
    assert _stamp_kernel(own, "python") is own


@pytest.mark.parametrize(
    "backend_type", [SequentialBackend, BatchedBackend, ProcessBackend]
)
def test_backends_validate_kernel(backend_type):
    assert backend_type().kernel is None
    assert backend_type(kernel="python").kernel == "python"
    with pytest.raises(ConfigurationError):
        backend_type(kernel="fortran")


def test_resolve_backend_sets_kernel():
    backend = resolve_backend("batched", kernel="python")
    assert backend.kernel == "python"
    # None leaves the backend's own setting alone.
    assert resolve_backend(BatchedBackend(kernel="numpy")).kernel == "numpy"
    with pytest.raises(ConfigurationError):
        resolve_backend("batched", kernel="fortran")


@pytest.mark.parametrize("shard_size", [1, "auto"])
@pytest.mark.parametrize("backend", ["batched", "process:2"])
def test_backend_kernel_records_match_sequential(backend, shard_size):
    cells = (_cell(), _cell(tag="kernel-exec-b"))
    reference = resolve_backend("sequential").run_cells(cells)
    stamped = resolve_backend(backend, shard_size=shard_size, kernel="python")
    assert stamped.run_cells(cells) == reference


def test_explicit_cell_kernel_overrides_backend_default():
    # The cell asks for numpy; the backend default must not replace it.
    # Equal records on both prove the routing, not the kernel, decides.
    cell = _cell(kernel="numpy")
    reference = resolve_backend("sequential").run_cells((cell,))
    backend = resolve_backend("batched", kernel="python")
    assert backend.run_cells((cell,)) == reference


def test_service_stamps_submission_kernel():
    from repro.service.server import SweepService

    cells = (_cell(), _cell(kernel="numpy", tag="kernel-svc"))
    reference = resolve_backend("sequential").run_cells(cells)
    with SweepService(port=0, workers=2, kernel="python") as service:
        backend = resolve_backend(f"service:{service.url}")
        assert backend.run_cells(cells) == reference
        assert service.health_payload()["kernel"] == "python"


def test_service_rejects_bad_kernel_submission():
    from repro.service.server import SweepService

    with SweepService(port=0, workers=1) as service:
        with pytest.raises(ConfigurationError):
            service.submit((_cell(),), kernel="fortran")


def test_service_backend_forwards_kernel():
    from repro.service.client import ServiceBackend
    from repro.service.server import SweepService

    cells = (_cell(tag="kernel-svc-fwd"),)
    reference = resolve_backend("sequential").run_cells(cells)
    with SweepService(port=0, workers=1) as service:
        backend = ServiceBackend(service.url, kernel="python")
        assert backend.run_cells(cells) == reference


def test_cli_kernel_flag_round_trips(capsys):
    from repro.cli import main

    code = main(
        [
            "montecarlo",
            "--protocol", "bfw",
            "--graph", "cycle",
            "--n", "16",
            "--replicas", "4",
            "--kernel", "python",
        ]
    )
    assert code == 0
    assert "Monte Carlo" in capsys.readouterr().out


def test_cli_explicit_numba_without_numba_fails():
    if numba_available():
        pytest.skip("numba importable: the explicit spec resolves fine here")
    from repro.cli import main

    with pytest.raises(ConfigurationError, match="numba"):
        main(
            [
                "montecarlo",
                "--protocol", "bfw",
                "--graph", "cycle",
                "--n", "16",
                "--replicas", "4",
                "--kernel", "numba",
            ]
        )
