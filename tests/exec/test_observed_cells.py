"""Observed cells across backends: identical records AND observations.

`ExecutionCell.observers` carries pure-data ObserverSpec entries, so observed
cells must produce byte-identical observations on the sequential loop (per-
replica R=1 observers, merged), the batched engines, and spawn-started
process workers (observations ship back inside the pickled CellOutcome).
"""

import pytest

from repro.batch import BatchTrace, LeaderExtinctionReport, ObserverSpec
from repro.dynamics import ScheduleSpec
from repro.errors import ConfigurationError
from repro.exec import (
    BatchedBackend,
    ExecutionCell,
    ProcessBackend,
    SequentialBackend,
    execute_cell_batched,
    execute_cell_sequential,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig

from tests.batch.parity_harness import (
    assert_backend_observation_parity,
    observed_parity_cells,
)

#: The worker configuration the CI tests job pins.
WORKERS = 2


def _cell(protocol="bfw", observers=(ObserverSpec("trace"),), **kwargs):
    defaults = dict(
        protocol=ProtocolSpecConfig(name=protocol),
        graph=GraphSpec(family="cycle", n=12),
        seeds=(0, 1, 2),
        max_rounds=2000,
        observers=observers,
    )
    defaults.update(kwargs)
    return ExecutionCell(**defaults)


def test_observed_cells_reject_non_spec_observers():
    with pytest.raises(ConfigurationError, match="ObserverSpec"):
        _cell(observers=("trace",))


def test_observed_cell_pickles():
    import pickle

    cell = _cell(observers=(ObserverSpec("trace"), ObserverSpec("leader-extinction")))
    assert pickle.loads(pickle.dumps(cell)) == cell


def test_sequential_and_batched_executors_agree_on_observations():
    cell = _cell(
        observers=(ObserverSpec("trace"), ObserverSpec("leader-extinction"))
    )
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert sequential.to_records() == batched.to_records()
    assert sequential.observations == batched.observations
    trace, report = batched.observations
    assert isinstance(trace, BatchTrace)
    assert isinstance(report, LeaderExtinctionReport)
    assert trace.num_replicas == cell.num_replicas
    assert report.num_replicas == cell.num_replicas


def test_observed_memory_cells_agree_between_executors():
    cell = _cell(
        protocol="emek-keren", observers=(ObserverSpec("leader-extinction"),)
    )
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert sequential.to_records() == batched.to_records()
    assert sequential.observations == batched.observations


def test_observed_standalone_runner_cells_are_rejected():
    cell = _cell(
        protocol="pipelined-ids", observers=(ObserverSpec("leader-extinction"),)
    )
    with pytest.raises(ConfigurationError, match="observ"):
        execute_cell_sequential(cell)
    with pytest.raises(ConfigurationError, match="observ"):
        execute_cell_batched(cell)


def test_observed_state_aware_cells_fall_back_to_sequential_identically():
    cell = _cell(
        schedule=ScheduleSpec("leader-isolating", {"cut_per_round": 1}),
        observers=(ObserverSpec("trace"),),
    )
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert batched.batched is False
    assert sequential.to_records() == batched.to_records()
    assert sequential.observations == batched.observations


def test_unobserved_cells_have_no_observations():
    outcome = execute_cell_batched(_cell(observers=()))
    assert outcome.observations is None


def test_observed_cells_are_backend_invariant_including_process_workers():
    # The acceptance criterion of the observation layer, stated end to end:
    # traces and extinction reports are byte-identical on sequential,
    # batched, and process:2 — static and churned cells alike.
    cells = observed_parity_cells(num_seeds=2)
    assert_backend_observation_parity(
        [SequentialBackend(), BatchedBackend(), ProcessBackend(workers=WORKERS)],
        cells=cells,
    )
