"""Tests for the classic population protocols."""

import numpy as np
import pytest

from repro.graphs.generators import clique_graph
from repro.population.protocols import (
    FOLLOWER,
    INFECTED,
    LEADER,
    SUSCEPTIBLE,
    CoinedElimination,
    EpidemicBroadcast,
    PairwiseElimination,
)
from repro.population.scheduler import PopulationScheduler


def test_pairwise_elimination_transition(rng):
    protocol = PairwiseElimination()
    assert protocol.interact(LEADER, LEADER, rng) == (FOLLOWER, LEADER)
    assert protocol.interact(LEADER, FOLLOWER, rng) == (LEADER, FOLLOWER)
    assert protocol.interact(FOLLOWER, FOLLOWER, rng) == (FOLLOWER, FOLLOWER)
    assert protocol.is_leader(LEADER)
    assert not protocol.is_leader(FOLLOWER)


def test_coined_elimination_keeps_exactly_one_leader(rng):
    protocol = CoinedElimination()
    outcomes = {protocol.interact(LEADER, LEADER, rng) for _ in range(50)}
    assert outcomes <= {(LEADER, FOLLOWER), (FOLLOWER, LEADER)}
    assert len(outcomes) == 2  # both orders occur


def test_epidemic_broadcast_infects(rng):
    protocol = EpidemicBroadcast()
    assert protocol.interact(INFECTED, SUSCEPTIBLE, rng) == (INFECTED, INFECTED)
    assert protocol.interact(SUSCEPTIBLE, SUSCEPTIBLE, rng) == (
        SUSCEPTIBLE,
        SUSCEPTIBLE,
    )


def test_elimination_quadratic_scaling_on_clique():
    """Constant-state leader election needs Theta(n^2) interactions [10]."""
    means = []
    for n in (16, 32):
        interactions = []
        for seed in range(5):
            scheduler = PopulationScheduler(clique_graph(n), PairwiseElimination())
            result = scheduler.run(max_interactions=200 * n * n, rng=seed)
            assert result.converged
            interactions.append(result.convergence_interactions)
        means.append(float(np.mean(interactions)))
    ratio = means[1] / means[0]
    # Doubling n should roughly quadruple the interaction count.
    assert 2.0 < ratio < 8.0


def test_parallel_time_normalisation():
    n = 24
    scheduler = PopulationScheduler(clique_graph(n), PairwiseElimination())
    result = scheduler.run(max_interactions=100 * n * n, rng=4)
    assert result.parallel_time == pytest.approx(result.interactions_executed / n)
    assert result.convergence_parallel_time <= result.parallel_time
