"""Test package."""
