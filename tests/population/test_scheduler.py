"""Tests for the population-protocols scheduler."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.graphs.generators import clique_graph, path_graph
from repro.population.protocols import (
    INFECTED,
    SUSCEPTIBLE,
    EpidemicBroadcast,
    PairwiseElimination,
)
from repro.population.scheduler import PopulationScheduler


def test_requires_at_least_one_edge():
    from repro.graphs.topology import Topology

    lonely = Topology(1, [], require_connected=False)
    with pytest.raises(ConfigurationError):
        PopulationScheduler(lonely, PairwiseElimination())


def test_rejects_negative_budget():
    scheduler = PopulationScheduler(clique_graph(4), PairwiseElimination())
    with pytest.raises(ConfigurationError):
        scheduler.run(max_interactions=-1)


def test_pairwise_elimination_converges_on_clique():
    n = 30
    scheduler = PopulationScheduler(clique_graph(n), PairwiseElimination())
    result = scheduler.run(max_interactions=50 * n * n, rng=1)
    assert result.converged
    assert result.final_leader_count == 1
    assert result.convergence_interactions is not None
    assert result.parallel_time > 0


def test_initial_states_override():
    n = 20
    scheduler = PopulationScheduler(clique_graph(n), EpidemicBroadcast())
    states = [SUSCEPTIBLE] * n
    states[0] = INFECTED
    result = scheduler.run(
        max_interactions=40 * n * n,
        rng=2,
        initial_states=states,
        stop_at_single_leader=False,
    )
    # The infection spreads to everyone.
    assert result.final_leader_count == n


def test_initial_states_wrong_length_rejected():
    scheduler = PopulationScheduler(clique_graph(5), EpidemicBroadcast())
    with pytest.raises(SimulationError):
        scheduler.run(max_interactions=10, initial_states=[SUSCEPTIBLE] * 3)


def test_sparse_graphs_can_stall_with_constant_states():
    """On a path, two leaders separated by followers can never interact, so
    the two-state protocol generally stalls — which is why the classic model
    assumes a complete interaction graph."""
    scheduler = PopulationScheduler(path_graph(10), PairwiseElimination())
    result = scheduler.run(max_interactions=20_000, rng=3)
    assert result.final_leader_count >= 1
    assert result.interactions_executed <= 20_000


def test_result_reproducible():
    scheduler = PopulationScheduler(clique_graph(16), PairwiseElimination())
    first = scheduler.run(max_interactions=10_000, rng=9)
    second = scheduler.run(max_interactions=10_000, rng=9)
    assert first.convergence_interactions == second.convergence_interactions
