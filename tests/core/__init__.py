"""Test package."""
