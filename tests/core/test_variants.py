"""Tests for the ablation variants of BFW."""

import pytest

from repro.beeping.engine import VectorizedEngine
from repro.core.states import State
from repro.core.variants import (
    EagerEliminationBFWProtocol,
    NoFreezeBFWProtocol,
    NoRelayBFWProtocol,
)
from repro.errors import ProtocolError
from repro.graphs.generators import path_graph


def test_no_freeze_has_four_states():
    protocol = NoFreezeBFWProtocol()
    protocol.validate()
    assert protocol.num_states() == 4
    assert State.F_LEADER not in protocol.states()
    assert State.F_FOLLOWER not in protocol.states()


def test_no_relay_followers_never_beep():
    protocol = NoRelayBFWProtocol()
    protocol.validate()
    table = protocol.transition_table()
    # A waiting follower never enters a beeping state under either kernel.
    assert table.heard[State.W_FOLLOWER] == {State.W_FOLLOWER: 1.0}
    assert table.silent[State.W_FOLLOWER] == {State.W_FOLLOWER: 1.0}


def test_eager_elimination_keeps_six_states():
    protocol = EagerEliminationBFWProtocol()
    protocol.validate()
    assert protocol.num_states() == 6
    # The eliminated leader does not relay: W• -> W◦ under δ⊤.
    assert protocol.transition_table().heard[State.W_LEADER] == {
        State.W_FOLLOWER: 1.0
    }


@pytest.mark.parametrize(
    "factory",
    [NoFreezeBFWProtocol, NoRelayBFWProtocol, EagerEliminationBFWProtocol],
)
def test_variants_reject_invalid_probability(factory):
    with pytest.raises(ProtocolError):
        factory(beep_probability=0.0)


def test_no_relay_stalls_on_long_paths():
    """Without wave relaying, distant leaders cannot eliminate each other."""
    topology = path_graph(12)
    engine = VectorizedEngine(topology, NoRelayBFWProtocol())
    result = engine.run(max_rounds=3000, rng=0)
    # Leaders further than 2 hops apart survive forever.
    assert result.final_leader_count >= 2


def test_eager_elimination_still_converges_on_short_paths():
    topology = path_graph(6)
    engine = VectorizedEngine(topology, EagerEliminationBFWProtocol())
    result = engine.run(max_rounds=50_000, rng=3)
    assert result.converged
    assert result.final_leader_count == 1
