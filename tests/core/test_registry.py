"""Tests for the protocol registry."""

import pytest

from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.registry import (
    ProtocolSpec,
    available_protocols,
    create_protocol,
    get_protocol_spec,
    register_protocol,
)
from repro.errors import ConfigurationError


def test_builtin_protocols_are_registered():
    names = available_protocols()
    assert "bfw" in names
    assert "bfw-nonuniform" in names
    assert "bfw-no-freeze" in names


def test_create_bfw_with_default_probability():
    protocol = create_protocol("bfw")
    assert isinstance(protocol, BFWProtocol)
    assert protocol.beep_probability == pytest.approx(0.5)


def test_create_bfw_with_override():
    protocol = create_protocol("bfw", beep_probability=0.2)
    assert protocol.beep_probability == pytest.approx(0.2)


def test_create_nonuniform_requires_diameter():
    with pytest.raises(ConfigurationError):
        create_protocol("bfw-nonuniform")
    protocol = create_protocol("bfw-nonuniform", diameter=15)
    assert isinstance(protocol, NonUniformBFWProtocol)
    assert protocol.beep_probability == pytest.approx(1.0 / 16.0)


def test_unneeded_knowledge_is_ignored():
    protocol = create_protocol("bfw", diameter=100, n=1000)
    assert isinstance(protocol, BFWProtocol)


def test_unknown_protocol_raises_with_known_names():
    with pytest.raises(ConfigurationError) as excinfo:
        create_protocol("definitely-not-a-protocol")
    assert "bfw" in str(excinfo.value)


def test_register_custom_protocol():
    register_protocol(
        ProtocolSpec(
            name="bfw-custom-test",
            factory=lambda beep_probability=0.5: BFWProtocol(beep_probability),
            uniform=True,
            description="test entry",
        )
    )
    assert "bfw-custom-test" in available_protocols()
    spec = get_protocol_spec("bfw-custom-test")
    assert spec.description == "test entry"
    assert isinstance(create_protocol("bfw-custom-test"), BFWProtocol)
