"""Tests for the BFW protocol definition (Figure 1)."""

import pytest

from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.states import State
from repro.errors import ProtocolError


def test_default_parameters_match_the_paper():
    protocol = BFWProtocol()
    assert protocol.beep_probability == pytest.approx(0.5)
    assert protocol.initial_state is State.W_LEADER
    assert protocol.num_states() == 6


@pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
def test_invalid_probability_rejected(p):
    with pytest.raises(ProtocolError):
        BFWProtocol(beep_probability=p)


def test_validate_passes():
    BFWProtocol(beep_probability=0.25).validate()


def test_leader_and_beeping_sets_match_figure1():
    protocol = BFWProtocol()
    assert set(protocol.leader_states()) == {
        State.W_LEADER,
        State.B_LEADER,
        State.F_LEADER,
    }
    assert set(protocol.beeping_states()) == {State.B_LEADER, State.B_FOLLOWER}


def test_transition_table_matches_figure1():
    table = BFWProtocol(beep_probability=0.5).transition_table()
    # δ⊤ transitions (solid arrows in Figure 1).
    assert table.heard[State.W_LEADER] == {State.B_FOLLOWER: 1.0}
    assert table.heard[State.B_LEADER] == {State.F_LEADER: 1.0}
    assert table.heard[State.F_LEADER] == {State.W_LEADER: 1.0}
    assert table.heard[State.W_FOLLOWER] == {State.B_FOLLOWER: 1.0}
    assert table.heard[State.B_FOLLOWER] == {State.F_FOLLOWER: 1.0}
    assert table.heard[State.F_FOLLOWER] == {State.W_FOLLOWER: 1.0}
    # δ⊥ transitions (dashed arrows); W• is the only probabilistic one.
    assert table.silent[State.W_LEADER][State.B_LEADER] == pytest.approx(0.5)
    assert table.silent[State.W_LEADER][State.W_LEADER] == pytest.approx(0.5)
    assert table.silent[State.F_LEADER] == {State.W_LEADER: 1.0}
    assert table.silent[State.W_FOLLOWER] == {State.W_FOLLOWER: 1.0}
    assert table.silent[State.F_FOLLOWER] == {State.W_FOLLOWER: 1.0}


def test_frozen_state_ignores_environment():
    table = BFWProtocol().transition_table()
    assert table.heard[State.F_LEADER] == table.silent[State.F_LEADER]
    assert table.heard[State.F_FOLLOWER] == table.silent[State.F_FOLLOWER]


def test_equality_and_hash_depend_on_p():
    assert BFWProtocol(0.5) == BFWProtocol(0.5)
    assert BFWProtocol(0.5) != BFWProtocol(0.25)
    assert hash(BFWProtocol(0.5)) == hash(BFWProtocol(0.5))


def test_nonuniform_uses_one_over_d_plus_one():
    protocol = NonUniformBFWProtocol(diameter=9)
    assert protocol.beep_probability == pytest.approx(1.0 / 10.0)
    assert protocol.diameter == 9
    assert protocol.name == "bfw-nonuniform"


def test_nonuniform_scale_approximation():
    protocol = NonUniformBFWProtocol(diameter=10, scale=2.0)
    assert protocol.beep_probability == pytest.approx(1.0 / 21.0)


@pytest.mark.parametrize("diameter", [0, -3])
def test_nonuniform_rejects_bad_diameter(diameter):
    with pytest.raises(ProtocolError):
        NonUniformBFWProtocol(diameter=diameter)


def test_nonuniform_is_distinct_from_uniform_with_same_p():
    uniform = BFWProtocol(beep_probability=0.1)
    nonuniform = NonUniformBFWProtocol(diameter=9)
    assert uniform.beep_probability == pytest.approx(nonuniform.beep_probability)
    assert uniform != nonuniform
