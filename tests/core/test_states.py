"""Tests for the six-state encoding (Figure 1 terminology)."""

import pytest

from repro.core.states import (
    BEEPING_STATES,
    FOLLOWER_STATES,
    FROZEN_STATES,
    LEADER_STATES,
    LISTENING_STATES,
    NUM_STATES,
    WAITING_STATES,
    Behaviour,
    State,
    state_from_short_name,
)


def test_exactly_six_states():
    assert NUM_STATES == 6
    assert len(list(State)) == 6


def test_leader_states_are_first_three():
    assert LEADER_STATES == {State.W_LEADER, State.B_LEADER, State.F_LEADER}
    for state in LEADER_STATES:
        assert state.is_leader
    for state in FOLLOWER_STATES:
        assert not state.is_leader


def test_beeping_states_match_qb():
    assert BEEPING_STATES == {State.B_LEADER, State.B_FOLLOWER}
    for state in BEEPING_STATES:
        assert state.is_beeping
        assert not state.is_listening
    for state in LISTENING_STATES:
        assert state.is_listening


def test_listening_and_beeping_partition_the_states():
    assert BEEPING_STATES | LISTENING_STATES == set(State)
    assert not BEEPING_STATES & LISTENING_STATES


def test_waiting_and_frozen_classification():
    assert WAITING_STATES == {State.W_LEADER, State.W_FOLLOWER}
    assert FROZEN_STATES == {State.F_LEADER, State.F_FOLLOWER}
    assert State.W_LEADER.is_waiting and not State.W_LEADER.is_frozen
    assert State.F_FOLLOWER.is_frozen and not State.F_FOLLOWER.is_waiting


def test_behaviour_property():
    assert State.W_LEADER.behaviour is Behaviour.WAITING
    assert State.B_FOLLOWER.behaviour is Behaviour.BEEPING
    assert State.F_LEADER.behaviour is Behaviour.FROZEN


def test_with_role_preserves_behaviour():
    assert State.W_LEADER.with_role(leader=False) is State.W_FOLLOWER
    assert State.B_FOLLOWER.with_role(leader=True) is State.B_LEADER
    assert State.F_LEADER.with_role(leader=True) is State.F_LEADER


def test_short_names_round_trip():
    for state in State:
        assert state_from_short_name(state.short_name) is state


@pytest.mark.parametrize("bad", ["", "X*", "W", "Wx", "BFW"])
def test_state_from_short_name_rejects_invalid(bad):
    with pytest.raises(ValueError):
        state_from_short_name(bad)
