"""Tests for the protocol abstraction (Section 1.1 probabilistic FSMs)."""

import numpy as np
import pytest

from repro.core.bfw import BFWProtocol
from repro.core.protocol import (
    TransitionTable,
    bernoulli,
    deterministic,
    enumerate_reachable_states,
)
from repro.core.states import State
from repro.errors import ProtocolError


def test_deterministic_helper_builds_point_mass():
    dist = deterministic(State.F_LEADER)
    assert dist == {State.F_LEADER: 1.0}


def test_bernoulli_helper_builds_two_outcomes():
    dist = bernoulli(State.B_LEADER, State.W_LEADER, 0.25)
    assert dist[State.B_LEADER] == pytest.approx(0.25)
    assert dist[State.W_LEADER] == pytest.approx(0.75)


def test_bernoulli_degenerate_probabilities_collapse():
    assert bernoulli("a", "b", 1.0) == {"a": 1.0}
    assert bernoulli("a", "b", 0.0) == {"b": 1.0}


def test_bernoulli_rejects_invalid_probability():
    with pytest.raises(ProtocolError):
        bernoulli("a", "b", 1.5)


def test_transition_table_validate_accepts_bfw():
    BFWProtocol().transition_table().validate()


def test_transition_table_validate_rejects_non_stochastic():
    table = TransitionTable(
        silent={State.W_LEADER: {State.W_LEADER: 0.4}},
        heard={State.W_LEADER: {State.W_LEADER: 1.0}},
    )
    with pytest.raises(ProtocolError):
        table.validate()


def test_transition_table_validate_rejects_negative_probability():
    table = TransitionTable(
        silent={State.W_LEADER: {State.W_LEADER: 1.2, State.B_LEADER: -0.2}},
        heard={State.W_LEADER: {State.W_LEADER: 1.0}},
    )
    with pytest.raises(ProtocolError):
        table.validate()


def test_protocol_transition_samples_from_correct_kernel(rng):
    protocol = BFWProtocol(beep_probability=0.5)
    # δ⊤ from W• is deterministic elimination.
    assert (
        protocol.transition(State.W_LEADER, heard_beep=True, rng=rng)
        is State.B_FOLLOWER
    )
    # δ⊥ from F• returns to W• deterministically.
    assert (
        protocol.transition(State.F_LEADER, heard_beep=False, rng=rng)
        is State.W_LEADER
    )


def test_protocol_transition_coin_toss_statistics(rng):
    protocol = BFWProtocol(beep_probability=0.3)
    outcomes = [
        protocol.transition(State.W_LEADER, heard_beep=False, rng=rng)
        for _ in range(4000)
    ]
    beep_fraction = sum(1 for state in outcomes if state is State.B_LEADER) / len(
        outcomes
    )
    assert beep_fraction == pytest.approx(0.3, abs=0.04)


def test_transition_missing_kernel_raises(rng):
    protocol = BFWProtocol()
    with pytest.raises(ProtocolError):
        # δ⊥ is intentionally undefined for beeping states.
        protocol.transition(State.B_LEADER, heard_beep=False, rng=rng)


def test_enumerate_reachable_states_covers_all_six():
    reachable = enumerate_reachable_states(BFWProtocol())
    assert set(reachable) == set(State)


def test_describe_mentions_all_states():
    text = BFWProtocol().describe()
    for state in State:
        assert state.name in text
