"""Tests for the coupling of Lemma 15 / Claim 16."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.coupling import (
    empirical_meeting_time_distribution,
    simulate_coupling,
)


def test_claim16_gap_never_exceeds_one():
    """Claim 16: the coupled chains' beep counts differ by at most one."""
    for seed in range(30):
        outcome = simulate_coupling(p=0.5, horizon=300, initial_state=0, rng=seed)
        assert outcome.max_beep_gap <= 1
        assert outcome.final_gap <= 1


def test_claim16_holds_from_every_initial_state():
    for initial_state in (0, 1, 2):
        outcome = simulate_coupling(
            p=0.4, horizon=200, initial_state=initial_state, rng=initial_state
        )
        assert outcome.max_beep_gap <= 1


def test_coupling_meets_quickly():
    meetings = empirical_meeting_time_distribution(
        p=0.5, horizon=200, num_samples=200, initial_state=0, rng=1
    )
    # The chains almost always meet within the horizon, and typically fast.
    assert float(np.mean(meetings <= 200)) > 0.99
    assert float(np.median(meetings)) < 20


def test_coupling_rejects_invalid_arguments():
    with pytest.raises(ConfigurationError):
        simulate_coupling(p=0.5, horizon=0, initial_state=0)
    with pytest.raises(ConfigurationError):
        simulate_coupling(p=0.5, horizon=10, initial_state=5)


def test_coupling_outcome_metadata():
    outcome = simulate_coupling(p=0.5, horizon=123, initial_state=2, rng=9)
    assert outcome.horizon == 123
    assert outcome.meeting_time >= 0
