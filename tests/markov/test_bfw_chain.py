"""Tests for the undisturbed-leader chain of Section 4.2."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.bfw_chain import (
    STATE_B,
    STATE_F,
    STATE_W,
    beeps_from_return_times,
    bfw_leader_chain,
    expected_beeps,
    sample_return_times,
    stationary_distribution,
    transition_matrix,
    variance_lower_bound,
)


def test_transition_matrix_matches_eq15():
    p = 0.3
    matrix = transition_matrix(p)
    expected = np.array([[0.7, 0.3, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]])
    assert np.allclose(matrix, expected)


@pytest.mark.parametrize("p", [0.0, 1.0, -0.5])
def test_invalid_p_rejected(p):
    with pytest.raises(ConfigurationError):
        transition_matrix(p)
    with pytest.raises(ConfigurationError):
        stationary_distribution(p)


def test_stationary_distribution_matches_eq16():
    for p in (0.1, 0.5, 0.9):
        pi = stationary_distribution(p)
        expected = np.array([1.0, p, p]) / (2 * p + 1)
        assert np.allclose(pi, expected)
        # And it is indeed stationary for the matrix of Eq. (15).
        assert np.allclose(pi @ transition_matrix(p), pi)


def test_chain_object_agrees_with_closed_form():
    chain = bfw_leader_chain(0.4)
    assert chain.is_irreducible()
    assert chain.is_aperiodic()
    assert np.allclose(chain.stationary_distribution(), stationary_distribution(0.4))


def test_expected_beeps_formula():
    assert expected_beeps(0.5, 100) == pytest.approx(0.5 * 100 / 2.0)


def test_return_times_distribution():
    samples = sample_return_times(0.5, num_samples=20_000, rng=1)
    # τ = 2 + Geom(1/2): mean 4, minimum 3.
    assert samples.min() >= 3
    assert samples.mean() == pytest.approx(4.0, abs=0.1)


def test_beeps_from_return_times_renewal_identity():
    # Deterministic inter-beep times of 4 rounds: within 21 rounds the chain
    # completes exactly 5 renewals (at rounds 4, 8, 12, 16, 20).
    times = np.full(10, 4)
    assert beeps_from_return_times(times, horizon=21) == 5
    with pytest.raises(ConfigurationError):
        beeps_from_return_times(np.array([4, 4]), horizon=1000)


def test_empirical_beep_rate_matches_stationary_probability():
    p = 0.5
    chain = bfw_leader_chain(p)
    paths = chain.sample_many_paths(num_paths=500, length=400, initial_state=STATE_W, rng=5)
    empirical_rate = float((paths == STATE_B).mean())
    assert empirical_rate == pytest.approx(stationary_distribution(p)[STATE_B], abs=0.02)


def test_variance_lower_bound_grows_linearly():
    assert variance_lower_bound(0.5, 2000) == pytest.approx(
        2 * variance_lower_bound(0.5, 1000), rel=1e-9
    )
    assert variance_lower_bound(0.5, 1000) > 0


def test_empirical_variance_is_linear_in_t():
    p = 0.5
    chain = bfw_leader_chain(p)
    horizons = (200, 400)
    variances = []
    for horizon in horizons:
        paths = chain.sample_many_paths(
            num_paths=3000, length=horizon, initial_state=STATE_W, rng=horizon
        )
        counts = chain.visit_counts(paths, STATE_B)
        variances.append(float(np.var(counts)))
    ratio = variances[1] / variances[0]
    assert ratio == pytest.approx(2.0, abs=0.5)
