"""Tests for the generic finite Markov chain."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.chain import FiniteMarkovChain


def _two_state_chain(a=0.3, b=0.6) -> FiniteMarkovChain:
    return FiniteMarkovChain(
        transition_matrix=np.array([[1 - a, a], [b, 1 - b]]),
        state_names=("x", "y"),
    )


def test_rejects_non_square_matrix():
    with pytest.raises(ConfigurationError):
        FiniteMarkovChain(np.ones((2, 3)) / 3)


def test_rejects_non_stochastic_rows():
    with pytest.raises(ConfigurationError):
        FiniteMarkovChain(np.array([[0.5, 0.4], [0.5, 0.5]]))


def test_rejects_negative_entries():
    with pytest.raises(ConfigurationError):
        FiniteMarkovChain(np.array([[1.2, -0.2], [0.5, 0.5]]))


def test_rejects_mismatched_state_names():
    with pytest.raises(ConfigurationError):
        FiniteMarkovChain(np.eye(2), state_names=("only-one",))


def test_irreducibility_and_aperiodicity():
    chain = _two_state_chain()
    assert chain.is_irreducible()
    assert chain.is_aperiodic()
    # A deterministic 2-cycle is irreducible but periodic.
    cycle = FiniteMarkovChain(np.array([[0.0, 1.0], [1.0, 0.0]]))
    assert cycle.is_irreducible()
    assert not cycle.is_aperiodic()
    # Two absorbing states: reducible.
    absorbing = FiniteMarkovChain(np.eye(2))
    assert not absorbing.is_irreducible()


def test_stationary_distribution_two_state_closed_form():
    a, b = 0.3, 0.6
    chain = _two_state_chain(a, b)
    pi = chain.stationary_distribution()
    expected = np.array([b / (a + b), a / (a + b)])
    assert np.allclose(pi, expected)
    assert np.allclose(pi @ chain.transition_matrix, pi)


def test_mixing_bound_is_below_one_for_ergodic_chain():
    assert 0.0 <= _two_state_chain().mixing_bound() < 1.0


def test_sample_path_shapes_and_values():
    chain = _two_state_chain()
    path = chain.sample_path(length=50, initial_state=0, rng=1)
    assert path.shape == (50,)
    assert path[0] == 0
    assert set(np.unique(path)) <= {0, 1}


def test_sample_path_invalid_arguments():
    chain = _two_state_chain()
    with pytest.raises(ConfigurationError):
        chain.sample_path(length=0)
    with pytest.raises(ConfigurationError):
        chain.sample_path(length=5, initial_state=7)


def test_sample_many_paths_matches_stationary_frequencies():
    chain = _two_state_chain()
    paths = chain.sample_many_paths(num_paths=400, length=200, rng=3)
    assert paths.shape == (400, 200)
    pi = chain.stationary_distribution()
    frequency_state0 = float((paths[:, 100:] == 0).mean())
    assert frequency_state0 == pytest.approx(pi[0], abs=0.05)


def test_visit_counts():
    chain = _two_state_chain()
    paths = np.array([[0, 0, 1, 0], [1, 1, 1, 0]])
    counts = chain.visit_counts(paths, state=0)
    assert list(counts) == [3, 1]


def test_sampling_is_reproducible():
    chain = _two_state_chain()
    first = chain.sample_many_paths(num_paths=5, length=20, rng=7)
    second = chain.sample_many_paths(num_paths=5, length=20, rng=7)
    assert (first == second).all()
