"""Test package."""
