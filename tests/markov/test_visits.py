"""Tests for visit-count statistics and anti-concentration (Lemmas 14/15)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.markov.visits import (
    estimate_anti_concentration,
    estimate_separation_time,
    simulate_visit_counts,
)


def test_simulate_visit_counts_shape_and_range():
    counts = simulate_visit_counts(p=0.5, horizon=100, num_chains=200, rng=1)
    assert counts.shape == (200,)
    assert counts.min() >= 0
    # A node can beep at most once every 3 rounds (B -> F -> W -> B).
    assert counts.max() <= 100 // 3 + 1


def test_simulate_visit_counts_mean_matches_stationary_rate():
    counts = simulate_visit_counts(p=0.5, horizon=600, num_chains=2000, rng=2)
    assert counts.mean() == pytest.approx(0.5 * 600 / 2.0, rel=0.05)


def test_simulate_visit_counts_rejects_bad_horizon():
    with pytest.raises(ConfigurationError):
        simulate_visit_counts(p=0.5, horizon=0, num_chains=10)


def test_anti_concentration_probability_bounded_away_from_one():
    """Lemma 15's mechanism: two independent beep counts drift apart on the
    sqrt(t) scale, so the probability of staying within a fixed fraction of
    sqrt(t) is bounded away from one."""
    horizon = 400
    # Threshold of one standard deviation of the difference (~sqrt(t)/4 here):
    # staying below it has probability around 0.68, clearly below 1.
    estimate = estimate_anti_concentration(
        p=0.5, horizon=horizon, num_samples=3000, threshold=5.0, rng=3
    )
    assert estimate.probability_below < 0.95
    assert estimate.mean_difference > 0
    # Var(N_t) grows linearly (Lemma 14's proof): well above a constant.
    assert estimate.visit_variance > 5
    # And the default threshold is sqrt(t), as in the lemma statement.
    default = estimate_anti_concentration(
        p=0.5, horizon=horizon, num_samples=500, rng=4
    )
    assert default.threshold == pytest.approx(20.0)


def test_mean_difference_grows_like_sqrt_t():
    small = estimate_anti_concentration(p=0.5, horizon=200, num_samples=3000, rng=5)
    large = estimate_anti_concentration(p=0.5, horizon=800, num_samples=3000, rng=6)
    ratio = large.mean_difference / small.mean_difference
    # Quadrupling t should roughly double the typical difference.
    assert 1.4 < ratio < 3.0


def test_separation_time_scales_quadratically():
    """E[sigma_{u,v}] should grow roughly like the square of the target."""
    small = estimate_separation_time(
        p=0.5, target_difference=3, num_samples=300, rng=4
    )
    large = estimate_separation_time(
        p=0.5, target_difference=9, num_samples=300, rng=5
    )
    ratio = float(np.mean(large)) / float(np.mean(small))
    # The exact prediction is (9/3)^2 = 9; accept a generous band.
    assert 3.0 < ratio < 30.0


def test_separation_time_rejects_bad_target():
    with pytest.raises(ConfigurationError):
        estimate_separation_time(p=0.5, target_difference=0)
