"""Test package."""
