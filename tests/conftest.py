"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import (
    clique_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def bfw() -> BFWProtocol:
    """The default BFW protocol with p = 1/2."""
    return BFWProtocol()


@pytest.fixture
def small_path():
    """A path on 9 nodes (diameter 8)."""
    return path_graph(9)


@pytest.fixture
def small_cycle():
    """A cycle on 12 nodes."""
    return cycle_graph(12)


@pytest.fixture
def small_clique():
    """A clique on 8 nodes."""
    return clique_graph(8)


@pytest.fixture
def small_star():
    """A star on 9 nodes."""
    return star_graph(9)


@pytest.fixture
def small_grid():
    """A 4x4 grid."""
    return grid_graph(4, 4)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def converged_path_trace(small_path, bfw):
    """A recorded BFW execution on the small path that reached a single leader."""
    engine = VectorizedEngine(small_path, bfw)
    result = engine.run(rng=7, record_trace=True, max_rounds=20_000)
    assert result.converged
    return result.trace


@pytest.fixture
def converged_cycle_trace(small_cycle, bfw):
    """A recorded BFW execution on the small cycle that reached a single leader."""
    engine = VectorizedEngine(small_cycle, bfw)
    result = engine.run(rng=11, record_trace=True, max_rounds=20_000)
    assert result.converged
    return result.trace


@pytest.fixture
def cycle_batch_trace(small_cycle, bfw):
    """A batch-recorded BFW execution (6 replicas) on the small cycle."""
    from repro.batch import BatchedEngine, BatchTraceRecorder

    recorder = BatchTraceRecorder()
    BatchedEngine(small_cycle, bfw).run(
        list(range(6)), max_rounds=20_000, observers=[recorder]
    )
    return recorder.trace()
