"""Tests for space-time diagrams."""

import pytest

from repro.errors import ConfigurationError
from repro.viz.spacetime import leader_count_timeline, spacetime_diagram


def test_spacetime_diagram_dimensions(converged_path_trace):
    diagram = spacetime_diagram(converged_path_trace, max_rounds=20)
    lines = diagram.splitlines()
    # Legend + 21 rows (rounds 0..20).
    assert len(lines) == 22
    # Every rendered row encloses exactly n glyphs between the bars.
    row = lines[1]
    start = row.index("|") + 1
    end = row.rindex("|")
    assert end - start == converged_path_trace.n


def test_spacetime_diagram_stride(converged_path_trace):
    diagram = spacetime_diagram(converged_path_trace, max_rounds=20, round_stride=5)
    assert len(diagram.splitlines()) == 1 + 5  # legend + rounds 0,5,10,15,20


def test_spacetime_diagram_initial_row_all_leaders(converged_path_trace):
    diagram = spacetime_diagram(converged_path_trace, max_rounds=0)
    first_row = diagram.splitlines()[1]
    assert "L" * converged_path_trace.n in first_row


def test_spacetime_diagram_rejects_bad_stride(converged_path_trace):
    with pytest.raises(ConfigurationError):
        spacetime_diagram(converged_path_trace, round_stride=0)


def test_leader_count_timeline(converged_path_trace):
    line = leader_count_timeline(converged_path_trace)
    assert line.startswith(f"leaders {converged_path_trace.n} -> 1")
