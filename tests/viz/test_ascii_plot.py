"""Tests for ASCII plotting."""

import pytest

from repro.errors import ConfigurationError
from repro.viz.ascii_plot import ascii_plot, sparkline


def test_ascii_plot_contains_markers_and_legend():
    plot = ascii_plot(
        {"uniform": [(8, 100), (16, 400), (32, 1600)],
         "nonuniform": [(8, 30), (16, 70), (32, 150)]},
        width=40,
        height=10,
        title="scaling",
        xlabel="D",
        ylabel="T",
    )
    assert "scaling" in plot
    assert "o = uniform" in plot
    assert "x = nonuniform" in plot
    assert "D" in plot


def test_ascii_plot_log_axes():
    plot = ascii_plot(
        {"series": [(1, 10), (10, 1000)]}, logx=True, logy=True, width=30, height=8
    )
    assert "1e" in plot


def test_ascii_plot_rejects_nonpositive_on_log_axis():
    with pytest.raises(ConfigurationError):
        ascii_plot({"s": [(0, 1)]}, logx=True)


def test_ascii_plot_rejects_empty_and_tiny():
    with pytest.raises(ConfigurationError):
        ascii_plot({})
    with pytest.raises(ConfigurationError):
        ascii_plot({"s": [(1, 1)]}, width=3, height=2)


def test_sparkline_length_and_range():
    line = sparkline([1, 2, 3, 4, 5], width=10)
    assert len(line) == 5
    long_line = sparkline(list(range(300)), width=50)
    assert len(long_line) == 50


def test_sparkline_rejects_empty():
    with pytest.raises(ConfigurationError):
        sparkline([])
