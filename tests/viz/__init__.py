"""Test package."""
