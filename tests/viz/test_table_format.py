"""Tests for table rendering."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.viz.table_format import format_cell, render_markdown_table, render_table


def test_format_cell_types():
    assert format_cell(True) == "yes"
    assert format_cell(False) == "no"
    assert format_cell(None) == "-"
    assert format_cell(3.14159) == "3.14"
    assert format_cell(12345.6) == "12,346"
    assert format_cell(float("nan")) == "-"
    assert format_cell("text") == "text"
    assert format_cell(7) == "7"


def test_render_table_alignment_and_title():
    table = render_table(
        ["name", "value"],
        [("alpha", 1.0), ("a-much-longer-name", 22.5)],
        title="My table",
    )
    lines = table.splitlines()
    assert lines[0] == "My table"
    assert "alpha" in table
    assert "22.50" in table
    # All data lines have the same width.
    widths = {len(line) for line in lines[2:]}
    assert len(widths) <= 2  # header separator may differ by trailing spaces


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ConfigurationError):
        render_table(["a", "b"], [("only-one",)])


def test_render_markdown_table():
    markdown = render_markdown_table(["x", "y"], [(1, 2.5), (3, 4.0)])
    lines = markdown.splitlines()
    assert lines[0] == "| x | y |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2.50 |"


def test_render_markdown_table_rejects_ragged_rows():
    with pytest.raises(ConfigurationError):
        render_markdown_table(["a"], [(1, 2)])
