"""Tests for the diameter-aware epoch baseline."""

import numpy as np
import pytest

from repro.baselines.emek_keren import EmekKerenStyleElection
from repro.beeping.simulator import MemorySimulator
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        EmekKerenStyleElection(diameter=0)
    with pytest.raises(ConfigurationError):
        EmekKerenStyleElection(diameter=5, beep_probability=1.0)


def test_epoch_length_is_d_plus_two():
    protocol = EmekKerenStyleElection(diameter=10)
    assert protocol.epoch_length == 12


def test_converges_on_paths():
    topology = path_graph(17)
    protocol = EmekKerenStyleElection(diameter=topology.diameter())
    result = MemorySimulator(topology, protocol).run(rng=1, max_rounds=20_000)
    assert result.converged
    assert result.final_leader_count == 1


def test_converges_on_cycles_and_random_graphs():
    for topology, seed in ((cycle_graph(20), 2), (erdos_renyi_graph(24, rng=5), 3)):
        protocol = EmekKerenStyleElection(diameter=topology.diameter())
        result = MemorySimulator(topology, protocol).run(rng=seed, max_rounds=20_000)
        assert result.converged, topology.name


def test_leader_count_non_increasing():
    topology = cycle_graph(16)
    protocol = EmekKerenStyleElection(diameter=topology.diameter())
    result = MemorySimulator(topology, protocol).run(rng=7, max_rounds=20_000)
    counts = np.asarray(result.leader_counts)
    assert (np.diff(counts) <= 0).all()
    assert counts[0] == topology.n


def test_faster_than_uniform_bfw_on_long_paths():
    """The D-aware epochs give the O(D log n) shape: far fewer rounds than
    uniform BFW's O(D^2 log n) on a long path."""
    from repro.beeping.engine import VectorizedEngine
    from repro.core.bfw import BFWProtocol

    topology = path_graph(41)
    epoch_rounds = []
    bfw_rounds = []
    for seed in range(3):
        protocol = EmekKerenStyleElection(diameter=topology.diameter())
        epoch_rounds.append(
            MemorySimulator(topology, protocol)
            .run(rng=seed, max_rounds=100_000)
            .convergence_round
        )
        bfw_rounds.append(
            VectorizedEngine(topology, BFWProtocol())
            .run(rng=seed, max_rounds=1_000_000)
            .convergence_round
        )
    assert np.mean(epoch_rounds) < np.mean(bfw_rounds)


def test_table1_metadata():
    info = EmekKerenStyleElection.info
    assert info.knowledge == "D"
    assert info.states == "O(D)"
    assert not info.unique_ids
