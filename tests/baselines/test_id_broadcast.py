"""Tests for the bit-by-bit ID broadcast baseline."""

import numpy as np
import pytest

from repro.baselines.id_broadcast import IDBroadcastElection, _to_bits
from repro.beeping.simulator import MemorySimulator
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph, star_graph


def test_to_bits_big_endian():
    assert _to_bits(5, 4) == (False, True, False, True)
    assert _to_bits(0, 3) == (False, False, False)
    with pytest.raises(ConfigurationError):
        _to_bits(-1, 3)


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        IDBroadcastElection(diameter=0, n=10)
    with pytest.raises(ConfigurationError):
        IDBroadcastElection(diameter=3, n=0)
    with pytest.raises(ConfigurationError):
        IDBroadcastElection(diameter=3, n=10, id_mode="nonsense")


def test_unique_mode_elects_the_maximum_id_node():
    topology = path_graph(9)
    protocol = IDBroadcastElection(diameter=topology.diameter(), n=topology.n)
    simulator = MemorySimulator(topology, protocol)
    result = simulator.run(rng=0, max_rounds=protocol.total_rounds + 10)
    assert result.converged
    assert result.final_leader_count == 1


def test_unique_mode_is_deterministic_in_the_winner():
    """With unique IDs the winner is the maximum ID regardless of the seed."""
    topology = star_graph(8)
    winners = set()
    for seed in range(4):
        protocol = IDBroadcastElection(diameter=topology.diameter(), n=topology.n)
        simulator = MemorySimulator(topology, protocol)
        result = simulator.run(rng=seed, max_rounds=protocol.total_rounds + 10)
        assert result.converged
        winners.add(result.convergence_round)
    # Same deterministic schedule: identical convergence round for all seeds.
    assert len(winners) == 1


def test_random_mode_converges_whp():
    topology = cycle_graph(16)
    protocol = IDBroadcastElection(
        diameter=topology.diameter(), n=topology.n, id_mode="random"
    )
    simulator = MemorySimulator(topology, protocol)
    result = simulator.run(rng=3, max_rounds=protocol.total_rounds + 10)
    assert result.converged
    assert result.final_leader_count == 1


def test_round_count_scales_with_d_log_n():
    """The schedule length is exactly (D + 2) * number of ID bits."""
    topology = path_graph(17)
    protocol = IDBroadcastElection(diameter=16, n=17)
    assert protocol.total_rounds == (16 + 2) * protocol.clock.num_phases
    simulator = MemorySimulator(topology, protocol)
    result = simulator.run(rng=1, max_rounds=protocol.total_rounds + 10)
    assert result.converged
    assert result.convergence_round <= protocol.total_rounds


def test_termination_detection():
    topology = path_graph(5)
    protocol = IDBroadcastElection(diameter=4, n=5)
    simulator = MemorySimulator(topology, protocol)
    result = simulator.run(
        rng=0, max_rounds=protocol.total_rounds + 50, stop_at_single_leader=False
    )
    # The run stops because every node terminated, not because of the budget.
    assert result.rounds_executed <= protocol.total_rounds + 1
    assert result.final_leader_count == 1


def test_works_on_random_graphs():
    topology = erdos_renyi_graph(24, rng=9)
    protocol = IDBroadcastElection(diameter=topology.diameter(), n=topology.n)
    result = MemorySimulator(topology, protocol).run(
        rng=2, max_rounds=protocol.total_rounds + 10
    )
    assert result.converged


def test_table1_metadata():
    info = IDBroadcastElection.info
    assert info.unique_ids
    assert "D log n" in info.round_complexity
    assert info.termination_detection
