"""Tests for the O(D + log n)-shaped pipelined election baseline."""

import pytest

from repro.baselines.pipelined_ids import PipelinedIDElection
from repro.errors import ConfigurationError
from repro.graphs.generators import clique_graph, cycle_graph, path_graph


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        PipelinedIDElection(knockout_factor=0)


def test_run_returns_converged_result():
    result = PipelinedIDElection().run(path_graph(33), rng=1)
    assert result.converged
    assert result.final_leader_count == 1
    assert result.convergence_round == result.rounds_executed


def test_detailed_outcome_fields():
    topology = cycle_graph(32)
    outcome = PipelinedIDElection().run_detailed(topology, rng=2)
    assert 0 <= outcome.winner < topology.n
    assert outcome.candidates_after_knockout >= 1
    assert outcome.total_rounds == outcome.knockout_rounds + outcome.dissemination_rounds


def test_knockout_reduces_candidates_on_clique():
    outcome = PipelinedIDElection().run_detailed(clique_graph(64), rng=3)
    # On a clique the coin-flipping knockout alone almost always leaves very
    # few candidates after 2 log n rounds.
    assert outcome.candidates_after_knockout <= 8


def test_round_count_shape_is_d_plus_log_n():
    """Doubling the diameter adds O(D) rounds: additive, not multiplied by log n."""
    import numpy as np

    small_totals = [
        PipelinedIDElection().run_detailed(path_graph(33), rng=seed).total_rounds
        for seed in range(10)
    ]
    large_totals = [
        PipelinedIDElection().run_detailed(path_graph(65), rng=seed).total_rounds
        for seed in range(10)
    ]
    small_mean, large_mean = float(np.mean(small_totals)), float(np.mean(large_totals))
    assert large_mean > small_mean
    # Far below the O(D log n) growth of the phase-per-bit algorithm, which
    # would multiply the round count by ~2 per doubling of D on top of the
    # (D + 2)-per-phase increase (id-broadcast needs 6 * 35 = 210 -> 7 * 67 = 469).
    assert large_mean < 2.2 * small_mean


def test_budget_overflow_reports_nonconvergence():
    result = PipelinedIDElection().run(path_graph(65), rng=5, max_rounds=10)
    assert not result.converged


def test_reproducibility():
    first = PipelinedIDElection().run_detailed(cycle_graph(40), rng=7)
    second = PipelinedIDElection().run_detailed(cycle_graph(40), rng=7)
    assert first == second


# --------------------------------------------------------------------------- #
# run_batch: the batched entry point must mirror the per-seed loop exactly
# --------------------------------------------------------------------------- #


def _assert_batch_matches_loop(topology, seeds, max_rounds=None):
    import numpy as np

    election = PipelinedIDElection()
    batch = election.run_batch(topology, list(seeds), max_rounds=max_rounds)
    assert batch.num_replicas == len(seeds)
    for index, seed in enumerate(seeds):
        single = election.run(topology, rng=seed, max_rounds=max_rounds)
        assert bool(batch.converged[index]) == single.converged
        expected_round = (
            single.convergence_round if single.convergence_round is not None else -1
        )
        assert int(batch.convergence_round[index]) == expected_round
        assert int(batch.rounds_executed[index]) == single.rounds_executed
        assert int(batch.final_leader_count[index]) == single.final_leader_count
        assert batch.seeds[index] == seed
        if single.converged:
            detailed = election.run_detailed(topology, rng=seed)
            assert int(batch.leader_node[index]) == detailed.winner
        else:
            assert int(batch.leader_node[index]) == -1
    return batch


@pytest.mark.parametrize(
    "factory", [lambda: cycle_graph(24), lambda: path_graph(17), lambda: clique_graph(12)]
)
def test_run_batch_rng_stream_parity_with_the_loop(factory):
    # Each replica consumes its own as_rng(seed) stream in exactly the order
    # the single-run path consumes it, so batch == loop field for field.
    _assert_batch_matches_loop(factory(), seeds=range(20, 28))


def test_run_batch_budget_overflow_matches_the_loop():
    _assert_batch_matches_loop(path_graph(65), seeds=range(5, 11), max_rounds=10)


def test_run_batch_is_shard_invariant():
    import numpy as np

    from repro.batch.results import BatchResult

    topology = cycle_graph(24)
    seeds = list(range(40, 47))
    whole = PipelinedIDElection().run_batch(topology, seeds)
    parts = [
        PipelinedIDElection().run_batch(topology, seeds[start : start + 3])
        for start in range(0, len(seeds), 3)
    ]
    merged = BatchResult.concatenate(parts)
    np.testing.assert_array_equal(merged.converged, whole.converged)
    np.testing.assert_array_equal(merged.convergence_round, whole.convergence_round)
    np.testing.assert_array_equal(merged.rounds_executed, whole.rounds_executed)
    np.testing.assert_array_equal(merged.leader_node, whole.leader_node)
    assert merged.seeds == whole.seeds


def test_run_batch_rejects_empty_seed_list():
    with pytest.raises(ConfigurationError):
        PipelinedIDElection().run_batch(cycle_graph(8), [])


def test_neighbourhood_max_rows_matches_sequential_helper():
    import numpy as np

    from repro.baselines.pipelined_ids import (
        _neighbour_index_matrix,
        _neighbourhood_max,
        _neighbourhood_max_rows,
    )
    from repro.graphs.generators import erdos_renyi_graph

    topology = erdos_renyi_graph(18, rng=5)
    rng = np.random.default_rng(9)
    values = rng.integers(0, 1000, size=(4, topology.n)).astype(np.int64)
    rows = _neighbourhood_max_rows(_neighbour_index_matrix(topology), values)
    for index in range(values.shape[0]):
        np.testing.assert_array_equal(
            rows[index], _neighbourhood_max(topology, values[index])
        )
