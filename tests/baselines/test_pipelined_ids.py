"""Tests for the O(D + log n)-shaped pipelined election baseline."""

import pytest

from repro.baselines.pipelined_ids import PipelinedIDElection
from repro.errors import ConfigurationError
from repro.graphs.generators import clique_graph, cycle_graph, path_graph


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        PipelinedIDElection(knockout_factor=0)


def test_run_returns_converged_result():
    result = PipelinedIDElection().run(path_graph(33), rng=1)
    assert result.converged
    assert result.final_leader_count == 1
    assert result.convergence_round == result.rounds_executed


def test_detailed_outcome_fields():
    topology = cycle_graph(32)
    outcome = PipelinedIDElection().run_detailed(topology, rng=2)
    assert 0 <= outcome.winner < topology.n
    assert outcome.candidates_after_knockout >= 1
    assert outcome.total_rounds == outcome.knockout_rounds + outcome.dissemination_rounds


def test_knockout_reduces_candidates_on_clique():
    outcome = PipelinedIDElection().run_detailed(clique_graph(64), rng=3)
    # On a clique the coin-flipping knockout alone almost always leaves very
    # few candidates after 2 log n rounds.
    assert outcome.candidates_after_knockout <= 8


def test_round_count_shape_is_d_plus_log_n():
    """Doubling the diameter adds O(D) rounds: additive, not multiplied by log n."""
    import numpy as np

    small_totals = [
        PipelinedIDElection().run_detailed(path_graph(33), rng=seed).total_rounds
        for seed in range(10)
    ]
    large_totals = [
        PipelinedIDElection().run_detailed(path_graph(65), rng=seed).total_rounds
        for seed in range(10)
    ]
    small_mean, large_mean = float(np.mean(small_totals)), float(np.mean(large_totals))
    assert large_mean > small_mean
    # Far below the O(D log n) growth of the phase-per-bit algorithm, which
    # would multiply the round count by ~2 per doubling of D on top of the
    # (D + 2)-per-phase increase (id-broadcast needs 6 * 35 = 210 -> 7 * 67 = 469).
    assert large_mean < 2.2 * small_mean


def test_budget_overflow_reports_nonconvergence():
    result = PipelinedIDElection().run(path_graph(65), rng=5, max_rounds=10)
    assert not result.converged


def test_reproducibility():
    first = PipelinedIDElection().run_detailed(cycle_graph(40), rng=7)
    second = PipelinedIDElection().run_detailed(cycle_graph(40), rng=7)
    assert first == second
