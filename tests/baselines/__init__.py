"""Test package."""
