"""Tests for the constant-state clique knockout baseline."""

import numpy as np
import pytest

from repro.baselines.gilbert_newport import GilbertNewportKnockout
from repro.beeping.simulator import MemorySimulator
from repro.errors import ConfigurationError
from repro.graphs.generators import clique_graph, path_graph


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        GilbertNewportKnockout(beep_probability=0.0)
    with pytest.raises(ConfigurationError):
        GilbertNewportKnockout(beep_probability=1.0)


def test_converges_on_cliques():
    for n in (4, 16, 64):
        result = MemorySimulator(clique_graph(n), GilbertNewportKnockout()).run(
            rng=n, max_rounds=5000
        )
        assert result.converged, n
        assert result.final_leader_count == 1


def test_never_eliminates_all_candidates():
    """At least one candidate always survives (the beeping ones never drop)."""
    for seed in range(10):
        result = MemorySimulator(clique_graph(12), GilbertNewportKnockout()).run(
            rng=seed, max_rounds=5000
        )
        assert min(result.leader_counts) >= 1


def test_round_complexity_logarithmic_on_cliques():
    """Convergence rounds grow slowly (logarithmically) with n."""
    means = []
    for n in (8, 64):
        rounds = [
            MemorySimulator(clique_graph(n), GilbertNewportKnockout())
            .run(rng=seed, max_rounds=5000)
            .convergence_round
            for seed in range(10)
        ]
        means.append(float(np.mean(rounds)))
    # An 8x increase in n should much less than double the rounds beyond log factor.
    assert means[1] <= 4 * means[0] + 10


def test_multi_leader_outcome_on_paths():
    """Negative control: on a path the protocol converges to an independent
    set of candidates, generally more than one."""
    stalled = 0
    for seed in range(6):
        result = MemorySimulator(path_graph(16), GilbertNewportKnockout()).run(
            rng=seed, max_rounds=800
        )
        if result.final_leader_count > 1:
            stalled += 1
    assert stalled >= 4


def test_table1_metadata():
    info = GilbertNewportKnockout.info
    assert not info.unique_ids
    assert info.knowledge == "none"
    assert info.states == "O(1)"
    assert not info.termination_detection
