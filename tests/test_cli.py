"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_no_command_prints_help_and_fails(capsys):
    assert main([]) == 1
    captured = capsys.readouterr()
    assert "usage" in captured.out.lower()


def test_version_flag():
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_list_protocols(capsys):
    assert main(["list-protocols"]) == 0
    captured = capsys.readouterr()
    assert "bfw" in captured.out
    assert "pipelined-ids" in captured.out


def test_run_command_converges(capsys):
    code = main(["run", "--protocol", "bfw", "--graph", "clique", "--n", "16", "--seed", "1"])
    captured = capsys.readouterr()
    assert code == 0
    assert "converged:         True" in captured.out


def test_run_command_nonuniform_with_probability_override(capsys):
    code = main(
        [
            "run",
            "--protocol",
            "bfw",
            "--graph",
            "path",
            "--n",
            "12",
            "--seed",
            "2",
            "--beep-probability",
            "0.25",
        ]
    )
    assert code == 0


def test_run_command_reports_nonconvergence(capsys):
    code = main(
        ["run", "--protocol", "bfw", "--graph", "path", "--n", "30", "--max-rounds", "3"]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "converged:         False" in captured.out


def test_scaling_command_small(capsys):
    code = main(
        ["scaling", "--mode", "nonuniform", "--diameters", "4", "8", "--seeds", "3"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "fitted T ~ D^" in captured.out


def test_ablation_command_small(capsys):
    code = main(["ablation", "--diameter", "6", "--seeds", "2"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Structural ablations" in captured.out


def test_wave_demo(capsys):
    code = main(["wave-demo", "--n", "12", "--seed", "1", "--max-rounds", "120"])
    captured = capsys.readouterr()
    assert code == 0
    assert "legend:" in captured.out


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in (
        "list-protocols",
        "run",
        "table1",
        "scaling",
        "montecarlo",
        "crossover",
        "lower-bound",
        "ablation",
        "dynamic",
        "wave-demo",
    ):
        assert command in text


def test_scaling_batched_matches_looped(capsys):
    argv = ["scaling", "--mode", "nonuniform", "--diameters", "4", "8", "--seeds", "3"]
    assert main(argv) == 0
    looped = capsys.readouterr().out
    assert main(argv + ["--backend", "batched"]) == 0
    batched = capsys.readouterr().out
    assert looped == batched


def test_scaling_replicas_overrides_seeds(capsys):
    code = main(
        [
            "scaling",
            "--mode",
            "nonuniform",
            "--diameters",
            "4",
            "8",
            "--seeds",
            "999",
            "--replicas",
            "2",
            "--backend",
            "batched",
        ]
    )
    assert code == 0


def test_montecarlo_command(capsys, tmp_path):
    destination = tmp_path / "mc.json"
    code = main(
        [
            "montecarlo",
            "--protocol",
            "bfw",
            "--graph",
            "cycle",
            "--n",
            "24",
            "--replicas",
            "4",
            "--master-seed",
            "3",
            "--save-json",
            str(destination),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Monte Carlo" in captured.out
    assert "batched" in captured.out
    payload = destination.read_text()
    assert '"converged": true' in payload


def test_montecarlo_reports_nonconvergence(capsys):
    code = main(
        ["montecarlo", "--graph", "path", "--n", "20", "--replicas", "3", "--max-rounds", "2"]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "per-seed" not in captured.out


def test_montecarlo_memory_baseline_runs_batched(capsys, tmp_path):
    destination = tmp_path / "mc-memory.json"
    code = main(
        [
            "montecarlo",
            "--protocol",
            "emek-keren",
            "--graph",
            "cycle",
            "--n",
            "12",
            "--replicas",
            "4",
            "--master-seed",
            "5",
            "--save-json",
            str(destination),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "batched" in captured.out
    assert "per-seed" not in captured.out
    # The batched memory engine records elected-node identities.
    assert "unknown" not in captured.out
    assert '"converged": true' in destination.read_text()


def test_montecarlo_standalone_runner_runs_batched(capsys):
    # pipelined-ids exposes a run_batch entry point, so its single cell now
    # reports the batched engine (and elected-leader identities) instead of
    # the per-seed loop it historically fell back to.
    code = main(
        [
            "montecarlo",
            "--protocol",
            "pipelined-ids",
            "--graph",
            "cycle",
            "--n",
            "10",
            "--replicas",
            "2",
            "--master-seed",
            "5",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "batched" in captured.out
    assert "unknown" not in captured.out


def test_montecarlo_shard_size_flag_is_byte_identical(capsys):
    code = main(
        ["montecarlo", "--n", "12", "--replicas", "4", "--master-seed", "5"]
    )
    reference = capsys.readouterr().out
    assert code == 0
    code = main(
        [
            "montecarlo",
            "--n",
            "12",
            "--replicas",
            "4",
            "--master-seed",
            "5",
            "--shard-size",
            "2",
        ]
    )
    sharded = capsys.readouterr().out
    assert code == 0

    def stable(text):
        # Drop the wall-clock dependent lines (elapsed, rounds/sec).
        return [
            line
            for line in text.splitlines()
            if "replica-rounds/sec" not in line
        ]

    assert stable(sharded) == stable(reference)


def test_table1_batched_end_to_end(capsys):
    # Exact batched-vs-looped table equality is covered at the API level on
    # small graphs (tests/experiments/test_tables.py); here the backend is
    # driven end-to-end through the CLI on the default graph set.
    code = main(["table1", "--seeds", "1", "--backend", "batched"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Table 1" in captured.out
    assert "bfw-nonuniform" in captured.out


def test_lower_bound_batched_matches_looped(capsys):
    argv = ["lower-bound", "--diameters", "4", "8", "--seeds", "3"]
    assert main(argv) == 0
    looped = capsys.readouterr().out
    assert main(argv + ["--backend", "batched"]) == 0
    batched = capsys.readouterr().out
    assert looped == batched
    assert "conjectured exponent" in batched


def test_ablation_batched_matches_looped(capsys):
    argv = ["ablation", "--diameter", "6", "--seeds", "2"]
    assert main(argv) == 0
    looped = capsys.readouterr().out
    assert main(argv + ["--backend", "batched"]) == 0
    batched = capsys.readouterr().out
    assert looped == batched
    assert "Structural ablations" in batched


def test_montecarlo_sequential_backend_reports_loop_engine(capsys):
    code = main(
        [
            "montecarlo", "--protocol", "bfw", "--graph", "cycle", "--n", "16",
            "--replicas", "3", "--master-seed", "4", "--backend", "sequential",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "per-seed loop" in captured.out
    assert "unknown" in captured.out  # sequential runs carry no leader identities


def test_dynamic_command_small(capsys, tmp_path):
    destination = tmp_path / "dynamic.json"
    code = main(
        [
            "dynamic",
            "--families", "cycle",
            "--sizes", "12",
            "--churn-rates", "0", "2",
            "--seeds", "3",
            "--max-rounds", "2000",
            "--save-json", str(destination),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Dynamic graphs" in captured.out
    assert "static" in captured.out
    assert "edge-churn" in captured.out
    assert destination.exists()

    from repro.experiments.io import load_records_json

    records = load_records_json(destination)
    assert len(records) == 6  # 2 rates x 3 seeds
    assert {record.graph.split("@")[0] for record in records} == {"cycle(12)"}


def test_dynamic_command_backend_invariance(capsys):
    args = [
        "dynamic",
        "--families", "cycle",
        "--sizes", "12",
        "--churn-rates", "1",
        "--seeds", "2",
        "--max-rounds", "1500",
    ]
    assert main(args + ["--backend", "sequential"]) == 0
    sequential = capsys.readouterr().out
    assert main(args + ["--backend", "batched"]) == 0
    batched = capsys.readouterr().out
    assert sequential == batched


def test_backend_flags_in_help():
    parser = build_parser()
    for command in ("table1", "scaling", "montecarlo", "crossover", "lower-bound", "ablation"):
        subparser_help = None
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices and command in action.choices:
                subparser_help = action.choices[command].format_help()
        assert subparser_help is not None
        assert "--backend" in subparser_help
        assert "--workers" in subparser_help


def test_extinction_command_small(capsys, tmp_path):
    from repro.cli import main

    destination = tmp_path / "extinction.json"
    exit_code = main(
        [
            "extinction",
            "--families", "cycle",
            "--sizes", "12",
            "--churn-rates", "0", "2",
            "--seeds", "3",
            "--max-rounds", "1500",
            "--save-json", str(destination),
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "Leader extinction" in captured.out
    assert "E15" in captured.out
    assert "static" in captured.out
    assert destination.exists()
    import json

    payload = json.loads(destination.read_text())
    assert len(payload) == 6  # 2 cells x 3 seeds


def test_extinction_command_backend_invariance(capsys):
    from repro.cli import main

    args = [
        "extinction",
        "--families", "cycle",
        "--sizes", "12",
        "--churn-rates", "2",
        "--seeds", "3",
        "--max-rounds", "1000",
    ]
    assert main(args + ["--backend", "sequential"]) == 0
    sequential = capsys.readouterr().out
    assert main(args + ["--backend", "batched"]) == 0
    batched = capsys.readouterr().out
    assert sequential == batched
