"""Fault tolerance: crashed and hung shard attempts re-queue, byte-identically.

The service's retry story rests on determinism — a re-executed shard
produces the same bytes as the lost attempt would have — so every happy
path here asserts record equality against a local sequential run, not just
"the sweep completed".
"""

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.exec import SequentialBackend
from repro.service import ServiceBackend, ServiceClient, ServiceFaultInjector, SweepService
from repro.service.faults import InjectedWorkerCrash

from tests.service.conftest import make_cell


# --------------------------------------------------------------------------- #
# Directive parsing
# --------------------------------------------------------------------------- #


def test_from_spec_parses_crash_and_hang():
    injector = ServiceFaultInjector.from_spec("crash:0:1; hang:2:0:0.5:3")
    assert injector is not None
    with pytest.raises(InjectedWorkerCrash):
        injector.on_attempt("sweep", 0, 1, 0)
    # Armed once: the retried attempt passes.
    injector.on_attempt("sweep", 0, 1, 1)
    # A different sweep sees the same fault pattern.
    with pytest.raises(InjectedWorkerCrash):
        injector.on_attempt("other", 0, 1, 0)
    # Unmatched shards are untouched.
    injector.on_attempt("sweep", 5, 5, 0)


def test_from_spec_parses_liveness_hang_flavours():
    # `hang-silent` is an explicit alias of the original `hang`;
    # `hang-beating` is the slow-but-healthy variant the liveness
    # watchdog must leave alone.  Parsing both must round-trip.
    assert ServiceFaultInjector.from_spec("hang-silent:0:0:0.5") is not None
    assert ServiceFaultInjector.from_spec("hang-beating:0:0:0.5:2") is not None


@pytest.mark.parametrize("spec", ["hang-beating:0:0", "hang-silent:0:0:slow"])
def test_malformed_liveness_directives_list_all_grammars(spec):
    with pytest.raises(ConfigurationError) as excinfo:
        ServiceFaultInjector.from_spec(spec)
    message = str(excinfo.value)
    assert "hang-beating" in message and "hang-silent" in message


def test_from_spec_blank_is_none():
    assert ServiceFaultInjector.from_spec(None) is None
    assert ServiceFaultInjector.from_spec("   ") is None


@pytest.mark.parametrize(
    "spec", ["nonsense", "crash:0", "crash:a:b", "hang:0:0", "hang:0:0:fast"]
)
def test_from_spec_rejects_malformed_directives(spec):
    with pytest.raises(ConfigurationError) as excinfo:
        ServiceFaultInjector.from_spec(spec)
    assert spec.split(";")[0].strip() in str(excinfo.value)


def test_from_env_reads_the_documented_variable():
    injector = ServiceFaultInjector.from_env({"REPRO_SERVICE_FAULTS": "crash:0:0"})
    assert injector is not None
    assert ServiceFaultInjector.from_env({}) is None


# --------------------------------------------------------------------------- #
# Crash → re-queue → byte-identical completion
# --------------------------------------------------------------------------- #


def test_crashed_shard_is_retried_and_records_match(tmp_path):
    cell = make_cell(seeds=(1, 2, 3, 4, 5, 6))
    local = SequentialBackend().run_cells((cell,))
    injector = ServiceFaultInjector.from_spec("crash:0:1")
    with SweepService(workers=2, fault_injector=injector) as daemon:
        backend = ServiceBackend(daemon.url, shard_size=2)
        assert backend.run_cells((cell,)) == local
        client = ServiceClient(daemon.url)
        counters = client.metrics()["service"]["counters"]
        assert counters["service.shards_retried"] == 1


def test_retries_are_surfaced_in_sweep_status(tmp_path):
    injector = ServiceFaultInjector.from_spec("crash:0:0:2")
    with SweepService(workers=2, max_retries=3, fault_injector=injector) as daemon:
        client = ServiceClient(daemon.url)
        sweep_id = str(client.submit([make_cell()])["id"])
        poll = client.events(sweep_id, timeout=15.0)
        assert poll["state"] == "done"
        status = client.status(sweep_id)
        assert status["retries"] == 2
        cell_events = [
            record for record in poll["events"] if record["event"] == "cell"
        ]
        assert cell_events[0]["retries"] == 2


def test_exhausted_retries_fail_the_sweep_with_the_shard_named():
    injector = ServiceFaultInjector.from_spec("crash:0:0:99")
    with SweepService(workers=1, max_retries=1, fault_injector=injector) as daemon:
        backend = ServiceBackend(daemon.url)
        with pytest.raises(ServiceError) as excinfo:
            backend.run_cells((make_cell(),))
        message = str(excinfo.value)
        assert "failed" in message
        assert "shard 0 of cell 0" in message
        status = ServiceClient(daemon.url).status(
            message.split("sweep ")[1].split(" ")[0]
        )
        assert status["state"] == "failed"


def test_hung_shard_is_requeued_by_the_watchdog():
    cell = make_cell()
    local = SequentialBackend().run_cells((cell,))
    injector = ServiceFaultInjector.from_spec("hang:0:0:30")
    with SweepService(
        workers=2, shard_timeout=0.5, fault_injector=injector
    ) as daemon:
        backend = ServiceBackend(daemon.url)
        assert backend.run_cells((cell,)) == local
        counters = ServiceClient(daemon.url).metrics()["service"]["counters"]
        assert counters["service.shards_retried"] >= 1


def test_unfaulted_sweep_reports_zero_retries(service):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    client.events(sweep_id, timeout=15.0)
    assert client.status(sweep_id)["retries"] == 0
