"""HTTP-level tests for the sweep-service daemon: routes, errors, lifecycle."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.exec import SequentialBackend
from repro.service import ServiceClient
from repro.service.wire import cells_to_payload

from tests.service.conftest import make_cell


def _get(url, path):
    with urllib.request.urlopen(f"{url}{path}", timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url, path, payload):
    request = urllib.request.Request(
        f"{url}{path}",
        method="POST",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


# --------------------------------------------------------------------------- #
# Liveness and metrics
# --------------------------------------------------------------------------- #


def test_healthz(service):
    status, payload = _get(service.url, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["state"] == "serving"
    assert payload["workers"] == 2


def test_metrics_reports_counters_and_cache(service):
    client = ServiceClient(service.url)
    client.submit([make_cell()])
    metrics = client.metrics()
    counters = metrics["service"]["counters"]
    assert counters["service.sweeps_submitted"] == 1
    assert counters["service.cells_submitted"] == 1
    assert "service.cache_hits" in counters
    assert "service.cache_misses" in counters
    assert metrics["service"]["gauges"]["service.workers"] == 2


# --------------------------------------------------------------------------- #
# Submission and status
# --------------------------------------------------------------------------- #


def test_submit_and_status_round_trip(service):
    client = ServiceClient(service.url)
    cell = make_cell()
    receipt = client.submit([cell])
    assert receipt["cells"] == 1
    sweep_id = str(receipt["id"])

    poll = client.events(sweep_id, cursor=0, timeout=15.0)
    assert poll["done"] and poll["state"] == "done"

    status = client.status(sweep_id)
    assert status["state"] == "done"
    assert status["completed_cells"] == 1
    assert status["retries"] == 0
    assert status["error"] is None
    # Done sweeps ship their flattened records — byte-comparable to a
    # local sequential run of the same cell.
    local = SequentialBackend().run_cells((cell,))
    assert status["records"] == [record.as_dict() for record in local]


def test_unknown_sweep_is_404_with_error_body(service):
    try:
        urllib.request.urlopen(f"{service.url}/sweeps/deadbeef", timeout=10)
    except urllib.error.HTTPError as error:
        assert error.code == 404
        assert "deadbeef" in json.loads(error.read())["error"]
    else:  # pragma: no cover
        pytest.fail("expected HTTP 404")


def test_unknown_route_is_404(service):
    try:
        urllib.request.urlopen(f"{service.url}/nope", timeout=10)
    except urllib.error.HTTPError as error:
        assert error.code == 404
    else:  # pragma: no cover
        pytest.fail("expected HTTP 404")


@pytest.mark.parametrize(
    "body",
    [
        b"",
        b"not json",
        b"[1, 2]",
        b'{"cells": []}',
        b'{"cells": [{"graph": {}}]}',
    ],
)
def test_malformed_submissions_are_400(service, body):
    request = urllib.request.Request(
        f"{service.url}/sweeps",
        method="POST",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as error:
        assert error.code == 400
        assert "error" in json.loads(error.read())
    else:  # pragma: no cover
        pytest.fail("expected HTTP 400")


def test_submission_by_raw_json_matches_client(service):
    # The wire format is plain JSON: curl-level submissions must work.
    status, receipt = _post(
        service.url, "/sweeps", {"cells": cells_to_payload([make_cell()])}
    )
    assert status == 200
    poll = ServiceClient(service.url).events(str(receipt["id"]), timeout=15.0)
    assert poll["state"] == "done"


# --------------------------------------------------------------------------- #
# Event stream
# --------------------------------------------------------------------------- #


def test_event_stream_cursor_and_schema(service):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell(), make_cell(seeds=(9, 10))])["id"])
    events = []
    cursor = 0
    while True:
        poll = client.events(sweep_id, cursor=cursor, timeout=15.0)
        assert poll["cursor"] >= cursor
        events.extend(poll["events"])
        cursor = int(poll["cursor"])
        if poll["done"]:
            break
    kinds = [record["event"] for record in events]
    assert kinds.count("cell") == 2
    assert kinds[-1] == "summary"
    cell_events = [record for record in events if record["event"] == "cell"]
    for record in cell_events:
        # The telemetry JSONL schema, so `repro tail --url` renders them.
        for key in ("index", "total", "protocol", "graph", "mean_rounds",
                    "wall_seconds", "rounds_advanced"):
            assert key in record
    # Re-reading from cursor 0 replays the identical stream.
    replay = client.events(sweep_id, cursor=0, timeout=0.0)
    assert replay["events"] == events


def test_outcome_endpoint_rejects_bad_cell_index(service):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    client.events(sweep_id, timeout=15.0)  # wait for completion
    with pytest.raises(ServiceError) as excinfo:
        client.outcome(sweep_id, 5)
    assert "400" in str(excinfo.value)


# --------------------------------------------------------------------------- #
# Cancellation and drain
# --------------------------------------------------------------------------- #


def test_cancel_is_idempotent_and_reported(service):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    first = client.cancel(sweep_id)
    assert first["state"] in ("cancelled", "done")
    assert client.cancel(sweep_id)["state"] == first["state"]
    poll = client.events(sweep_id, timeout=5.0)
    assert poll["done"]


def test_draining_service_refuses_submissions(service):
    client = ServiceClient(service.url)
    service._draining = True  # what stop() sets before joining workers
    with pytest.raises(ServiceError) as excinfo:
        client.submit([make_cell()])
    assert "503" in str(excinfo.value) or "draining" in str(excinfo.value)
    assert client.healthz()["state"] == "draining"


def test_stop_drains_running_sweeps(tmp_path):
    from repro.service import SweepService

    with SweepService(workers=2) as daemon:
        client = ServiceClient(daemon.url)
        sweep_id = str(client.submit([make_cell(seeds=tuple(range(8)))])["id"])
        daemon.stop(drain=True, timeout=30.0)
        # The submitted sweep completed before shutdown.
        status = daemon.sweep_status(sweep_id)
        assert status["state"] == "done"
