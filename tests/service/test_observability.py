"""Live observability through the service: heartbeats, spans, dashboards.

Covers the in-flight surface the daemon grew alongside its completed-work
events: progress records on the event stream *before* the sweep finishes,
per-shard heartbeat rows in ``GET /sweeps/{id}``, the ``/sweeps`` listing,
the span-tree endpoint, Prometheus text exposition on ``/metrics``, the
liveness-based watchdog, and the pure render functions behind
``repro top``.
"""

import json
import time
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.exec import SequentialBackend, ShardProgress
from repro.service import (
    ServiceBackend,
    ServiceClient,
    ServiceFaultInjector,
    SweepService,
)
from repro.service.dashboard import render_top
from repro.service.prometheus import prometheus_name, render_prometheus
from repro.telemetry.spans import SPAN_KINDS, spans_from_records

from tests.service.conftest import make_cell


@pytest.fixture
def beating_service():
    with SweepService(workers=2, heartbeat_interval=1) as daemon:
        yield daemon


def _drain_events(client, sweep_id, timeout=15.0):
    """Collect the full event stream.  One ``events`` call is *not* enough
    on a heartbeating sweep: the long-poll wakes on the first in-flight
    progress record, long before the sweep is done."""
    events, cursor = [], 0
    deadline = time.monotonic() + timeout
    while True:
        poll = client.events(sweep_id, cursor=cursor, timeout=timeout)
        events.extend(poll["events"])
        cursor = int(poll["cursor"])
        if poll["done"] or time.monotonic() > deadline:
            return events


def _wait_done(client, sweep_id, timeout=15.0):
    _drain_events(client, sweep_id, timeout=timeout)
    state = client.status(sweep_id)["state"]
    assert state == "done", f"sweep {sweep_id} ended {state!r}"


# --------------------------------------------------------------------------- #
# In-flight progress events
# --------------------------------------------------------------------------- #


def test_progress_events_arrive_before_the_sweep_completes(beating_service):
    client = ServiceClient(beating_service.url)
    sweep_id = str(client.submit([make_cell(seeds=tuple(range(6)))])["id"])
    events = _drain_events(client, sweep_id)
    kinds = [record["event"] for record in events]
    assert "progress" in kinds
    # The whole point: at least one in-flight record precedes the summary.
    assert kinds.index("progress") < kinds.index("summary")
    progress = next(r for r in events if r["event"] == "progress")
    for key in ("engine", "round", "active", "converged", "leaderless",
                "rounds_advanced", "rounds_per_second", "protocol", "graph"):
        assert key in progress


def test_per_sweep_interval_overrides_the_daemon_default(service):
    # The plain fixture daemon has heartbeats off; a submission can turn
    # them on for its own sweep.
    client = ServiceClient(service.url)
    quiet_id = str(client.submit([make_cell()])["id"])
    beating_id = str(
        client.submit([make_cell(seeds=(5, 6, 7))], heartbeat_interval=1)["id"]
    )
    quiet = [r["event"] for r in _drain_events(client, quiet_id)]
    beating = [r["event"] for r in _drain_events(client, beating_id)]
    assert "progress" not in quiet
    assert "progress" in beating


def test_service_backend_forwards_shard_progress(beating_service):
    cell = make_cell(seeds=tuple(range(6)))
    reference = SequentialBackend().run_cells((cell,))
    backend = ServiceBackend(beating_service.url, heartbeat_interval=1)
    events = []
    records = backend.run_cells((cell,), progress=events.append)
    assert records == reference  # heartbeats never change the bytes
    beats = [e for e in events if isinstance(e, ShardProgress)]
    assert beats
    for event in beats:
        assert event.backend == backend.name
        assert event.heartbeat.round_index >= 0


def test_bad_heartbeat_interval_is_rejected():
    with pytest.raises(ConfigurationError):
        SweepService(workers=1, heartbeat_interval=0)
    with pytest.raises(ConfigurationError):
        SweepService(workers=1, heartbeat_interval="fast")


# --------------------------------------------------------------------------- #
# Per-shard status rows
# --------------------------------------------------------------------------- #


def test_status_shows_live_shard_rows_while_running():
    injector = ServiceFaultInjector.from_spec("hang-beating:0:0:0.8")
    with SweepService(
        workers=1, heartbeat_interval=1, fault_injector=injector
    ) as daemon:
        client = ServiceClient(daemon.url)
        sweep_id = str(client.submit([make_cell()])["id"])
        row = None
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status = client.status(sweep_id)
            rows = [
                r for r in status.get("progress", ())
                if r.get("state") == "running" and "round" in r
            ]
            if rows:
                row = rows[0]
                break
            if status["state"] != "running":  # pragma: no cover - raced past
                break
            time.sleep(0.05)
        assert row is not None, "no live shard row observed mid-run"
        assert row["cell"] == 0
        assert row["protocol"] == "bfw"
        assert row["beat_age_seconds"] >= 0.0
        _wait_done(client, sweep_id)
        # Terminal sweeps report no in-flight rows.
        assert client.status(sweep_id)["progress"] == []


# --------------------------------------------------------------------------- #
# /sweeps listing and the span endpoint
# --------------------------------------------------------------------------- #


def test_sweep_listing_summarises_every_sweep(beating_service):
    client = ServiceClient(beating_service.url)
    first = str(client.submit([make_cell()])["id"])
    second = str(client.submit([make_cell(seeds=(8, 9))])["id"])
    _wait_done(client, first)
    _wait_done(client, second)
    listing = client.sweeps()["sweeps"]
    assert [row["id"] for row in listing] == [first, second]
    for row in listing:
        assert row["state"] == "done"
        assert row["completed_cells"] == row["cells"] == 1
        assert row["completed_shards"] == row["shards"]
        assert row["retries"] == 0
        assert row["error"] is None


def test_span_endpoint_returns_the_finished_tree(beating_service):
    client = ServiceClient(beating_service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    _wait_done(client, sweep_id)
    payload = client.spans(sweep_id)
    assert payload["id"] == sweep_id
    spans = spans_from_records(payload["spans"])
    assert sorted({span.kind for span in spans}) == sorted(SPAN_KINDS)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        assert span.end is not None, f"unfinished span {span.name}"
        if span.kind != "sweep":
            assert span.parent_id in by_id
    (attempt,) = [span for span in spans if span.kind == "attempt"]
    assert attempt.attrs["outcome"] == "done"


# --------------------------------------------------------------------------- #
# /metrics: JSON histogram + Prometheus text negotiation
# --------------------------------------------------------------------------- #


def test_metrics_json_includes_the_shard_wall_histogram(beating_service):
    client = ServiceClient(beating_service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    _wait_done(client, sweep_id)
    metrics = client.metrics()
    assert metrics["service"]["counters"]["service.heartbeats"] >= 1
    histogram = metrics["shard_wall_seconds"]
    assert histogram["count"] >= 1
    assert histogram["sum"] > 0.0
    buckets = histogram["buckets"]
    assert buckets[-1]["le"] is None  # +Inf
    counts = [bucket["count"] for bucket in buckets]
    assert counts == sorted(counts)  # cumulative
    assert counts[-1] == histogram["count"]


def test_metrics_negotiates_prometheus_text(beating_service):
    client = ServiceClient(beating_service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    _wait_done(client, sweep_id)
    request = urllib.request.Request(
        f"{beating_service.url}/metrics", headers={"Accept": "text/plain"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        assert "text/plain" in response.headers.get("Content-Type")
        text = response.read().decode("utf-8")
    assert "# TYPE repro_service_heartbeats counter" in text
    assert "# TYPE repro_service_workers gauge" in text
    assert "# TYPE repro_service_shard_wall_seconds histogram" in text
    assert 'repro_service_shard_wall_seconds_bucket{le="+Inf"}' in text
    assert 'repro_service_info{version="' in text
    # Without the Accept header the endpoint still serves JSON.
    with urllib.request.urlopen(
        f"{beating_service.url}/metrics", timeout=10
    ) as response:
        assert "application/json" in response.headers.get("Content-Type")
        json.loads(response.read().decode("utf-8"))


def test_prometheus_name_mangling():
    assert prometheus_name("service.cache_hits") == "repro_service_cache_hits"
    assert prometheus_name("a-b c") == "repro_a_b_c"


def test_render_prometheus_is_a_pure_function():
    text = render_prometheus(
        {
            "service": {
                "counters": {"service.cache_hits": 3},
                "gauges": {"service.workers": 2},
            },
            "shard_wall_seconds": {
                "buckets": [{"le": 0.5, "count": 1}, {"le": None, "count": 2}],
                "sum": 1.25,
                "count": 2,
            },
        },
        health={"version": "9.9.9", "uptime_seconds": 12.5},
    )
    assert "# TYPE repro_service_cache_hits counter" in text
    assert "repro_service_cache_hits 3" in text
    assert "repro_service_workers 2" in text
    assert 'repro_service_shard_wall_seconds_bucket{le="0.5"} 1' in text
    assert 'repro_service_shard_wall_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_service_shard_wall_seconds_sum 1.25" in text
    assert "repro_service_shard_wall_seconds_count 2" in text
    assert 'repro_service_info{version="9.9.9"} 1' in text
    assert "repro_service_uptime_seconds 12.5" in text
    assert text.endswith("\n")


def test_healthz_reports_version_and_uptime(service):
    from repro._version import __version__

    payload = ServiceClient(service.url).healthz()
    assert payload["version"] == __version__
    assert payload["uptime_seconds"] >= 0.0


# --------------------------------------------------------------------------- #
# Liveness watchdog (the false-positive fix)
# --------------------------------------------------------------------------- #


def _run_with_fault(spec):
    cell = make_cell(seeds=tuple(range(6)))
    reference = SequentialBackend().run_cells((cell,))
    injector = ServiceFaultInjector.from_spec(spec)
    with SweepService(
        workers=2,
        shard_timeout=0.5,
        heartbeat_interval=1,
        fault_injector=injector,
    ) as daemon:
        backend = ServiceBackend(daemon.url, heartbeat_interval=1)
        records = backend.run_cells((cell,))
        assert records == reference
        (row,) = ServiceClient(daemon.url).sweeps()["sweeps"]
        return row["retries"]


def test_hanging_but_beating_shard_is_not_killed_at_shard_timeout():
    # Hangs for 1.2s — past the 0.5s shard timeout — but keeps pulsing,
    # so the liveness watchdog must leave it alone.
    assert _run_with_fault("hang-beating:0:0:1.2") == 0


def test_silent_hang_is_still_requeued_at_shard_timeout():
    # The control: same hang without beats re-queues as before.
    assert _run_with_fault("hang-silent:0:0:1.2") >= 1


# --------------------------------------------------------------------------- #
# render_top (the pure half of `repro top`)
# --------------------------------------------------------------------------- #


def _top_payloads():
    health = {"state": "serving", "version": "1.0.0", "uptime_seconds": 30.0}
    metrics = {
        "service": {
            "counters": {
                "service.heartbeats": 12,
                "service.cache_hits": 1,
                "service.cache_misses": 3,
                "service.shards_retried": 1,
            },
            "gauges": {
                "service.workers": 2,
                "service.queue_depth": 0,
                "service.shards_running": 1,
            },
        },
        "shard_wall_seconds": {"sum": 0.5, "count": 4, "buckets": []},
    }
    sweeps = {
        "sweeps": [
            {
                "id": "ab12cd34", "state": "running", "cells": 2,
                "completed_cells": 1, "shards": 4, "completed_shards": 2,
                "retries": 1,
            }
        ]
    }
    statuses = {
        "ab12cd34": {
            "progress": [
                {
                    "cell": 1, "shard": 0, "shards": 2, "attempt": 0,
                    "state": "running", "round": 96, "active": 2,
                    "replicas": 4, "rounds_per_second": 1234.0,
                    "beat_age_seconds": 0.04, "retries": 0,
                }
            ]
        }
    }
    return health, metrics, sweeps, statuses


def test_render_top_frame_layout():
    health, metrics, sweeps, statuses = _top_payloads()
    frame = render_top(
        health, metrics, sweeps, statuses, url="http://127.0.0.1:1"
    )
    assert "repro top — http://127.0.0.1:1 — serving — v1.0.0 — up 30s" in frame
    assert "workers 2" in frame and "queue 0" in frame
    assert "running shards 1" in frame
    assert "heartbeats 12" in frame
    assert "cache 1/3 hit/miss" in frame
    assert "shards executed 4" in frame and "mean wall 0.125s" in frame
    assert "SWEEP" in frame and "ab12cd34" in frame
    assert "cell 1 shard 0/2 attempt 0 running round 96" in frame
    assert "active 2/4" in frame
    assert "1,234 rounds/s" in frame
    assert "beat 0.0s ago" in frame


def test_render_top_without_sweeps():
    health, metrics, _, _ = _top_payloads()
    frame = render_top(health, metrics, {"sweeps": []})
    assert "(no sweeps submitted yet)" in frame


def test_render_top_against_a_live_service(beating_service):
    client = ServiceClient(beating_service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    _wait_done(client, sweep_id)
    frame = render_top(
        client.healthz(), client.metrics(), client.sweeps(),
        url=beating_service.url,
    )
    assert sweep_id in frame
    assert "done" in frame
