"""The acceptance bar for the service backend: byte-identical to sequential.

Every assertion here goes through the shared parity harness
(``tests/batch/parity_harness.py``), exactly like the batched and process
backends before it: records, observations (traces, reducers, spilled
traces), dynamic schedules, and daemon-side seed-list sharding must all be
byte-identical to a local sequential run of the same cells.
"""

import pytest

from repro.batch.observers import ObserverSpec
from repro.exec import resolve_backend
from repro.service import ServiceBackend

from tests.batch.parity_harness import (
    BACKEND_PARITY_GRAPHS,
    DYNAMIC_PARITY_SCHEDULES,
    assert_backend_observation_parity,
    assert_backend_record_parity,
    assert_same_batch,
    assert_same_observation,
    backend_parity_cells,
    dynamic_parity_cells,
    observed_parity_cells,
)


def test_service_record_parity(service):
    # The full default parity sweep: bfw, bfw-nonuniform and a memory
    # baseline over cycle/path/Erdős–Rényi — same harness, same cells as
    # every local backend.
    assert_backend_record_parity(["sequential", ServiceBackend(service.url)])


def test_service_observation_parity(service):
    # Trace + leader-extinction observers, static and churned schedules.
    assert_backend_observation_parity(
        ["sequential", ServiceBackend(service.url)]
    )


def test_service_dynamic_schedule_parity(service):
    cells = dynamic_parity_cells(
        protocols=("bfw",), schedules=DYNAMIC_PARITY_SCHEDULES[:3]
    )
    assert_backend_record_parity(
        ["sequential", ServiceBackend(service.url)], cells
    )


def test_service_spill_trace_observation_parity(service, tmp_path):
    # Out-of-core traces: SpilledTrace compares by content, so a remote
    # execution spilling to its own segments must equal a local one.
    spec = ObserverSpec(
        "spill-trace",
        {"directory": str(tmp_path / "spill"), "byte_budget": 2048},
    )
    cells = observed_parity_cells(
        graphs=BACKEND_PARITY_GRAPHS[:2], schedules=(None,), specs=(spec,)
    )
    assert_backend_observation_parity(
        ["sequential", ServiceBackend(service.url)], cells
    )


@pytest.mark.parametrize("shard_size", [2, "auto"])
def test_daemon_side_sharding_is_byte_identical(service, shard_size):
    # shard_size travels with the submission: the DAEMON splits the seed
    # lists across its worker pool, and the merged outcomes — records and
    # batch arrays — must equal an unsharded local batched run.
    cells = backend_parity_cells(protocols=("bfw",))
    reference = resolve_backend("batched").run_cell_outcomes(cells)
    sharded = ServiceBackend(service.url, shard_size=shard_size).run_cell_outcomes(
        cells
    )
    for ref, out in zip(reference, sharded):
        assert out.to_records() == ref.to_records()
        if ref.batch is not None and out.batch is not None:
            assert_same_batch(ref.batch, out.batch)
        if ref.observations is not None:
            assert_same_observation(ref.observations, out.observations)


def test_service_progress_events_arrive_in_cell_order(service):
    cells = backend_parity_cells(protocols=("bfw",))
    backend = ServiceBackend(service.url, shard_size=3)
    events = []
    outcomes = backend.run_cell_outcomes(cells, progress=events.append)
    assert [event.index for event in events] == list(range(len(cells)))
    assert all(event.total == len(cells) for event in events)
    assert all(event.backend == backend.name for event in events)
    for event, outcome in zip(events, outcomes):
        assert event.outcome.to_records() == outcome.to_records()


def test_service_backend_through_run_monte_carlo(service):
    # The whole entry-point stack: montecarlo over service: must match the
    # default batched run, summary statistics included.
    from repro.experiments.montecarlo import run_monte_carlo

    local = run_monte_carlo(
        protocol="bfw", graph="cycle", n=16, replicas=5, master_seed=11
    )
    remote = run_monte_carlo(
        protocol="bfw",
        graph="cycle",
        n=16,
        replicas=5,
        master_seed=11,
        backend=f"service:{service.url}",
    )
    assert remote.result.as_dicts() == local.result.as_dicts()
    assert remote.convergence_rate == local.convergence_rate
