"""CLI verbs for live observability: --heartbeat, --spans, top, trace export.

The acceptance-level check lives here: ``repro trace export`` must emit
valid Chrome trace-event JSON (schema-verified) from both a local
span-JSONL file and a service sweep id.
"""

import json
import re

from repro.cli import main
from repro.service import ServiceClient
from repro.telemetry.spans import SPAN_KINDS

from tests.service.conftest import make_cell


def _assert_chrome_trace_schema(path):
    document = json.loads(path.read_text(encoding="utf-8"))
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    assert events
    for event in events:
        assert set(event) == {
            "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
        }
        assert event["ph"] == "X"
        assert event["cat"] in SPAN_KINDS
        assert event["dur"] >= 0.0
        assert event["args"]["span_id"]
    return events


# --------------------------------------------------------------------------- #
# Local sweeps: --heartbeat and --spans end to end
# --------------------------------------------------------------------------- #


def _dynamic_args(*extra):
    return [
        "dynamic", "--sizes", "16", "--churn-rates", "0", "1",
        "--seeds", "3", "--quiet", *extra,
    ]


def test_heartbeat_and_spans_flags_flow_through_a_local_sweep(tmp_path, capsys):
    telemetry = tmp_path / "telemetry.jsonl"
    spans = tmp_path / "spans.jsonl"
    assert main(_dynamic_args(
        "--heartbeat", "1",
        "--telemetry", str(telemetry), "--spans", str(spans),
    )) == 0
    capsys.readouterr()
    records = [
        json.loads(line)
        for line in telemetry.read_text(encoding="utf-8").splitlines()
    ]
    kinds = [record["event"] for record in records]
    assert "progress" in kinds
    assert kinds.index("progress") < kinds.index("summary")
    progress = next(r for r in records if r["event"] == "progress")
    assert progress["engine"]
    assert progress["round"] >= 0

    # The spans file exports to a schema-valid Chrome trace.
    out = tmp_path / "sweep.trace.json"
    assert main(["trace", "export", str(spans), "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    events = _assert_chrome_trace_schema(out)
    assert sorted({event["cat"] for event in events}) == sorted(SPAN_KINDS)


def test_heartbeat_zero_means_off(tmp_path):
    telemetry = tmp_path / "telemetry.jsonl"
    assert main(_dynamic_args(
        "--heartbeat", "0", "--telemetry", str(telemetry),
    )) == 0
    kinds = [
        json.loads(line)["event"]
        for line in telemetry.read_text(encoding="utf-8").splitlines()
    ]
    assert "progress" not in kinds


def test_trace_export_default_output_path(tmp_path, capsys, monkeypatch):
    spans = tmp_path / "sweep.spans.jsonl"
    assert main(_dynamic_args("--spans", str(spans))) == 0
    capsys.readouterr()
    assert main(["trace", "export", str(spans)]) == 0
    expected = tmp_path / "sweep.spans.trace.json"
    assert expected.exists()
    assert str(expected) in capsys.readouterr().out


def test_trace_export_missing_file_is_an_error(tmp_path, capsys):
    assert main(["trace", "export", str(tmp_path / "nope.jsonl")]) == 1
    assert "no span file" in capsys.readouterr().err


def test_trace_export_empty_file_is_an_error(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    assert main(["trace", "export", str(empty)]) == 1
    assert "no spans" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Service-side: trace export --url and repro top
# --------------------------------------------------------------------------- #


def test_trace_export_from_a_service_sweep(service, tmp_path, capsys):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    client.events(sweep_id, timeout=15.0)
    out = tmp_path / "service.trace.json"
    assert main([
        "trace", "export", sweep_id, "--url", service.url, "--out", str(out),
    ]) == 0
    events = _assert_chrome_trace_schema(out)
    assert sorted({event["cat"] for event in events}) == sorted(SPAN_KINDS)


def test_trace_export_unknown_sweep_is_an_error(service, capsys):
    assert main(["trace", "export", "deadbeef", "--url", service.url]) == 1
    assert "404" in capsys.readouterr().err


def test_top_once_renders_a_frame(service, capsys):
    client = ServiceClient(service.url)
    sweep_id = str(client.submit([make_cell()])["id"])
    client.events(sweep_id, timeout=15.0)
    assert main(["top", "--url", service.url, "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert re.search(r"workers \d", out)
    assert sweep_id in out


def test_top_unreachable_service_is_an_error(capsys):
    assert main(["top", "--url", "http://127.0.0.1:1", "--once"]) == 1
    assert capsys.readouterr().err
