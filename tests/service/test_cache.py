"""The content-addressed result cache: hits, verification, persistence."""

import pytest

from repro.exec import SequentialBackend, cell_signature, execute_cell_batched
from repro.service import ResultCache, ServiceBackend, ServiceClient, SweepService

from tests.service.conftest import make_cell


# --------------------------------------------------------------------------- #
# ResultCache unit behaviour
# --------------------------------------------------------------------------- #


def test_cache_round_trip_and_counters(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = make_cell()
    signature = cell_signature(cell)
    assert cache.get(signature) is None
    outcome = execute_cell_batched(cell)
    assert cache.put(signature, cell, outcome)
    restored = cache.get(signature)
    assert restored is not None
    assert restored.to_records() == outcome.to_records()
    assert cache.stats() == {"hits": 1, "misses": 1}
    assert len(cache) == 1


def test_cache_put_verifies_on_overlap(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = make_cell()
    signature = cell_signature(cell)
    outcome = execute_cell_batched(cell)
    assert cache.put(signature, cell, outcome)
    # Identical second write: fine (the retry determinism assertion).
    assert cache.put(signature, cell, outcome)
    # Different records under the same signature: refused.
    other = execute_cell_batched(make_cell(seeds=(7, 8, 9, 10)))
    assert not cache.put(signature, cell, other)


def test_cache_survives_corrupt_entries(tmp_path):
    cache = ResultCache(str(tmp_path))
    cell = make_cell()
    signature = cell_signature(cell)
    cache.put(signature, cell, execute_cell_batched(cell))
    entry = tmp_path / signature[:2] / f"{signature}.json"
    entry.write_text("{ truncated", encoding="utf-8")
    assert cache.get(signature) is None  # corrupt → miss
    assert not entry.exists()  # and deleted, so a rewrite can land


def test_cache_owns_a_tempdir_when_unconfigured():
    cache = ResultCache()
    directory = cache.directory
    assert directory.exists()
    cache.close()
    assert not directory.exists()


# --------------------------------------------------------------------------- #
# Through the daemon: resubmission is a cache hit
# --------------------------------------------------------------------------- #


def test_identical_resubmission_is_a_cache_hit(service):
    backend = ServiceBackend(service.url)
    cell = make_cell()
    first = backend.run_cells((cell,))
    client = backend.client
    before = client.metrics()["service"]["counters"]["service.cache_hits"]

    second = backend.run_cells((cell,))
    assert second == first  # byte-identical, served from the cache
    after = client.metrics()["service"]["counters"]
    assert after["service.cache_hits"] > before
    # The cached submission executed no new shards.
    assert after["service.shards_executed"] == 1

    receipt = client.submit([cell])
    assert receipt["cached_cells"] == 1
    status = client.status(str(receipt["id"]))
    assert status["state"] == "done"
    assert status["cached_cells"] == 1


def test_cell_events_carry_the_cached_flag(service):
    client = ServiceClient(service.url)
    cell = make_cell()
    first = client.events(str(client.submit([cell])["id"]), timeout=15.0)
    second = client.events(str(client.submit([cell])["id"]), timeout=15.0)
    flag = lambda poll: [
        record["cached"]
        for record in poll["events"]
        if record["event"] == "cell"
    ]
    assert flag(first) == [False]
    assert flag(second) == [True]


def test_cache_persists_across_daemon_restarts(tmp_path):
    cell = make_cell()
    local = SequentialBackend().run_cells((cell,))
    cache_dir = str(tmp_path / "cache")

    with SweepService(workers=2, cache_dir=cache_dir) as first:
        assert ServiceBackend(first.url).run_cells((cell,)) == local

    # A fresh daemon over the same directory serves the cell without
    # executing anything.
    with SweepService(workers=2, cache_dir=cache_dir) as second:
        client = ServiceClient(second.url)
        receipt = client.submit([cell])
        assert receipt["cached_cells"] == 1
        counters = client.metrics()["service"]["counters"]
        assert counters["service.cache_hits"] == 1
        assert counters.get("service.shards_executed", 0) == 0
        status = client.status(str(receipt["id"]))
        assert status["state"] == "done"
        records = SequentialBackend().run_cells((cell,))
        assert status["records"] == [record.as_dict() for record in records]
