"""Shared fixtures for the sweep-service tests.

Each test gets its *own* daemon on an ephemeral port (function scope), so
result caches start cold and drain/cancel tests cannot poison neighbours.
The daemon runs in-process — worker threads, not subprocesses — which keeps
a full service round-trip in the tens of milliseconds.
"""

import pytest

from repro.exec import ExecutionCell
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.service import SweepService


@pytest.fixture
def service():
    with SweepService(workers=2) as daemon:
        yield daemon


def make_cell(**overrides):
    """A small, fast cell for endpoint-level tests."""
    defaults = dict(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=12),
        seeds=(1, 2, 3, 4),
    )
    defaults.update(overrides)
    return ExecutionCell(**defaults)
