"""CLI verbs for the sweep service: serve, submit, status, cancel, tail --url."""

import os
import re
import signal
import subprocess
import sys

import pytest

from repro.cli import main
from repro.exec import resolve_backend

from tests.service.conftest import make_cell


# --------------------------------------------------------------------------- #
# Client verbs against an in-process daemon
# --------------------------------------------------------------------------- #


def _submit_args(url, **extra):
    args = [
        "submit", "--url", url,
        "--protocol", "bfw", "--graph", "cycle", "--n", "12", "--replicas", "4",
    ]
    for key, value in extra.items():
        args.extend([f"--{key.replace('_', '-')}", str(value)])
    return args


def test_submit_status_tail_cancel_round_trip(service, capsys):
    assert main(_submit_args(service.url, shard_size=2, master_seed=3)) == 0
    out = capsys.readouterr().out
    match = re.search(r"submitted sweep (\w+)", out)
    assert match, out
    sweep_id = match.group(1)
    assert "repro status" in out and "repro tail" in out

    # --follow in submit is covered below; wait via tail --url --follow.
    assert main(["tail", sweep_id, "--url", service.url, "--follow"]) == 0
    tail_out = capsys.readouterr().out
    assert "bfw on cycle(12)" in tail_out
    assert "shard" in tail_out  # shard sub-progress renders too
    assert "sweep complete" in tail_out

    assert main(["status", sweep_id, "--url", service.url]) == 0
    status_out = capsys.readouterr().out
    assert f"sweep {sweep_id}: done" in status_out

    assert main(["status", sweep_id, "--url", service.url, "--json"]) == 0
    assert '"state": "done"' in capsys.readouterr().out

    assert main(["cancel", sweep_id, "--url", service.url]) == 0
    assert "done" in capsys.readouterr().out  # finished sweeps stay done


def test_submit_follow_blocks_until_done(service, capsys):
    assert main(_submit_args(service.url, master_seed=5) + ["--follow"]) == 0
    out = capsys.readouterr().out
    assert "sweep complete" in out
    assert re.search(r"sweep \w+: done", out)


def test_submit_matches_local_montecarlo_records(service, capsys):
    # `repro submit` derives seeds exactly like `repro montecarlo`, so the
    # sweep's records equal a local run of the montecarlo cell.
    from repro.exec import ExecutionCell, SequentialBackend
    from repro.experiments.config import GraphSpec, ProtocolSpecConfig
    from repro.experiments.seeds import trial_seeds
    from repro.service import ServiceClient

    assert main(_submit_args(service.url, master_seed=9)) == 0
    sweep_id = re.search(
        r"submitted sweep (\w+)", capsys.readouterr().out
    ).group(1)
    client = ServiceClient(service.url)
    client.events(sweep_id, timeout=15.0)
    status = client.status(sweep_id)
    cell = ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=12),
        seeds=trial_seeds(9, "montecarlo/bfw/cycle/12", 4),
        graph_rng_key=(9, "montecarlo-graph", "cycle", 12),
    )
    local = SequentialBackend().run_cells((cell,))
    assert status["records"] == [record.as_dict() for record in local]


def test_client_verbs_fail_cleanly_when_unreachable(capsys):
    url = "http://127.0.0.1:1"  # nothing listens on port 1
    assert main(["status", "abc", "--url", url]) == 1
    assert "unreachable" in capsys.readouterr().err
    assert main(["cancel", "abc", "--url", url]) == 1
    assert "unreachable" in capsys.readouterr().err
    assert main(_submit_args(url)) == 1
    assert "unreachable" in capsys.readouterr().err
    assert main(["tail", "abc", "--url", url]) == 1
    assert "unreachable" in capsys.readouterr().err


def test_status_unknown_sweep_is_an_error(service, capsys):
    assert main(["status", "deadbeef", "--url", service.url]) == 1
    assert "404" in capsys.readouterr().err


def test_tail_without_url_still_reads_files(tmp_path, capsys):
    # Regression: adding --url must not break file-mode tailing.
    path = tmp_path / "telemetry.jsonl"
    path.write_text(
        '{"event": "summary", "cells": 1, "wall_seconds": 0.5, '
        '"rounds_advanced": 10}\n',
        encoding="utf-8",
    )
    assert main(["tail", str(path)]) == 0
    assert "sweep complete" in capsys.readouterr().out


def test_montecarlo_accepts_service_backend_spec(service, capsys):
    assert main([
        "montecarlo", "--protocol", "bfw", "--graph", "cycle",
        "--n", "12", "--replicas", "4",
        "--backend", f"service:{service.url}",
    ]) == 0
    out = capsys.readouterr().out
    assert "Monte Carlo" in out


# --------------------------------------------------------------------------- #
# `repro serve` end to end (subprocess, SIGTERM drain)
# --------------------------------------------------------------------------- #


def test_serve_subprocess_drains_on_sigterm(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(tmp_path / "cache")],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on (\S+)", banner)
        assert match, banner
        url = match.group(1)

        result = subprocess.run(
            [sys.executable, "-m", "repro.cli"] + _submit_args(url) + ["--follow"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "sweep complete" in result.stdout
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            pytest.fail("repro serve did not drain on SIGTERM")
    assert proc.returncode == 0
    remainder = proc.stdout.read()
    assert "sweep service stopped" in remainder
