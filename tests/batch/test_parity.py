"""Batched-vs-single parity: the core guarantee of the batch subsystem.

With matched per-replica seeds, replica ``r`` of a :class:`BatchedEngine`
run must be bit-for-bit identical to ``VectorizedEngine.run(rng=seeds[r])``:
same convergence round, same executed rounds, same final leader (node id),
same leader-count trajectory.  This is what lets every sweep route through
the batched engine without changing any reproduced number of the paper.

The assertion itself lives in :mod:`tests.batch.parity_harness`, shared with
the memory-baseline parity suite; this module covers the constant-state
(BFW-family) half of the registry.
"""

import numpy as np
import pytest

from repro.beeping.adversary import planted_leaders_initial_states
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.registry import available_protocols, create_protocol
from repro.graphs.generators import (
    cycle_graph,
    path_graph,
    random_geometric_graph,
)
from tests.batch.parity_harness import assert_replica_parity


@pytest.mark.parametrize(
    "topology",
    [cycle_graph(24), path_graph(17), random_geometric_graph(40, rng=3)],
    ids=["cycle", "path", "geometric"],
)
def test_bfw_parity_across_graph_families(topology):
    assert_replica_parity(topology, BFWProtocol())


def test_nonuniform_bfw_parity():
    topology = path_graph(13)
    assert_replica_parity(topology, NonUniformBFWProtocol(diameter=12))


@pytest.mark.parametrize("name", available_protocols())
def test_every_registered_variant_has_parity(name):
    topology = cycle_graph(16)
    protocol = create_protocol(name, diameter=8, n=topology.n)
    # ablated variants may not converge; a modest shared budget keeps the
    # test fast while still exercising retirement and budget exhaustion
    assert_replica_parity(topology, protocol, seeds=tuple(range(5)), max_rounds=400)


def test_parity_with_planted_initial_states():
    topology = path_graph(15)
    initial = planted_leaders_initial_states(topology, (0, topology.n - 1))
    assert_replica_parity(
        topology, BFWProtocol(), initial_states=np.asarray(initial)
    )


def test_parity_without_early_stopping():
    topology = cycle_graph(18)
    assert_replica_parity(
        topology,
        BFWProtocol(),
        seeds=tuple(range(6)),
        max_rounds=250,
        stop_at_single_leader=False,
    )


def test_parity_survives_interleaved_retirement_on_larger_cycle():
    # enough replicas and rounds that retirements interleave with the
    # prefetched RNG blocks in every position
    topology = cycle_graph(60)
    assert_replica_parity(topology, BFWProtocol(), seeds=tuple(range(16)))
