"""Parity and behaviour of the batched memory engine.

The memory half of the guarantee from ``test_parity.py``: with matched
seeds, replica ``r`` of a :class:`BatchedMemoryEngine` run is identical,
field for field, to ``MemorySimulator.run(rng=seeds[r])`` — including the
two-round stability window, the convergence-round resets when a baseline
transiently drops to one candidate, the all-terminated early exit of the
ID-broadcast phases, and the non-convergent multi-leader outcome of the
clique-only knockout on sparse graphs.

Together with the registry sweep below, every protocol the experiments can
name — BFW variants *and* memory baselines — passes the shared harness on
cycles, paths and an Erdős–Rényi graph.
"""

import numpy as np
import pytest

from repro.baselines import (
    EmekKerenStyleElection,
    GilbertNewportKnockout,
    IDBroadcastElection,
)
from repro.batch import BatchedMemoryEngine, supports_batched_memory
from repro.core.protocol import MemoryProtocol
from repro.core.registry import available_protocols
from repro.errors import ConfigurationError
from repro.experiments.runner import instantiate_protocol
from repro.graphs.generators import clique_graph, cycle_graph, path_graph
from tests.batch.parity_harness import (
    assert_replica_parity,
    parity_topologies,
)

#: Memory baselines with a registered batch implementation (the pipelined-IDs
#: election is a standalone runner and deliberately absent).
BATCHED_MEMORY_BASELINES = (
    "id-broadcast",
    "id-broadcast-random",
    "emek-keren",
    "gilbert-newport",
)

#: The full parity surface: every registered constant-state protocol plus
#: every batched memory baseline.
ALL_BATCHED_PROTOCOLS = tuple(available_protocols()) + BATCHED_MEMORY_BASELINES


@pytest.mark.parametrize("family_id,topology", parity_topologies())
@pytest.mark.parametrize("name", ALL_BATCHED_PROTOCOLS)
def test_every_batched_protocol_has_parity_on_every_family(
    name, family_id, topology
):
    protocol = instantiate_protocol(name, topology, {})
    # A modest shared budget keeps the sequential reference fast while still
    # exercising retirement, termination and budget exhaustion (the knockout
    # baseline never converges off-clique, for instance).
    assert_replica_parity(
        topology, protocol, seeds=tuple(range(5)), max_rounds=300
    )


def test_knockout_parity_on_its_native_clique():
    topology = clique_graph(12)
    assert_replica_parity(topology, GilbertNewportKnockout(), seeds=tuple(range(8)))


def test_memory_parity_without_early_stopping():
    topology = cycle_graph(12)
    assert_replica_parity(
        topology,
        EmekKerenStyleElection(diameter=6),
        seeds=tuple(range(4)),
        max_rounds=120,
        stop_at_single_leader=False,
    )


def test_memory_parity_with_wider_stability_window():
    topology = cycle_graph(12)
    assert_replica_parity(
        topology,
        GilbertNewportKnockout(),
        seeds=tuple(range(4)),
        max_rounds=120,
        stability_window=5,
    )


def test_id_broadcast_terminates_and_retires_every_replica():
    topology = cycle_graph(16)
    protocol = IDBroadcastElection(diameter=topology.diameter(), n=topology.n)
    batch = assert_replica_parity(topology, protocol, seeds=tuple(range(6)))
    # Unique identifiers make the broadcast deterministic: every replica
    # elects the maximum-ID node within the fixed phase schedule.
    assert batch.converged.all()
    assert (batch.rounds_executed <= protocol.total_rounds).all()
    assert (batch.leader_node == topology.n - 1).all()


def test_batch_seeds_and_metadata_round_trip():
    topology = cycle_graph(10)
    batch = BatchedMemoryEngine(topology, GilbertNewportKnockout()).run([7, 8, 9])
    assert batch.seeds == (7, 8, 9)
    assert batch.protocol_name == "gilbert-newport-knockout"
    assert batch.topology_name == topology.name
    assert batch.final_states is None  # memory baselines carry no state vector


def test_zero_round_budget_reports_initial_configuration():
    topology = cycle_graph(6)
    batch = BatchedMemoryEngine(topology, GilbertNewportKnockout()).run(
        [1, 2], max_rounds=0
    )
    assert (batch.rounds_executed == 0).all()
    assert (batch.final_leader_count == topology.n).all()
    assert not batch.converged.any()


def test_negative_round_budget_is_rejected():
    with pytest.raises(ConfigurationError):
        BatchedMemoryEngine(cycle_graph(6), GilbertNewportKnockout()).run(
            [1], max_rounds=-1
        )


def test_unsupported_memory_protocol_is_rejected():
    class OpaqueBaseline(MemoryProtocol):
        name = "opaque"

        def create_memory(self, node, n, rng):
            return {}

        def wants_to_beep(self, memory, round_index):
            return False

        def update(self, memory, heard_beep, round_index, rng):
            return memory

        def is_leader(self, memory):
            return True

    assert not supports_batched_memory(OpaqueBaseline())
    with pytest.raises(ConfigurationError):
        BatchedMemoryEngine(path_graph(4), OpaqueBaseline())


def test_supports_batched_memory_covers_the_baseline_types():
    topology = cycle_graph(8)
    for name in BATCHED_MEMORY_BASELINES:
        assert supports_batched_memory(instantiate_protocol(name, topology, {}))
    assert not supports_batched_memory(instantiate_protocol("pipelined-ids", topology, {}))
    assert not supports_batched_memory(object())


def test_streams_end_in_the_sequential_generators_state():
    # Unlike the prefetching constant-state engine, the memory engine draws
    # exactly the randomness the sequential run consumes — so a caller's
    # generator objects are left in the standalone post-run state.
    from repro.batch.streams import ReplicaStreams
    from repro.beeping.simulator import MemorySimulator

    topology = cycle_graph(10)
    seeds = [3, 4]
    batch_generators = [np.random.default_rng(seed) for seed in seeds]
    BatchedMemoryEngine(topology, EmekKerenStyleElection(diameter=5)).run(
        ReplicaStreams(batch_generators)
    )
    for seed, generator in zip(seeds, batch_generators):
        reference = np.random.default_rng(seed)
        MemorySimulator(topology, EmekKerenStyleElection(diameter=5)).run(
            rng=reference
        )
        assert generator.random() == reference.random()
