"""Unit tests for the batched observation layer (repro.batch.observers)."""

import pickle

import numpy as np
import pytest

from repro.batch import (
    BatchedEngine,
    BatchedMemoryEngine,
    BatchBeepCountTracker,
    BatchLeaderCountTracker,
    BatchObserver,
    BatchRunInfo,
    BatchSingleLeaderStopper,
    BatchTrace,
    BatchTraceRecorder,
    LeaderExtinctionObserver,
    ObserverPipeline,
    ObserverSpec,
    build_observer,
    build_observers,
    merge_observations,
)
from repro.baselines import EmekKerenStyleElection, PipelinedIDElection
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.errors import (
    ConfigurationError,
    SimulationError,
    TraceError,
)
from repro.experiments.montecarlo import MonteCarloRunner
from repro.graphs.generators import cycle_graph

SEEDS = tuple(range(5))


def _run_with(observers, n=12, seeds=SEEDS, **kwargs):
    topology = cycle_graph(n)
    engine = BatchedEngine(topology, BFWProtocol())
    return engine.run(list(seeds), observers=observers, **kwargs)


# --------------------------------------------------------------------------- #
# ObserverSpec registry
# --------------------------------------------------------------------------- #


def test_observer_spec_validates_kind():
    with pytest.raises(ConfigurationError, match="unknown observer kind"):
        ObserverSpec("wormhole")


def test_observer_spec_labels():
    assert ObserverSpec("trace").label == "trace"
    assert (
        ObserverSpec("beep-counts", {"keep_history": True}).label
        == "beep-counts[keep_history=True]"
    )


def test_observer_spec_pickles():
    spec = ObserverSpec("leader-extinction")
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_build_observer_rejects_bad_params():
    with pytest.raises(ConfigurationError, match="invalid parameters"):
        build_observer(ObserverSpec("trace", {"nope": 1}))


def test_build_observer_passes_instances_through():
    observer = BatchTraceRecorder()
    assert build_observer(observer) is observer
    with pytest.raises(ConfigurationError, match="ObserverSpec"):
        build_observer("trace")


def test_build_observers_in_spec_order():
    observers = build_observers(
        [ObserverSpec("trace"), ObserverSpec("leader-extinction")]
    )
    assert isinstance(observers[0], BatchTraceRecorder)
    assert isinstance(observers[1], LeaderExtinctionObserver)


# --------------------------------------------------------------------------- #
# BatchTrace
# --------------------------------------------------------------------------- #


def test_batch_trace_shape_validation():
    with pytest.raises(TraceError, match="3-D"):
        BatchTrace(
            states=np.zeros((3, 4), dtype=np.int8),
            rounds_executed=np.zeros(4, dtype=np.int64),
            beeping_values=(1,),
            leader_values=(0,),
        )
    with pytest.raises(TraceError, match="rounds_executed"):
        BatchTrace(
            states=np.zeros((3, 4, 5), dtype=np.int8),
            rounds_executed=np.zeros(3, dtype=np.int64),
            beeping_values=(1,),
            leader_values=(0,),
        )
    with pytest.raises(TraceError, match="outside recorded range"):
        BatchTrace(
            states=np.zeros((3, 4, 5), dtype=np.int8),
            rounds_executed=np.full(4, 7, dtype=np.int64),
            beeping_values=(1,),
            leader_values=(0,),
        )


def test_batch_trace_replica_range_check():
    recorder = BatchTraceRecorder()
    _run_with([recorder])
    trace = recorder.trace()
    with pytest.raises(TraceError, match="outside batch"):
        trace.replica(len(SEEDS))


def test_batch_trace_valid_mask_matches_rounds():
    recorder = BatchTraceRecorder()
    _run_with([recorder])
    trace = recorder.trace()
    mask = trace.valid_mask()
    assert mask.shape == (trace.num_rounds + 1, trace.num_replicas)
    for replica in range(trace.num_replicas):
        assert mask[:, replica].sum() == trace.rounds_executed[replica] + 1


def test_batch_trace_frozen_rows_repeat_final_configuration():
    recorder = BatchTraceRecorder()
    _run_with([recorder])
    trace = recorder.trace()
    for replica in range(trace.num_replicas):
        last = int(trace.rounds_executed[replica])
        for t in range(last, trace.num_rounds + 1):
            np.testing.assert_array_equal(
                trace.states[t, replica], trace.states[last, replica]
            )


def test_batch_trace_from_traces_rejects_mismatches():
    recorder = BatchTraceRecorder()
    _run_with([recorder])
    traces = recorder.trace().to_traces()
    other = VectorizedEngine(cycle_graph(14), BFWProtocol()).run(
        rng=0, record_trace=True
    ).trace
    with pytest.raises(TraceError, match="node counts"):
        BatchTrace.from_traces([traces[0], other])
    with pytest.raises(TraceError, match="0 traces"):
        BatchTrace.from_traces([])


def test_batch_trace_round_trips_through_pickle_and_eq():
    recorder = BatchTraceRecorder()
    _run_with([recorder])
    trace = recorder.trace()
    clone = pickle.loads(pickle.dumps(trace))
    assert clone == trace
    assert not (trace == BatchTrace.from_traces(trace.to_traces()[:2]))


def test_batch_trace_leader_counts_match_batch_result():
    recorder = BatchTraceRecorder()
    result = _run_with([recorder], record_leader_counts=True)
    trace = recorder.trace()
    counts = trace.leader_counts()
    for replica in range(trace.num_replicas):
        last = int(trace.rounds_executed[replica])
        assert (
            tuple(int(c) for c in counts[: last + 1, replica])
            == result.leader_counts[replica]
        )


# --------------------------------------------------------------------------- #
# Trackers
# --------------------------------------------------------------------------- #


def test_leader_count_tracker_result_matches_batch_trajectories():
    tracker = BatchLeaderCountTracker()
    result = _run_with([tracker], record_leader_counts=True)
    assert tracker.result() == result.leader_counts


def test_beep_count_tracker_matches_engine_beep_counts():
    tracker = BatchBeepCountTracker()
    _run_with([tracker])
    topology = cycle_graph(12)
    for index, seed in enumerate(SEEDS):
        engine = VectorizedEngine(topology, BFWProtocol())
        engine.run(rng=seed, record_beep_counts=True)
        np.testing.assert_array_equal(
            tracker.counts[index], engine.last_beep_counts
        )


def test_beep_count_tracker_requires_start():
    tracker = BatchBeepCountTracker()
    with pytest.raises(SimulationError, match="before on_start"):
        tracker.on_round(
            0, None, np.zeros((1, 4), dtype=bool), np.zeros((1, 4), dtype=bool),
            np.ones(1, dtype=bool),
        )


def test_trace_recorder_requires_rounds():
    with pytest.raises(SimulationError, match="no trace"):
        BatchTraceRecorder().trace()


def test_stopper_rejects_negative_patience():
    with pytest.raises(SimulationError, match="non-negative"):
        BatchSingleLeaderStopper(patience=-1)


def test_pipeline_rejects_malformed_retire_masks():
    class Broken(BatchObserver):
        def should_retire(self, round_index, leaders, active_mask):
            return np.ones(3, dtype=bool)

    pipeline = ObserverPipeline(
        [Broken()], BatchRunInfo(num_replicas=2, n=4)
    )
    with pytest.raises(SimulationError, match="should_retire mask"):
        pipeline.observe_round(
            0,
            None,
            None,
            np.zeros((2, 4), dtype=bool),
            np.ones(2, dtype=bool),
        )


# --------------------------------------------------------------------------- #
# Leader extinction
# --------------------------------------------------------------------------- #


def _leaders(*counts_per_round):
    """Synthetic (R, n) leader masks from per-replica leader counts."""
    num_replicas = len(counts_per_round[0])
    n = 4
    rounds = []
    for counts in counts_per_round:
        mask = np.zeros((num_replicas, n), dtype=bool)
        for replica, count in enumerate(counts):
            mask[replica, :count] = True
        rounds.append(mask)
    return rounds


def test_extinction_observer_counts_events_and_rounds():
    observer = LeaderExtinctionObserver()
    active = np.ones(3, dtype=bool)
    # Replica 0 never loses its leaders; replica 1 goes extinct at round 2
    # and stays absorbed; replica 2 dips to zero twice (re-entrant baseline).
    rounds = _leaders((2, 2, 1), (2, 1, 0), (1, 0, 1), (1, 0, 0))
    for round_index, leaders in enumerate(rounds):
        observer.on_round(round_index, None, None, leaders, active)
    observer.on_finish(np.array([3, 3, 3]))
    report = observer.report()
    np.testing.assert_array_equal(report.extinction_round, [-1, 2, 1])
    np.testing.assert_array_equal(report.extinction_events, [0, 1, 2])
    np.testing.assert_array_equal(report.leaderless_final, [False, True, True])
    assert report.extinction_rate == pytest.approx(2 / 3)
    assert report.absorbed_rate == pytest.approx(2 / 3)
    assert report.mean_extinction_round() == pytest.approx(1.5)


def test_extinction_observer_ignores_retired_replicas():
    observer = LeaderExtinctionObserver()
    rounds = _leaders((1, 1), (1, 0))
    observer.on_round(0, None, None, rounds[0], np.ones(2, dtype=bool))
    # Replica 1 already retired: its (frozen) zero row must not count.
    observer.on_round(1, None, None, rounds[1], np.array([True, False]))
    observer.on_finish(np.array([1, 0]))
    report = observer.report()
    np.testing.assert_array_equal(report.extinction_round, [-1, -1])


def test_extinction_report_static_runs_are_clean():
    observer = LeaderExtinctionObserver()
    _run_with([observer])
    report = observer.report()
    assert report.num_replicas == len(SEEDS)
    assert report.extinction_rate == 0.0
    assert report.mean_extinction_round() is None
    np.testing.assert_array_equal(report.leaderless_final, False)


def test_extinction_report_pickles_and_merges():
    observer = LeaderExtinctionObserver()
    _run_with([observer])
    report = observer.report()
    assert pickle.loads(pickle.dumps(report)) == report
    merged = LeaderExtinctionObserver.merge_results([report, report])
    assert merged.num_replicas == 2 * report.num_replicas
    with pytest.raises(ConfigurationError, match="0 extinction"):
        LeaderExtinctionObserver.merge_results([])


# --------------------------------------------------------------------------- #
# Engine integration edges
# --------------------------------------------------------------------------- #


def test_memory_engine_rejects_trace_recording():
    topology = cycle_graph(12)
    protocol = EmekKerenStyleElection(diameter=topology.diameter())
    engine = BatchedMemoryEngine(topology, protocol)
    with pytest.raises(ConfigurationError, match="constant-state"):
        engine.run(list(SEEDS), observers=[BatchTraceRecorder()])


def test_standalone_runner_rejects_observers():
    topology = cycle_graph(8)
    with pytest.raises(ConfigurationError, match="no observation hooks"):
        MonteCarloRunner().run(
            topology,
            PipelinedIDElection(),
            list(SEEDS),
            observers=[LeaderExtinctionObserver()],
        )


def test_merge_observations_dispatches_by_kind():
    spec = ObserverSpec("trace")
    singles = []
    topology = cycle_graph(12)
    for seed in SEEDS:
        recorder = BatchTraceRecorder()
        VectorizedEngine(topology, BFWProtocol()).run(
            rng=seed, observers=[recorder]
        )
        singles.append(recorder.result())
    merged = merge_observations(spec, singles)
    batch_recorder = BatchTraceRecorder()
    _run_with([batch_recorder])
    assert merged == batch_recorder.trace()


def test_observers_do_not_perturb_results():
    plain = _run_with([])
    observed = _run_with(
        [BatchTraceRecorder(), BatchLeaderCountTracker(), LeaderExtinctionObserver()]
    )
    np.testing.assert_array_equal(plain.rounds_executed, observed.rounds_executed)
    np.testing.assert_array_equal(plain.final_states, observed.final_states)
    assert plain.leader_counts == observed.leader_counts


def test_observers_reset_between_runs_when_reused():
    # The pipeline calls on_start each run; a reused observer must report
    # only the run it is currently attached to.
    topology = cycle_graph(12)
    engine = BatchedEngine(topology, BFWProtocol())
    extinction = LeaderExtinctionObserver()
    tracker = BatchLeaderCountTracker()
    first = engine.run(list(SEEDS), observers=[extinction, tracker])
    first_result = tracker.result()
    second = engine.run(list(SEEDS), observers=[extinction, tracker])
    report = extinction.report()
    assert report.num_replicas == len(SEEDS)
    assert report.extinction_rate == 0.0
    np.testing.assert_array_equal(report.rounds_observed, second.rounds_executed)
    assert tracker.result() == second.leader_counts == first_result
