"""Kernel parity: every round kernel reproduces the interpreted loop exactly.

The fused kernels of :mod:`repro.batch.kernels` consume the same prefetched
uniform blocks in the same order as the interpreted numpy rounds, so every
:class:`~repro.batch.results.BatchResult` field — convergence rounds,
leader-count trajectories, final state vectors — must be byte-identical
across ``kernel="numpy"`` / ``"python"`` / ``"numba"`` / ``"xp:numpy"``,
and identical to the :class:`~repro.exec.SequentialBackend` reference at
the record level.  Runs the fused path cannot serve (observers, schedules,
heartbeats) must fall back to the interpreted loop without perturbing the
RNG stream.

``kernel="numba"`` cases skip visibly when numba is not importable; the CI
``kernels`` job installs the ``repro[kernels]`` extra and runs them for
real.
"""

import numpy as np
import pytest

from repro.batch.engine import (
    BatchedEngine,
    dense_adjacency_preferred,
)
from repro.batch.kernels import (
    KernelPolicy,
    fused_round_block,
    numba_available,
    resolve_kernel,
    validate_kernel,
)
from repro.batch.observers import BatchLeaderCountTracker
from repro.batch.streams import (
    DEFAULT_RNG_BUFFER_BYTES,
    MAX_PREFETCH_DEPTH,
    prefetch_depth,
)
from repro.core.registry import create_protocol
from repro.dynamics import ScheduleSpec, build_schedule
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.telemetry.metrics import MetricsRegistry, use_metrics

from tests.batch.parity_harness import (
    assert_kernel_record_parity,
    assert_same_batch,
    kernel_parity_cells,
)

requires_numba = pytest.mark.skipif(
    not numba_available(),
    reason=(
        "numba is not importable here; install the repro[kernels] extra — "
        "the CI 'kernels' job runs these cases compiled"
    ),
)

SEEDS = tuple(range(1, 9))


def _engine(kernel=None, graph="cycle", n=16, schedule_spec=None):
    topology = cycle_graph(n) if graph == "cycle" else erdos_renyi_graph(n, rng=5)
    protocol = create_protocol("bfw", diameter=topology.diameter(), n=topology.n)
    schedule = (
        None
        if schedule_spec is None
        else build_schedule(schedule_spec, topology)
    )
    return BatchedEngine(topology, protocol, schedule=schedule, kernel=kernel)


@pytest.mark.parametrize("kernel", ["python", "xp:numpy"])
@pytest.mark.parametrize("graph", ["cycle", "erdos-renyi"])
@pytest.mark.parametrize(
    "run_kwargs",
    [
        {},
        {"stop_at_single_leader": False},
        {"record_leader_counts": True},
        {"max_rounds": 3},
        {"max_rounds": 0},
    ],
)
def test_engine_batch_parity_across_kernels(kernel, graph, run_kwargs):
    reference = _engine("numpy", graph=graph).run(list(SEEDS), **run_kwargs)
    batch = _engine(kernel, graph=graph).run(list(SEEDS), **run_kwargs)
    assert_same_batch(reference, batch)


@requires_numba
@pytest.mark.parametrize("graph", ["cycle", "erdos-renyi"])
@pytest.mark.parametrize(
    "run_kwargs",
    [{}, {"stop_at_single_leader": False}, {"record_leader_counts": True}],
)
def test_engine_batch_parity_numba(graph, run_kwargs):
    reference = _engine("numpy", graph=graph).run(list(SEEDS), **run_kwargs)
    batch = _engine("numba", graph=graph).run(list(SEEDS), **run_kwargs)
    assert_same_batch(reference, batch)


def test_planted_initial_states_parity():
    engine = _engine("python")
    planted = np.full(16, 3, dtype=np.int64)
    planted[0] = 0
    reference = _engine("numpy").run(list(SEEDS), initial_states=planted)
    batch = engine.run(list(SEEDS), initial_states=planted)
    assert_same_batch(reference, batch)
    assert engine.last_kernel["active"] == "python"


def test_kernel_reported_in_last_kernel():
    engine = _engine("python")
    engine.run([1, 2, 3])
    assert engine.last_kernel == {
        "requested": "python",
        "resolved": "python",
        "active": "python",
        "fallback": None,
        "compile_seconds": None,
        "parity": "bitwise",
    }


def test_observers_fall_back_to_interpreted_loop():
    reference = _engine("numpy").run(list(SEEDS))
    engine = _engine("python")
    tracker = BatchLeaderCountTracker()
    batch = engine.run(list(SEEDS), observers=[tracker])
    assert_same_batch(reference, batch)
    assert engine.last_kernel["active"] == "numpy"
    assert "observer" in engine.last_kernel["fallback"]


def test_schedule_falls_back_to_interpreted_loop():
    spec = ScheduleSpec(
        "edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7}
    )
    reference = _engine("numpy", schedule_spec=spec).run(
        list(SEEDS), max_rounds=500
    )
    engine = _engine("python", schedule_spec=spec)
    batch = engine.run(list(SEEDS), max_rounds=500)
    assert_same_batch(reference, batch)
    assert engine.last_kernel["active"] == "numpy"
    assert "schedule" in engine.last_kernel["fallback"]


def test_heartbeat_falls_back_to_interpreted_loop():
    from repro.telemetry.heartbeat import HeartbeatEmitter, use_heartbeat

    reference = _engine("numpy").run(list(SEEDS))
    engine = _engine("python")
    beats = []
    with use_heartbeat(HeartbeatEmitter(1, beats.append)):
        batch = engine.run(list(SEEDS))
    assert_same_batch(reference, batch)
    assert engine.last_kernel["active"] == "numpy"
    assert "heartbeat" in engine.last_kernel["fallback"]
    assert beats and all(beat.kernel == "numpy" for beat in beats)


def test_auto_resolves_without_numba_to_numpy():
    policy = resolve_kernel("auto")
    assert policy.requested == "auto"
    assert policy.resolved == ("numba" if numba_available() else "numpy")


def test_explicit_numba_without_numba_raises():
    if numba_available():
        pytest.skip("numba importable: the explicit spec resolves fine here")
    with pytest.raises(ConfigurationError, match="numba"):
        resolve_kernel("numba")


def test_validate_kernel_normalises_and_rejects():
    assert validate_kernel(None) is None
    assert validate_kernel("  NumPy ") == "numpy"
    assert validate_kernel("xp:numpy") == "xp:numpy"
    # Validation is availability-blind: cells stamped on a machine without
    # numba may execute on workers that have it.
    assert validate_kernel("numba") == "numba"
    with pytest.raises(ConfigurationError):
        validate_kernel("fortran")
    with pytest.raises(ConfigurationError):
        validate_kernel("xp:")


def test_xp_namespace_policy():
    policy = resolve_kernel("xp:numpy")
    assert policy.xp_namespace == "numpy"
    assert policy.parity == "bitwise"
    assert not policy.wants_fused
    torch_policy = KernelPolicy(
        requested="xp:torch", resolved="xp:torch", reason=None,
        parity="distributional",
    )
    assert torch_policy.parity == "distributional"


def test_unknown_xp_namespace_raises_at_construction():
    with pytest.raises(ConfigurationError, match="not importable"):
        _engine("xp:definitely_not_installed")


def test_xp_parity_gate_recorded():
    engine = _engine("xp:numpy")
    engine.run([1, 2, 3])
    assert engine.last_kernel["active"] == "xp:numpy"
    assert engine.last_kernel["parity"] == "bitwise"


def test_fused_kernel_is_plain_python_function():
    # The "python" kernel *is* the nopython kernel body, uncompiled — what
    # keeps the parity suite meaningful on machines without numba.
    from repro.batch import kernels

    assert fused_round_block is kernels._fused_round_block


# --------------------------------------------------------------------------- #
# Full matrix: registered protocols x schedules x shard sizes x kernels
# --------------------------------------------------------------------------- #


def test_kernel_parity_full_matrix():
    kernels = ["numpy", "python"]
    if numba_available():
        kernels.append("numba")
    assert_kernel_record_parity(kernels, cells=kernel_parity_cells())


@pytest.mark.skipif(
    numba_available(), reason="numba importable: covered by the matrix above"
)
def test_numba_matrix_skips_visibly():
    # A stand-in that *documents* the gap: without numba the matrix above
    # only covers numpy/python, and the CI kernels job owns the compiled run.
    assert "numba" not in ("numpy", "python")


# --------------------------------------------------------------------------- #
# RNG prefetch depth (single source of truth in streams)
# --------------------------------------------------------------------------- #


def test_prefetch_depth_formula():
    assert prefetch_depth(1, 1) == MAX_PREFETCH_DEPTH
    assert prefetch_depth(10, 1024) == min(
        MAX_PREFETCH_DEPTH, DEFAULT_RNG_BUFFER_BYTES // (8 * 10 * 1024)
    )
    # Never below one round, however large the batch.
    assert prefetch_depth(10_000, 100_000) == 1


def test_engine_uses_streams_prefetch_depth():
    engine = _engine("numpy")
    assert engine.RNG_BUFFER_BYTES == DEFAULT_RNG_BUFFER_BYTES


# --------------------------------------------------------------------------- #
# Dense/sparse adjacency crossover
# --------------------------------------------------------------------------- #


def test_crossover_heuristic_rule():
    # Historic regime: anything with a <=4 MiB dense matrix stays dense.
    assert dense_adjacency_preferred(64, nnz=128)
    assert dense_adjacency_preferred(1024, nnz=2048)
    # A million-node cycle: dense would need ~4 TB, CSR a few MB.
    assert not dense_adjacency_preferred(1_000_000, nnz=2_000_000)
    # Above the byte budget, density decides: a near-clique beats CSR.
    n = 5000
    assert not dense_adjacency_preferred(n, nnz=2 * n)
    assert dense_adjacency_preferred(n, nnz=n * (n - 1))


@pytest.mark.parametrize("family,n", [("cycle", 64), ("erdos-renyi", 64)])
def test_small_graphs_build_dense(family, n):
    engine = _engine("numpy", graph=family, n=n)
    stats = engine._cache_stats()
    assert stats["adjacency_dense_builds"] == 1
    assert stats["adjacency_csr_builds"] == 0


def test_large_sparse_graph_builds_csr_only():
    topology = cycle_graph(5000)
    protocol = create_protocol("bfw", diameter=topology.diameter(), n=5000)
    engine = BatchedEngine(topology, protocol)
    stats = engine._cache_stats()
    assert stats["adjacency_dense_builds"] == 0
    assert stats["adjacency_csr_builds"] == 1


def test_adjacency_representation_reported_as_gauge():
    registry = MetricsRegistry()
    engine = _engine("numpy", n=16)
    with use_metrics(registry):
        engine.run([1, 2])
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["engine.adjacency_dense"] == 1.0
    assert snapshot["gauges"]["engine.kernel_parity_bitwise"] == 1.0
    assert snapshot["counters"]["engine.kernel.numpy"] == 1


def test_kernel_counter_tracks_fused_runs():
    registry = MetricsRegistry()
    engine = _engine("python")
    with use_metrics(registry):
        engine.run([1, 2])
    assert registry.snapshot()["counters"]["engine.kernel.python"] == 1
