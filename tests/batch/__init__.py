"""Test package."""
