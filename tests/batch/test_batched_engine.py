"""Behavioural tests for the batched Monte-Carlo engine."""

import numpy as np
import pytest

from repro.batch import BatchedEngine, BatchResult, run_batch
from repro.beeping.adversary import planted_leaders_initial_states
from repro.core.bfw import BFWProtocol
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.generators import cycle_graph, path_graph


@pytest.fixture
def engine():
    return BatchedEngine(cycle_graph(20), BFWProtocol())


def test_all_replicas_converge_to_single_leaders(engine):
    result = engine.run(list(range(10)))
    assert result.num_replicas == 10
    assert result.converged.all()
    assert result.convergence_rate == 1.0
    assert (result.final_leader_count == 1).all()
    assert ((0 <= result.leader_node) & (result.leader_node < 20)).all()
    # the recorded leader id is the unique leader in the final states
    leaders = engine.compiled.is_leader[result.final_states]
    assert (leaders.sum(axis=1) == 1).all()
    np.testing.assert_array_equal(leaders.argmax(axis=1), result.leader_node)


def test_retired_replicas_stop_early(engine):
    result = engine.run(list(range(16)))
    rounds = result.rounds_executed
    # convergence rounds differ across seeds, so retirement must too
    assert rounds.min() < rounds.max()
    np.testing.assert_array_equal(result.convergence_round, rounds)


def test_zero_round_budget_executes_nothing(engine):
    result = engine.run([1, 2, 3], max_rounds=0)
    assert (result.rounds_executed == 0).all()
    assert not result.converged.any()
    assert (result.final_leader_count == 20).all()


def test_negative_budget_rejected(engine):
    with pytest.raises(ConfigurationError):
        engine.run([1], max_rounds=-1)


def test_shared_initial_states_broadcast():
    topology = path_graph(11)
    initial = planted_leaders_initial_states(topology, (0, topology.n - 1))
    engine = BatchedEngine(topology, BFWProtocol())
    result = engine.run(list(range(6)), initial_states=initial)
    assert result.converged.all()
    # both planted leaders fight, so convergence takes at least one round
    assert (result.convergence_round >= 1).all()


def test_per_replica_initial_states():
    topology = cycle_graph(12)
    engine = BatchedEngine(topology, BFWProtocol())
    single = engine.run([5], max_rounds=50, stop_at_single_leader=False)
    stacked = np.vstack([single.final_states[0]] * 3)
    resumed = engine.run([1, 2, 3], initial_states=stacked, max_rounds=0)
    np.testing.assert_array_equal(resumed.final_states, stacked)


def test_invalid_initial_state_shapes_and_values_rejected(engine):
    with pytest.raises(SimulationError):
        engine.run([1, 2], initial_states=np.zeros(7, dtype=int))
    with pytest.raises(SimulationError):
        engine.run([1, 2], initial_states=np.full(20, 99, dtype=int))


def test_trajectories_are_recorded_per_replica(engine):
    result = engine.run([4, 5], record_leader_counts=True)
    assert result.leader_counts is not None
    for replica in range(2):
        trajectory = result.leader_counts[replica]
        assert len(trajectory) == result.rounds_executed[replica] + 1
        assert trajectory[0] == 20
        assert trajectory[-1] == 1


def test_no_stop_runs_every_replica_to_budget(engine):
    result = engine.run([1, 2, 3], max_rounds=40, stop_at_single_leader=False)
    assert (result.rounds_executed == 40).all()
    assert result.leader_counts is not None
    assert all(len(t) == 41 for t in result.leader_counts)


def test_run_batch_wrapper_defaults_to_bfw():
    result = run_batch(cycle_graph(16), seeds=range(8))
    assert result.num_replicas == 8
    assert result.protocol_name == "bfw"
    assert result.converged.all()


def test_result_helpers_round_trip(engine):
    result = engine.run([7, 8, 9])
    singles = result.to_simulation_results()
    assert [s.seed for s in singles] == [7, 8, 9]
    assert all(s.converged for s in singles)
    payload = result.as_dicts()
    assert [row["replica"] for row in payload] == [0, 1, 2]
    assert all(row["final_leader_count"] == 1 for row in payload)
    effective = result.effective_rounds()
    np.testing.assert_array_equal(effective, result.convergence_round)
    assert result.total_replica_rounds == int(result.rounds_executed.sum())


def test_batch_result_shape_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        BatchResult(
            converged=np.zeros(2, dtype=bool),
            convergence_round=np.zeros(3, dtype=np.int64),
            rounds_executed=np.zeros(2, dtype=np.int64),
            final_leader_count=np.zeros(2, dtype=np.int64),
            leader_node=np.zeros(2, dtype=np.int64),
            seeds=(1, 2),
        )


def test_from_simulation_results_requires_runs():
    with pytest.raises(ConfigurationError):
        BatchResult.from_simulation_results([])
