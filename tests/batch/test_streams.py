"""Tests for per-replica random streams."""

import numpy as np
import pytest

from repro.batch.streams import ReplicaStreams, independent_streams
from repro.errors import ConfigurationError


def test_seed_values_record_ints_and_mask_generators():
    streams = ReplicaStreams([7, np.random.default_rng(1), None, 12])
    assert len(streams) == 4
    assert streams.seed_values == (7, None, None, 12)


def test_empty_seed_list_rejected():
    with pytest.raises(ConfigurationError):
        ReplicaStreams([])


def test_generator_seeds_used_verbatim():
    generator = np.random.default_rng(5)
    expected = np.random.default_rng(5).random(3)
    streams = ReplicaStreams([generator])
    np.testing.assert_array_equal(streams.generator(0).random(3), expected)


def test_fill_blocks_matches_successive_round_draws():
    streams = ReplicaStreams([9, 10])
    out = np.empty((4, 2, 5))
    streams.fill_blocks(np.array([0, 1]), out)
    for replica, seed in enumerate((9, 10)):
        reference = np.random.default_rng(seed)
        for round_index in range(4):
            np.testing.assert_array_equal(
                out[round_index, replica], reference.random(5)
            )


def test_fill_blocks_skips_inactive_replicas():
    streams = ReplicaStreams([3, 4, 5])
    out = np.zeros((2, 3, 6))
    streams.fill_blocks(np.array([0, 2]), out)
    # replica 1 was inactive: its rows are untouched and its stream must
    # not have advanced
    np.testing.assert_array_equal(out[:, 1, :], np.zeros((2, 6)))
    np.testing.assert_array_equal(
        streams.generator(1).random(6), np.random.default_rng(4).random(6)
    )


def test_independent_streams_are_distinct_and_reproducible():
    first = independent_streams(123, 3)
    second = independent_streams(123, 3)
    draws_first = [first.generator(i).random(4) for i in range(3)]
    draws_second = [second.generator(i).random(4) for i in range(3)]
    for a, b in zip(draws_first, draws_second):
        np.testing.assert_array_equal(a, b)
    assert not np.allclose(draws_first[0], draws_first[1])
    with pytest.raises(ConfigurationError):
        independent_streams(1, 0)
