"""Reusable seed-matched parity assertions for the batch engines.

The invariant every batched run must satisfy is: *replica ``r`` of a batch
seeded with ``seeds[r]`` is identical, field for field, to the standalone
sequential run seeded the same way*.  This module owns that assertion so
that every parity test — BFW variants, ablations, memory baselines, CLI
round-trips — states it the same way:

* constant-state :class:`~repro.core.protocol.BeepingProtocol` objects are
  checked :class:`~repro.batch.engine.BatchedEngine` against
  :class:`~repro.beeping.engine.VectorizedEngine` (including final state
  vectors and elected-node identities);
* :class:`~repro.core.protocol.MemoryProtocol` baselines are checked
  :class:`~repro.batch.memory.BatchedMemoryEngine` against
  :class:`~repro.beeping.simulator.MemorySimulator`.

:func:`assert_replica_parity` dispatches on the protocol type, so callers
can parametrise over any mix of protocols, graph families, replica counts
and seeds without caring which engine pair is being exercised.

The same invariant lifted one level up is owned by
:func:`assert_backend_record_parity`: every :mod:`repro.exec` execution
backend — the sequential loop, the batched engines, a process pool — must
produce byte-identical :class:`~repro.experiments.results.TrialRecord`
tuples for the same cells.  :func:`backend_parity_cells` builds the default
cell set (constant-state protocols, memory baselines and a randomised graph
family) that the backend parity tests sweep.
"""

import numpy as np

from repro.batch import BatchedEngine, BatchedMemoryEngine, BatchTraceRecorder
from repro.batch.observers import ObserverSpec
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import MemorySimulator
from repro.core.protocol import BeepingProtocol, MemoryProtocol
from repro.dynamics import ScheduleSpec, build_schedule
from repro.exec import ExecutionCell, resolve_backend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.runner import sweep_cells
from repro.experiments.seeds import trial_seeds
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_geometric_graph,
)

#: Default per-replica seeds (also the default replica count R).
DEFAULT_SEEDS = tuple(range(10))

#: Default graph set for backend-level parity: the worst-case-diameter
#: families plus a randomised family, mirroring :func:`parity_topologies`.
BACKEND_PARITY_GRAPHS = (
    GraphSpec(family="cycle", n=16),
    GraphSpec(family="path", n=13),
    GraphSpec(family="erdos-renyi", n=18, seed=5),
)

#: Default dynamic scenarios for topology-schedule parity: the identity
#: schedule (must reproduce the static engines bit for bit), seeded random
#: churn at two rates, a periodic bridge cut, and a densification morph.
DYNAMIC_PARITY_SCHEDULES = (
    ScheduleSpec("static"),
    ScheduleSpec("edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7}),
    ScheduleSpec(
        "edge-churn",
        {
            "add_per_round": 2,
            "remove_per_round": 2,
            "seed": 11,
            "preserve_connectivity": False,
        },
    ),
    ScheduleSpec("cut", {"period": 6, "down_rounds": 3}),
    ScheduleSpec("interpolate", {"target_family": "clique", "rounds": 24}),
)


def parity_topologies():
    """The three graph families every parity sweep covers.

    Cycles and paths are the worst-case-diameter families of the scaling
    experiments; the Erdős–Rényi graph exercises irregular degrees (and,
    for the clique-only knockout baseline, the non-convergent outcome).
    """
    return (
        ("cycle", cycle_graph(16)),
        ("path", path_graph(13)),
        ("erdos-renyi", erdos_renyi_graph(18, rng=5)),
    )


def assert_same_simulation_fields(replica, single):
    """The :class:`SimulationResult` fields both engine pairs must agree on."""
    assert replica.converged == single.converged
    assert replica.convergence_round == single.convergence_round
    assert replica.rounds_executed == single.rounds_executed
    assert replica.final_leader_count == single.final_leader_count
    assert replica.leader_counts == single.leader_counts


def assert_replica_parity(topology, protocol, seeds=DEFAULT_SEEDS, **run_kwargs):
    """Assert batched == sequential, replica for replica, and return the batch.

    ``run_kwargs`` are forwarded to both engines (``max_rounds``,
    ``stop_at_single_leader``, ``initial_states`` for constant-state
    protocols, ``stability_window`` for memory protocols), so budget
    exhaustion and no-early-stop paths can be exercised through the same
    entry point.
    """
    if isinstance(protocol, BeepingProtocol):
        return _assert_constant_state_parity(topology, protocol, seeds, **run_kwargs)
    if isinstance(protocol, MemoryProtocol):
        return _assert_memory_parity(topology, protocol, seeds, **run_kwargs)
    raise TypeError(
        f"parity harness supports BeepingProtocol and MemoryProtocol; got "
        f"{type(protocol).__name__}"
    )


def _assert_constant_state_parity(topology, protocol, seeds, **run_kwargs):
    batch = BatchedEngine(topology, protocol).run(list(seeds), **run_kwargs)
    for index, seed in enumerate(seeds):
        engine = VectorizedEngine(topology, protocol)
        single = engine.run(rng=seed, **run_kwargs)
        assert_same_simulation_fields(batch.replica(index), single)
        np.testing.assert_array_equal(batch.final_states[index], engine.last_states)
        single_leaders = np.flatnonzero(
            engine.compiled.is_leader[engine.last_states]
        )
        if single.final_leader_count == 1:
            assert batch.leader_node[index] == single_leaders[0]
        else:
            assert batch.leader_node[index] == -1
    return batch


def assert_schedule_replica_parity(
    topology, protocol, spec, seeds=DEFAULT_SEEDS, max_rounds=4000, **run_kwargs
):
    """Assert batched == sequential under a topology schedule, replica for replica.

    ``spec`` is a :class:`~repro.dynamics.ScheduleSpec` (or a prebuilt
    schedule); each engine gets its *own* schedule instance built from the
    spec, so the assertion also proves the schedule itself is deterministic
    across instances — the property that lets backends rebuild schedules
    inside worker processes without breaking parity.
    """
    batch = BatchedEngine(
        topology, protocol, schedule=build_schedule(spec, topology)
    ).run(list(seeds), max_rounds=max_rounds, **run_kwargs)
    engine = VectorizedEngine(
        topology, protocol, schedule=build_schedule(spec, topology)
    )
    for index, seed in enumerate(seeds):
        single = engine.run(rng=seed, max_rounds=max_rounds, **run_kwargs)
        assert_same_simulation_fields(batch.replica(index), single)
        np.testing.assert_array_equal(batch.final_states[index], engine.last_states)
    return batch


def assert_same_trace(replica_trace, single_trace):
    """Byte-identical :class:`ExecutionTrace` equality, field for field."""
    assert replica_trace.states.dtype == single_trace.states.dtype
    np.testing.assert_array_equal(replica_trace.states, single_trace.states)
    assert replica_trace.beeping_values == single_trace.beeping_values
    assert replica_trace.leader_values == single_trace.leader_values
    assert replica_trace.protocol_name == single_trace.protocol_name
    assert replica_trace.topology_name == single_trace.topology_name
    assert replica_trace.seed == single_trace.seed


def assert_trace_parity(
    topology, protocol, seeds=DEFAULT_SEEDS, spec=None, max_rounds=None, **run_kwargs
):
    """Assert ``BatchTrace.replica(r)`` == the sequential recorder's trace.

    One batched run with a :class:`BatchTraceRecorder` attached against one
    sequentially recorded trace per seed (``record_trace=True`` on the
    single-run engine — the refactored observation layer's reference path).
    ``spec`` optionally runs both engines under a topology schedule; each
    engine gets its own schedule instance built from the spec.  Returns the
    batch trace.
    """
    recorder = BatchTraceRecorder()
    schedule = None if spec is None else build_schedule(spec, topology)
    BatchedEngine(topology, protocol, schedule=schedule).run(
        list(seeds), max_rounds=max_rounds, observers=[recorder], **run_kwargs
    )
    batch_trace = recorder.trace()
    assert batch_trace.num_replicas == len(seeds)
    engine = VectorizedEngine(
        topology,
        protocol,
        schedule=None if spec is None else build_schedule(spec, topology),
    )
    for index, seed in enumerate(seeds):
        single = engine.run(
            rng=seed, max_rounds=max_rounds, record_trace=True, **run_kwargs
        )
        assert single.trace is not None
        assert_same_trace(batch_trace.replica(index), single.trace)
    return batch_trace


#: Observer specs every observed-cell parity sweep attaches.
OBSERVED_PARITY_SPECS = (
    ObserverSpec("trace"),
    ObserverSpec("leader-extinction"),
)


def observed_parity_cells(
    protocols=("bfw",),
    graphs=BACKEND_PARITY_GRAPHS,
    schedules=(None, ScheduleSpec("edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7})),
    specs=OBSERVED_PARITY_SPECS,
    num_seeds=3,
    master_seed=41,
    max_rounds=4000,
):
    """Observed cells every backend must execute with identical observations."""
    cells = []
    for protocol in protocols:
        for graph in graphs:
            for schedule in schedules:
                label = "static" if schedule is None else schedule.label
                cells.append(
                    ExecutionCell(
                        protocol=ProtocolSpecConfig(name=protocol),
                        graph=graph,
                        seeds=trial_seeds(
                            master_seed,
                            f"observed-parity/{protocol}/{graph.label}/{label}",
                            num_seeds,
                        ),
                        max_rounds=max_rounds,
                        schedule=schedule,
                        observers=tuple(specs),
                    )
                )
    return tuple(cells)


def assert_backend_observation_parity(backends, cells=None):
    """Assert every backend yields identical records *and* observations."""
    if cells is None:
        cells = observed_parity_cells()
    cells = tuple(cells)
    resolved = [resolve_backend(backend) for backend in backends]
    reference = resolved[0].run_cell_outcomes(cells)
    for outcome in reference:
        assert outcome.observations is not None
        assert len(outcome.observations) == len(outcome.cell.observers)
    for backend in resolved[1:]:
        outcomes = backend.run_cell_outcomes(cells)
        for ref, out in zip(reference, outcomes):
            assert out.to_records() == ref.to_records(), (
                f"{backend.name} records differ from {resolved[0].name} on "
                f"{ref.cell.label}"
            )
            assert out.observations == ref.observations, (
                f"{backend.name} observations differ from {resolved[0].name} "
                f"on {ref.cell.label}"
            )
    return reference


def dynamic_parity_cells(
    protocols=("bfw", "bfw-nonuniform"),
    graphs=BACKEND_PARITY_GRAPHS,
    schedules=DYNAMIC_PARITY_SCHEDULES,
    num_seeds=3,
    master_seed=37,
    max_rounds=4000,
):
    """Dynamic-topology cells every backend must execute identically.

    Crosses the backend-parity graphs with the default schedule set (on
    bridgeless families the cut schedule falls back to severing the first
    edge).  ``max_rounds`` is capped because churned graphs are allowed to
    stall convergence — exercising the budget-exhaustion path is part of
    the point.
    """
    cells = []
    for protocol in protocols:
        for graph in graphs:
            for spec in schedules:
                cells.append(
                    ExecutionCell(
                        protocol=ProtocolSpecConfig(name=protocol),
                        graph=graph,
                        seeds=trial_seeds(
                            master_seed,
                            f"dynamic-parity/{protocol}/{graph.label}/{spec.label}",
                            num_seeds,
                        ),
                        max_rounds=max_rounds,
                        schedule=spec,
                    )
                )
    return tuple(cells)


def backend_parity_cells(
    protocols=("bfw", "bfw-nonuniform", "emek-keren"),
    graphs=BACKEND_PARITY_GRAPHS,
    num_seeds=4,
    master_seed=17,
):
    """The default cell set every backend must execute identically.

    Spans a constant-state protocol, the D-aware variant and a memory
    baseline over cycles, paths and a randomised (Erdős–Rényi) family.
    """
    sweep = SweepConfig(
        name="backend-parity",
        protocols=tuple(ProtocolSpecConfig(name=name) for name in protocols),
        graphs=tuple(graphs),
        num_seeds=num_seeds,
        master_seed=master_seed,
    )
    return sweep_cells(sweep)


def assert_backend_record_parity(backends, cells=None):
    """Assert every backend yields byte-identical records, and return them.

    ``backends`` may mix backend instances and spec strings; the first
    entry produces the reference record tuple (field-for-field dataclass
    equality — the records are frozen dataclasses of plain scalars, so
    equality is byte-level).
    """
    if cells is None:
        cells = backend_parity_cells()
    cells = tuple(cells)
    resolved = [resolve_backend(backend) for backend in backends]
    reference = resolved[0].run_cells(cells)
    for backend in resolved[1:]:
        assert backend.run_cells(cells) == reference, (
            f"{backend.name} records differ from {resolved[0].name}"
        )
    return reference


def kernel_parity_cells(
    protocols=None,
    graphs=(
        GraphSpec(family="cycle", n=16),
        GraphSpec(family="erdos-renyi", n=18, seed=5),
    ),
    schedules=(
        None,
        ScheduleSpec(
            "edge-churn", {"add_per_round": 1, "remove_per_round": 1, "seed": 7}
        ),
    ),
    num_seeds=3,
    master_seed=53,
    max_rounds=4000,
):
    """Cells every round kernel must execute byte-identically.

    Crosses **every registered constant-state protocol** (the engines the
    fused kernels replace) with a static and a dynamic schedule; the
    kernel parity tests run these cells with ``kernel="numba"`` /
    ``"numpy"`` / ``"python"`` stamped via the backend and against the
    :class:`~repro.exec.SequentialBackend` reference, at shard sizes 1 and
    ``"auto"``.  Cells carry no kernel of their own, so the same tuple
    serves every kernel variant.
    """
    from repro.core.registry import available_protocols

    if protocols is None:
        protocols = available_protocols()
    cells = []
    for protocol in protocols:
        for graph in graphs:
            for spec in schedules:
                label = "static" if spec is None else spec.label
                cells.append(
                    ExecutionCell(
                        protocol=ProtocolSpecConfig(name=protocol),
                        graph=graph,
                        seeds=trial_seeds(
                            master_seed,
                            f"kernel-parity/{protocol}/{graph.label}/{label}",
                            num_seeds,
                        ),
                        max_rounds=max_rounds,
                        schedule=spec,
                    )
                )
    return tuple(cells)


def assert_kernel_record_parity(kernels, cells=None, shard_sizes=(None, 1, "auto")):
    """Assert every kernel produces the sequential loop's records exactly.

    The reference is the :class:`~repro.exec.SequentialBackend` (no kernel
    seam at all — the per-trial loop).  Each kernel in ``kernels`` then
    runs the same cells on a fresh ``"batched"`` backend with the kernel
    stamped as the backend default, at every entry of ``shard_sizes``.
    """
    if cells is None:
        cells = kernel_parity_cells()
    cells = tuple(cells)
    reference = resolve_backend("sequential").run_cells(cells)
    for kernel in kernels:
        for shard_size in shard_sizes:
            backend = resolve_backend(
                "batched", shard_size=shard_size, kernel=kernel
            )
            assert backend.run_cells(cells) == reference, (
                f"kernel={kernel!r} shard_size={shard_size!r} records "
                f"differ from the sequential loop"
            )
    return reference


def assert_same_batch(reference, batch):
    """Byte-identical :class:`BatchResult` equality, array for array."""
    np.testing.assert_array_equal(batch.converged, reference.converged)
    np.testing.assert_array_equal(
        batch.convergence_round, reference.convergence_round
    )
    np.testing.assert_array_equal(
        batch.rounds_executed, reference.rounds_executed
    )
    np.testing.assert_array_equal(
        batch.final_leader_count, reference.final_leader_count
    )
    np.testing.assert_array_equal(batch.leader_node, reference.leader_node)
    assert batch.seeds == reference.seeds
    assert batch.leader_counts == reference.leader_counts
    assert (batch.final_states is None) == (reference.final_states is None)
    if reference.final_states is not None:
        np.testing.assert_array_equal(
            batch.final_states, reference.final_states
        )
    assert batch.protocol_name == reference.protocol_name
    assert batch.topology_name == reference.topology_name


def assert_same_observation(reference, observation):
    """Structural equality that tolerates numpy arrays at any nesting level.

    Observer results range from rich objects with value-based ``__eq__``
    (:class:`BatchTrace`, spilled traces) to bare ``(R, ...)`` arrays
    (beep-count matrices, streaming reducers), whose ``==`` is elementwise.
    """
    if isinstance(reference, np.ndarray) or isinstance(observation, np.ndarray):
        np.testing.assert_array_equal(observation, reference)
        return
    if isinstance(reference, (tuple, list)):
        assert isinstance(observation, (tuple, list))
        assert len(observation) == len(reference)
        for ref_item, out_item in zip(reference, observation):
            assert_same_observation(ref_item, out_item)
        return
    if isinstance(reference, dict):
        assert set(observation) == set(reference)
        for key in reference:
            assert_same_observation(reference[key], observation[key])
        return
    assert observation == reference


def assert_sharded_parity(backend, cells=None, shard_sizes=(1, 3, "auto")):
    """Assert seed-list sharding never changes a backend's output.

    Runs ``cells`` once unsharded on ``backend`` (a spec string, so each
    variant resolves a fresh instance) as the reference, then once per entry
    of ``shard_sizes`` with ``shard_size`` set, asserting byte-identical
    records, observations and — where both runs produced one — batch arrays.
    Returns the reference outcomes.
    """
    if cells is None:
        cells = backend_parity_cells()
    cells = tuple(cells)
    reference = resolve_backend(backend).run_cell_outcomes(cells)
    for size in shard_sizes:
        sharded = resolve_backend(backend, shard_size=size).run_cell_outcomes(
            cells
        )
        for ref, out in zip(reference, sharded):
            assert out.to_records() == ref.to_records(), (
                f"shard_size={size!r} records differ on {ref.cell.label} "
                f"({backend})"
            )
            assert (out.observations is None) == (ref.observations is None), (
                f"shard_size={size!r} observations differ on "
                f"{ref.cell.label} ({backend})"
            )
            if ref.observations is not None:
                assert_same_observation(ref.observations, out.observations)
            if ref.batch is not None and out.batch is not None:
                assert_same_batch(ref.batch, out.batch)
    return reference


def _assert_memory_parity(topology, protocol, seeds, **run_kwargs):
    batch = BatchedMemoryEngine(topology, protocol).run(list(seeds), **run_kwargs)
    for index, seed in enumerate(seeds):
        single = MemorySimulator(topology, protocol).run(rng=seed, **run_kwargs)
        assert_same_simulation_fields(batch.replica(index), single)
        # The sequential result does not record the elected node, but the
        # batch's identity must at least be consistent with the count.
        if single.final_leader_count == 1:
            assert 0 <= batch.leader_node[index] < topology.n
        else:
            assert batch.leader_node[index] == -1
    return batch
