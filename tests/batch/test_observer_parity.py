"""Trace and stopper parity: the batched observation layer vs single runs.

The acceptance contract of the observation refactor: ``BatchTrace.replica(r)``
is byte-identical to the sequential recorder's :class:`ExecutionTrace` for
matched seeds — for every registered protocol, on static and dynamic
schedules — and observer-driven retirement retires replicas in exactly the
round the built-in single-leader stop (and the sequential stopper) does.
"""

import numpy as np
import pytest

from repro.batch import (
    BatchedEngine,
    BatchSingleLeaderStopper,
    BatchTraceRecorder,
)
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import Simulator
from repro.core.bfw import BFWProtocol
from repro.core.registry import available_protocols, create_protocol
from repro.dynamics import ScheduleSpec
from repro.graphs.generators import cycle_graph, path_graph

from tests.batch.parity_harness import (
    DYNAMIC_PARITY_SCHEDULES,
    assert_trace_parity,
    parity_topologies,
)

SEEDS = tuple(range(6))


def _protocol_for(name, topology):
    return create_protocol(
        name, diameter=max(1, topology.diameter()), n=topology.n
    )


@pytest.mark.parametrize("name", available_protocols())
@pytest.mark.parametrize(
    "family", [family for family, _ in parity_topologies()]
)
def test_batch_trace_matches_sequential_recorder_for_registered_protocols(
    name, family
):
    topology = dict(parity_topologies())[family]
    protocol = _protocol_for(name, topology)
    assert_trace_parity(topology, protocol, seeds=SEEDS, max_rounds=4000)


@pytest.mark.parametrize(
    "spec", DYNAMIC_PARITY_SCHEDULES, ids=lambda spec: spec.label
)
def test_batch_trace_matches_sequential_recorder_under_schedules(spec):
    topology = cycle_graph(16)
    assert_trace_parity(
        topology, BFWProtocol(), seeds=SEEDS, spec=spec, max_rounds=2000
    )


def test_batch_trace_matches_without_early_stopping():
    # Budget-exhaustion path: every replica records the full horizon.
    trace = assert_trace_parity(
        cycle_graph(12),
        BFWProtocol(),
        seeds=SEEDS,
        max_rounds=60,
        stop_at_single_leader=False,
    )
    assert trace.num_rounds == 60
    assert (trace.rounds_executed == 60).all()


def test_batch_trace_under_disconnecting_churn_keeps_budget_replicas():
    # The schedule the ROADMAP finding came from: non-connectivity-preserving
    # churn at rate 2 can strand leaderless (absorbing) replicas that then
    # burn the whole budget — their trace rows must still match the
    # sequential recorder's round for round.
    spec = ScheduleSpec(
        "edge-churn",
        {
            "add_per_round": 2,
            "remove_per_round": 2,
            "seed": 11,
            "preserve_connectivity": False,
        },
    )
    assert_trace_parity(
        cycle_graph(16), BFWProtocol(), seeds=SEEDS, spec=spec, max_rounds=800
    )


# --------------------------------------------------------------------------- #
# Observer-driven early stop (the batched SingleLeaderStopper)
# --------------------------------------------------------------------------- #


def test_batch_stopper_matches_builtin_early_stop():
    topology = cycle_graph(16)
    protocol = BFWProtocol()
    stopped = BatchedEngine(topology, protocol).run(
        list(SEEDS),
        stop_at_single_leader=False,
        observers=[BatchSingleLeaderStopper()],
        max_rounds=5000,
    )
    builtin = BatchedEngine(topology, protocol).run(
        list(SEEDS), stop_at_single_leader=True, max_rounds=5000
    )
    np.testing.assert_array_equal(stopped.rounds_executed, builtin.rounds_executed)
    np.testing.assert_array_equal(
        stopped.convergence_round, builtin.convergence_round
    )
    np.testing.assert_array_equal(stopped.final_states, builtin.final_states)
    np.testing.assert_array_equal(stopped.leader_node, builtin.leader_node)
    assert stopped.leader_counts == builtin.leader_counts


def test_batch_stopper_matches_sequential_stopper_round_counts():
    # Round-count parity with the sequential stopper on both sequential
    # drivers: the vectorised engine (same observer, R = 1) and the
    # reference Simulator (the classic SingleLeaderStopper adapter).
    topology = path_graph(13)
    protocol = BFWProtocol()
    batch = BatchedEngine(topology, protocol).run(
        list(SEEDS),
        stop_at_single_leader=False,
        observers=[BatchSingleLeaderStopper()],
        max_rounds=5000,
    )
    for index, seed in enumerate(SEEDS):
        vectorised = VectorizedEngine(topology, protocol).run(
            rng=seed,
            stop_at_single_leader=False,
            observers=[BatchSingleLeaderStopper()],
            max_rounds=5000,
        )
        assert vectorised.rounds_executed == batch.rounds_executed[index]
        assert vectorised.final_leader_count == batch.final_leader_count[index]
    # The reference Simulator consumes randomness per node (not per round),
    # so its trajectories are not stream-comparable with the engines; the
    # stopper parity statement there is: the explicit adapter stops in the
    # same round as the built-in early stop on the same driver.
    from repro.beeping.observers import SingleLeaderStopper

    builtin_reference = Simulator(topology, protocol).run(
        rng=SEEDS[0], stop_at_single_leader=True, max_rounds=5000
    )
    observed_reference = Simulator(topology, protocol).run(
        rng=SEEDS[0],
        stop_at_single_leader=False,
        observers=[SingleLeaderStopper()],
        max_rounds=5000,
    )
    assert (
        observed_reference.rounds_executed == builtin_reference.rounds_executed
    )
    assert observed_reference.leader_counts == builtin_reference.leader_counts


def test_batch_stopper_patience_delays_retirement():
    topology = cycle_graph(12)
    protocol = BFWProtocol()
    patient = BatchedEngine(topology, protocol).run(
        list(SEEDS),
        stop_at_single_leader=False,
        observers=[BatchSingleLeaderStopper(patience=3)],
        max_rounds=5000,
    )
    exact = BatchedEngine(topology, protocol).run(
        list(SEEDS), stop_at_single_leader=True, max_rounds=5000
    )
    # BFW's leader count is non-increasing, so patience extends every
    # replica by exactly its window.
    np.testing.assert_array_equal(
        patient.rounds_executed, exact.rounds_executed + 3
    )
    np.testing.assert_array_equal(
        patient.convergence_round, exact.convergence_round
    )
