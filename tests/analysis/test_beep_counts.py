"""Tests for cumulative beep-count utilities."""

import numpy as np

from repro.analysis.beep_counts import (
    beep_count_matrix,
    beep_count_spread,
    beep_counts_at,
    leader_beep_counts,
    max_beep_count_nodes,
    pairwise_beep_difference_bounds,
)


def test_beep_count_matrix_is_cumulative(converged_path_trace):
    matrix = beep_count_matrix(converged_path_trace)
    assert matrix.shape == (
        converged_path_trace.num_rounds + 1,
        converged_path_trace.n,
    )
    # Rows are non-decreasing.
    assert (np.diff(matrix, axis=0) >= 0).all()
    # The last row equals the trace's own counting.
    assert (matrix[-1] == converged_path_trace.beep_counts()).all()


def test_beep_counts_at_matches_matrix(converged_path_trace):
    matrix = beep_count_matrix(converged_path_trace)
    mid = converged_path_trace.num_rounds // 2
    assert (beep_counts_at(converged_path_trace, mid) == matrix[mid]).all()


def test_max_beep_count_nodes_nonempty(converged_path_trace):
    nodes = max_beep_count_nodes(converged_path_trace)
    assert len(nodes) >= 1
    counts = converged_path_trace.beep_counts()
    for node in nodes:
        assert counts[node] == counts.max()


def test_spread_bounded_by_diameter(converged_path_trace, small_path):
    # Lemma 11 implies the global spread is at most the diameter.
    assert beep_count_spread(converged_path_trace) <= small_path.diameter()


def test_pairwise_bounds_respect_lemma11(converged_path_trace, small_path):
    bounds = pairwise_beep_difference_bounds(converged_path_trace, small_path)
    assert len(bounds) == small_path.n * (small_path.n - 1) // 2
    for (u, v), (difference, distance) in bounds.items():
        assert difference <= distance


def test_leader_beep_counts_contains_surviving_leader(converged_path_trace):
    final = leader_beep_counts(converged_path_trace)
    assert len(final) == 1
    (leader, count), = final.items()
    # The survivor has the (weakly) largest beep count (Lemma 9 proof).
    assert count == converged_path_trace.beep_counts().max()


def test_beep_count_matrix_batch_matches_per_replica(cycle_batch_trace):
    from repro.analysis.beep_counts import beep_count_matrix_batch

    matrix = beep_count_matrix_batch(cycle_batch_trace)
    assert matrix.shape == (
        cycle_batch_trace.num_rounds + 1,
        cycle_batch_trace.num_replicas,
        cycle_batch_trace.n,
    )
    for replica in range(cycle_batch_trace.num_replicas):
        last = int(cycle_batch_trace.rounds_executed[replica])
        np.testing.assert_array_equal(
            matrix[: last + 1, replica],
            beep_count_matrix(cycle_batch_trace.replica(replica)),
        )
