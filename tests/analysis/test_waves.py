"""Tests for beep-wave extraction."""

import numpy as np
import pytest

from repro.analysis.waves import (
    boundary_positions,
    count_waves_on_path,
    first_beep_round,
    path_meeting_points,
    wave_arrival_times,
    wave_fronts,
)
from repro.beeping.adversary import planted_leaders_initial_states
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.errors import TraceError
from repro.graphs.generators import cycle_graph, path_graph


def _single_leader_trace(n=15, leader=0, seed=3):
    topology = path_graph(n)
    initial = planted_leaders_initial_states(topology, (leader,))
    engine = VectorizedEngine(topology, BFWProtocol())
    result = engine.run(
        rng=seed,
        record_trace=True,
        max_rounds=500,
        initial_states=initial,
        stop_at_single_leader=False,
    )
    return topology, result.trace


def test_wave_fronts_cover_every_round(converged_path_trace):
    fronts = wave_fronts(converged_path_trace)
    assert len(fronts) == converged_path_trace.num_rounds + 1
    assert fronts[0].size == 0  # nobody beeps in round 0 (Eq. (2))


def test_first_beep_round_single_leader_wave():
    topology, trace = _single_leader_trace()
    firsts = first_beep_round(trace)
    # The planted leader beeps first; each node's first beep is exactly one
    # round per hop later (a clean wave with no interference).
    assert firsts[0] >= 1
    distances = topology.distances_from(0).astype(int)
    expected = firsts[0] + distances
    assert (firsts == expected).all()


def test_wave_arrival_times_equal_distance():
    topology, trace = _single_leader_trace()
    arrivals = wave_arrival_times(trace, topology, origin=0)
    distances = topology.distances_from(0)
    assert np.allclose(arrivals, distances)


def test_wave_arrival_times_requires_beeping_origin():
    # Truncate the run to a couple of rounds so the wave has not yet reached
    # the far end of the path; that node therefore never beeps in the trace.
    topology = path_graph(15)
    initial = planted_leaders_initial_states(topology, (0,))
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=3,
        record_trace=True,
        max_rounds=3,
        initial_states=initial,
        stop_at_single_leader=False,
    )
    with pytest.raises(TraceError):
        wave_arrival_times(result.trace, topology, origin=topology.n - 1)


def test_path_meeting_points_requires_path(converged_cycle_trace, small_cycle):
    with pytest.raises(TraceError):
        path_meeting_points(converged_cycle_trace, small_cycle)


def test_boundary_positions_stay_inside_the_path():
    topology = path_graph(21)
    initial = planted_leaders_initial_states(topology, (0, 20))
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=9, record_trace=True, max_rounds=100_000, initial_states=initial
    )
    positions = boundary_positions(result.trace, topology, 0, 20)
    assert len(positions) == result.trace.num_rounds + 1
    values = [position for _, position in positions]
    assert min(values) >= -0.5
    assert max(values) <= 20.5


def test_count_waves_on_path_single_leader():
    topology, trace = _single_leader_trace()
    counts = count_waves_on_path(trace, topology)
    # Each wave in flight occupies a beeping node trailed by a frozen one, so
    # disjoint waves are at least two nodes apart: never more than ~n/3 waves.
    assert counts.max() <= (topology.n + 2) // 3
    assert counts.min() >= 0


# --------------------------------------------------------------------------- #
# Batch entry points
# --------------------------------------------------------------------------- #


def test_first_beep_round_batch_matches_per_replica(cycle_batch_trace):
    from repro.analysis.waves import first_beep_round_batch

    firsts = first_beep_round_batch(cycle_batch_trace)
    assert firsts.shape == (cycle_batch_trace.num_replicas, cycle_batch_trace.n)
    for replica in range(cycle_batch_trace.num_replicas):
        np.testing.assert_array_equal(
            firsts[replica], first_beep_round(cycle_batch_trace.replica(replica))
        )


def test_wave_fronts_batch_matches_per_replica(cycle_batch_trace):
    from repro.analysis.waves import wave_fronts_batch

    fronts = wave_fronts_batch(cycle_batch_trace)
    assert len(fronts) == cycle_batch_trace.num_replicas
    for replica in range(cycle_batch_trace.num_replicas):
        assert fronts[replica] == wave_fronts(cycle_batch_trace.replica(replica))
