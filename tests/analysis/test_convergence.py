"""Tests for convergence detection and summaries."""

import pytest

from repro.analysis.convergence import (
    convergence_round_from_counts,
    elimination_times,
    half_life_round,
    require_convergence,
    summarize_result,
    summarize_trace,
)
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.errors import ConvergenceError
from repro.graphs.generators import cycle_graph, path_graph


def test_summarize_trace(converged_path_trace):
    summary = summarize_trace(converged_path_trace)
    assert summary.converged
    assert summary.final_leader_count == 1
    assert summary.initial_leader_count == converged_path_trace.n
    assert summary.winner is not None
    assert 0 <= summary.winner < converged_path_trace.n
    assert summary.convergence_round == converged_path_trace.convergence_round()


def test_summarize_result_without_trace():
    result = VectorizedEngine(cycle_graph(10), BFWProtocol()).run(rng=1)
    summary = summarize_result(result)
    assert summary.converged
    assert summary.winner is None
    assert summary.convergence_round == result.convergence_round


def test_convergence_round_from_counts():
    assert convergence_round_from_counts([5, 3, 2, 1, 1, 1]) == 3
    assert convergence_round_from_counts([1, 1, 1]) == 0
    assert convergence_round_from_counts([3, 2, 2]) is None
    assert convergence_round_from_counts([3, 1, 2, 1]) == 3
    assert convergence_round_from_counts([]) is None


def test_require_convergence_passes_and_fails():
    result = VectorizedEngine(path_graph(8), BFWProtocol()).run(rng=2)
    assert require_convergence(result) == result.convergence_round

    truncated = VectorizedEngine(path_graph(30), BFWProtocol()).run(
        rng=2, max_rounds=3
    )
    with pytest.raises(ConvergenceError):
        require_convergence(truncated)


def test_elimination_times_cover_all_but_one_node(converged_path_trace):
    events = elimination_times(converged_path_trace)
    eliminated_nodes = {node for node, _ in events}
    assert len(eliminated_nodes) == converged_path_trace.n - 1
    rounds = [round_index for _, round_index in events]
    assert max(rounds) <= converged_path_trace.num_rounds


def test_half_life_round_before_convergence(converged_path_trace):
    half_life = half_life_round(converged_path_trace)
    assert half_life is not None
    assert half_life <= converged_path_trace.convergence_round()


# --------------------------------------------------------------------------- #
# Batch entry points
# --------------------------------------------------------------------------- #


def test_summarize_batch_matches_per_replica(cycle_batch_trace):
    from repro.analysis.convergence import summarize_batch

    summaries = summarize_batch(cycle_batch_trace)
    assert len(summaries) == cycle_batch_trace.num_replicas
    for replica, summary in enumerate(summaries):
        assert summary == summarize_trace(cycle_batch_trace.replica(replica))
        assert summary.converged
        assert summary.winner is not None


def test_summarize_batch_without_early_stop(small_cycle, bfw):
    from repro.analysis.convergence import summarize_batch
    from repro.batch import BatchedEngine, BatchTraceRecorder

    recorder = BatchTraceRecorder()
    BatchedEngine(small_cycle, bfw).run(
        list(range(4)),
        max_rounds=40,
        stop_at_single_leader=False,
        observers=[recorder],
    )
    trace = recorder.trace()
    for replica, summary in enumerate(summarize_batch(trace)):
        assert summary == summarize_trace(trace.replica(replica))
        assert summary.rounds_executed == 40
