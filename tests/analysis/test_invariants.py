"""Tests for the deterministic invariants of Section 3."""

import numpy as np
import pytest

from repro.analysis.invariants import (
    OnlineInvariantChecker,
    check_all_invariants,
    check_claim6,
    check_distance_bound_all_rounds,
    check_leader_always_exists,
    check_leader_count_nonincreasing,
    check_max_beep_count_is_leader,
    check_wave_propagation,
)
from repro.beeping.adversary import planted_leaders_initial_states
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import Simulator
from repro.beeping.trace import ExecutionTrace
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.errors import InvariantViolation
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)


def _run_with_trace(topology, seed, initial_states=None, p=0.5):
    engine = VectorizedEngine(topology, BFWProtocol(beep_probability=p))
    result = engine.run(
        rng=seed,
        record_trace=True,
        max_rounds=100_000,
        initial_states=initial_states,
    )
    assert result.trace is not None
    return result.trace


def test_all_invariants_on_path():
    topology = path_graph(10)
    trace = _run_with_trace(topology, seed=1)
    check_all_invariants(trace, topology)


def test_all_invariants_on_cycle():
    topology = cycle_graph(12)
    trace = _run_with_trace(topology, seed=2)
    check_all_invariants(trace, topology)


def test_all_invariants_on_star():
    topology = star_graph(10)
    trace = _run_with_trace(topology, seed=3)
    check_all_invariants(trace, topology)


def test_all_invariants_on_random_graph():
    topology = erdos_renyi_graph(16, rng=4)
    trace = _run_with_trace(topology, seed=4)
    check_all_invariants(trace, topology)


def test_all_invariants_with_planted_leaders():
    topology = path_graph(12)
    initial = planted_leaders_initial_states(topology, (0, 11))
    trace = _run_with_trace(topology, seed=5, initial_states=initial)
    check_all_invariants(trace, topology)


def test_wave_propagation_lemma12_on_small_path():
    topology = path_graph(7)
    trace = _run_with_trace(topology, seed=6)
    check_wave_propagation(trace, topology)


def test_claim6_detects_violation():
    # A beeping node that fails to freeze violates Eq. (4).
    rows = [
        [State.W_LEADER, State.W_FOLLOWER],
        [State.B_LEADER, State.W_FOLLOWER],
        [State.W_LEADER, State.B_FOLLOWER],
    ]
    states = np.array([[int(s) for s in row] for row in rows], dtype=np.int8)
    trace = ExecutionTrace(
        states,
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=(int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER)),
    )
    from repro.graphs.generators import path_graph as pg

    with pytest.raises(InvariantViolation):
        check_claim6(trace, pg(2))


def test_leader_always_exists_detects_violation():
    states = np.full((3, 4), int(State.W_FOLLOWER), dtype=np.int8)
    trace = ExecutionTrace(
        states,
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=(int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER)),
    )
    with pytest.raises(InvariantViolation):
        check_leader_always_exists(trace)


def test_leader_count_nonincreasing_detects_violation():
    rows = [
        [State.W_LEADER, State.W_FOLLOWER],
        [State.W_LEADER, State.W_LEADER],
    ]
    states = np.array([[int(s) for s in row] for row in rows], dtype=np.int8)
    trace = ExecutionTrace(
        states,
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=(int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER)),
    )
    with pytest.raises(InvariantViolation):
        check_leader_count_nonincreasing(trace)


def test_online_checker_passes_on_valid_run(small_cycle, bfw):
    checker = OnlineInvariantChecker()
    result = Simulator(small_cycle, bfw).run(rng=7, observers=[checker])
    assert result.converged
    assert checker.report.ok
    assert checker.report.rounds_checked == result.rounds_executed + 1


def test_online_checker_collects_without_raising():
    checker = OnlineInvariantChecker(raise_on_violation=False)
    from repro.beeping.observers import RoundSnapshot

    empty = RoundSnapshot(
        round_index=0,
        state_values=np.zeros(3, dtype=np.int8),
        beeping=np.zeros(3, dtype=bool),
        leaders=np.zeros(3, dtype=bool),
        heard=np.zeros(3, dtype=bool),
    )
    checker.on_round(empty)
    assert not checker.report.ok
    assert checker.report.leaderless_rounds == [0]


# --------------------------------------------------------------------------- #
# Batch entry points
# --------------------------------------------------------------------------- #


def test_batch_invariants_hold_on_static_batches(cycle_batch_trace):
    from repro.analysis.invariants import (
        check_leader_always_exists_batch,
        check_leader_count_nonincreasing_batch,
        check_max_beep_count_is_leader_batch,
    )

    check_leader_always_exists_batch(cycle_batch_trace)
    check_leader_count_nonincreasing_batch(cycle_batch_trace)
    check_max_beep_count_is_leader_batch(cycle_batch_trace)


def test_batch_leader_exists_check_flags_leaderless_rounds():
    from repro.analysis.invariants import check_leader_always_exists_batch
    from repro.batch.trace import BatchTrace
    from repro.core.states import State

    leader = int(State.W_LEADER)
    follower = int(State.W_FOLLOWER)
    states = np.full((3, 2, 4), leader, dtype=np.int8)
    states[2, 1, :] = follower  # replica 1 loses every leader in round 2
    trace = BatchTrace(
        states=states,
        rounds_executed=np.array([2, 2]),
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=tuple(int(s) for s in State if s.is_leader),
    )
    with pytest.raises(InvariantViolation, match="round 2 of replica 1"):
        check_leader_always_exists_batch(trace)
    # The same rows past retirement are frozen and must not be flagged.
    clipped = BatchTrace(
        states=states,
        rounds_executed=np.array([2, 1]),
        beeping_values=trace.beeping_values,
        leader_values=trace.leader_values,
    )
    check_leader_always_exists_batch(clipped)


def test_batch_nonincreasing_check_flags_increases():
    from repro.analysis.invariants import check_leader_count_nonincreasing_batch
    from repro.batch.trace import BatchTrace
    from repro.core.states import State

    leader = int(State.W_LEADER)
    follower = int(State.W_FOLLOWER)
    states = np.full((2, 1, 3), follower, dtype=np.int8)
    states[0, 0, 0] = leader
    states[1, 0, :2] = leader  # 1 -> 2 leaders
    trace = BatchTrace(
        states=states,
        rounds_executed=np.array([1]),
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=tuple(int(s) for s in State if s.is_leader),
    )
    with pytest.raises(InvariantViolation, match="increased"):
        check_leader_count_nonincreasing_batch(trace)
