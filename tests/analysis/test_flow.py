"""Tests for the flow quantity (Definition 5) and its conservation (Lemma 7)."""

import numpy as np
import pytest

from repro.analysis.flow import (
    check_flow_conservation,
    edge_flow,
    flow_history,
    max_flow_bound_holds,
    path_flow,
    validate_path,
)
from repro.beeping.engine import VectorizedEngine
from repro.beeping.trace import ExecutionTrace
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.errors import InvariantViolation, TraceError
from repro.graphs.generators import cycle_graph, path_graph

BEEPING = (int(State.B_LEADER), int(State.B_FOLLOWER))
LEADERS = (int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER))


def _trace_from_rows(rows):
    states = np.array([[int(s) for s in row] for row in rows], dtype=np.int8)
    return ExecutionTrace(states, BEEPING, LEADERS)


def test_edge_flow_definition():
    trace = _trace_from_rows(
        [[State.B_LEADER, State.W_FOLLOWER, State.B_FOLLOWER, State.F_FOLLOWER]]
    )
    assert edge_flow(trace, 0, 1, 0) == 1     # beeping -> waiting
    assert edge_flow(trace, 1, 0, 0) == -1    # waiting -> beeping
    assert edge_flow(trace, 1, 3, 0) == 0     # waiting -> frozen
    assert edge_flow(trace, 0, 2, 0) == 0     # beeping -> beeping


def test_path_flow_sums_edges():
    trace = _trace_from_rows(
        [[State.B_LEADER, State.W_FOLLOWER, State.B_FOLLOWER, State.W_FOLLOWER]]
    )
    assert path_flow(trace, (0, 1, 2, 3), 0) == 1 - 1 + 1
    assert path_flow(trace, (0,), 0) == 0


def test_flow_bound_eq1():
    trace = _trace_from_rows(
        [[State.B_LEADER, State.W_FOLLOWER, State.B_FOLLOWER, State.W_FOLLOWER]]
    )
    assert max_flow_bound_holds(trace, (0, 1, 2, 3))


def test_validate_path_accepts_graph_paths_and_walks(small_cycle):
    validate_path(small_cycle, (0, 1, 2, 1, 0))
    with pytest.raises(TraceError):
        validate_path(small_cycle, (0, 5))


def test_flow_conservation_on_real_execution():
    topology = path_graph(12)
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=3, record_trace=True, max_rounds=20_000
    )
    trace = result.trace
    full_path = tuple(range(topology.n))
    assert check_flow_conservation(trace, full_path) == []
    # Also along a sub-path and a reversed path.
    assert check_flow_conservation(trace, (3, 4, 5, 6)) == []
    assert check_flow_conservation(trace, tuple(reversed(full_path))) == []


def test_flow_conservation_on_cycle_execution():
    topology = cycle_graph(10)
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=5, record_trace=True, max_rounds=20_000
    )
    trace = result.trace
    closed_walk = tuple(list(range(10)) + [0])
    assert check_flow_conservation(trace, closed_walk) == []


def test_flow_history_length(converged_path_trace):
    history = flow_history(converged_path_trace, (0, 1, 2))
    assert len(history) == converged_path_trace.num_rounds + 1


def test_conservation_violation_detected_on_corrupted_trace():
    # Build a trace that violates the protocol semantics: a node beeps in two
    # consecutive rounds, which breaks Lemma 7 along the edge towards its
    # waiting neighbour.
    rows = [
        [State.W_LEADER, State.W_FOLLOWER],
        [State.B_LEADER, State.W_FOLLOWER],
        [State.B_LEADER, State.W_FOLLOWER],
    ]
    trace = _trace_from_rows(rows)
    with pytest.raises(InvariantViolation):
        check_flow_conservation(trace, (0, 1))
    violations = check_flow_conservation(trace, (0, 1), raise_on_violation=False)
    assert len(violations) >= 1
    assert "flow conservation violated" in violations[0].message()
