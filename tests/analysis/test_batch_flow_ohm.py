"""Batch flow/Ohm entry points: parity with the single-trace functions.

Every ``*_batch`` function must agree, replica for replica, with its
single-trace counterpart applied to ``trace.replica(r)`` — including
replicas that retire early (rows past retirement repeat the frozen
configuration and must not produce phantom violations).
"""

import numpy as np
import pytest

from repro.analysis import (
    check_flow_conservation,
    check_flow_conservation_batch,
    check_ohms_law,
    check_ohms_law_batch,
    flow_history,
    flow_history_batch,
    max_flow_bound_holds,
    max_flow_bound_holds_batch,
    path_flow,
    path_flow_batch,
)
from repro.batch.engine import BatchedEngine
from repro.batch.observers import BatchTraceRecorder
from repro.batch.trace import BatchTrace
from repro.core.registry import create_protocol
from repro.core.states import State
from repro.errors import InvariantViolation, TraceError
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, make_graph

SEEDS = tuple(range(1, 9))

BEEPING = (int(State.B_LEADER), int(State.B_FOLLOWER))
LEADERS = (int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER))


def _recorded_batch(family="cycle", n=16):
    topology = make_graph(family, n, rng=5)
    protocol = create_protocol("bfw", diameter=topology.diameter(), n=topology.n)
    recorder = BatchTraceRecorder()
    BatchedEngine(topology, protocol).run(list(SEEDS), observers=[recorder])
    return topology, recorder.trace()


@pytest.fixture(scope="module")
def cycle_batch():
    return _recorded_batch("cycle", 16)


@pytest.fixture(scope="module")
def er_batch():
    return _recorded_batch("erdos-renyi", 18)


PATHS = {"cycle": (0, 1, 2, 3, 4), "erdos-renyi": None}


def _walk(topology):
    # A short deterministic walk: follow the first neighbour repeatedly.
    walk = [0]
    for _ in range(4):
        walk.append(int(topology.neighbors(walk[-1])[0]))
    return tuple(walk)


@pytest.fixture(params=["cycle", "erdos-renyi"])
def batch_and_path(request, cycle_batch, er_batch):
    topology, trace = cycle_batch if request.param == "cycle" else er_batch
    path = PATHS[request.param] or _walk(topology)
    return topology, trace, path


def test_flow_history_batch_parity(batch_and_path):
    _, trace, path = batch_and_path
    history = flow_history_batch(trace, path)
    assert history.shape == (trace.num_rounds + 1, trace.num_replicas)
    for r in range(trace.num_replicas):
        last = int(trace.rounds_executed[r])
        assert tuple(history[: last + 1, r]) == flow_history(
            trace.replica(r), path
        )


def test_path_flow_batch_parity(batch_and_path):
    _, trace, path = batch_and_path
    for round_index in (0, 1, trace.num_rounds):
        flows = path_flow_batch(trace, path, round_index)
        for r in range(trace.num_replicas):
            if round_index <= int(trace.rounds_executed[r]):
                assert int(flows[r]) == path_flow(
                    trace.replica(r), path, round_index
                )


def test_conservation_batch_parity(batch_and_path):
    _, trace, path = batch_and_path
    per_replica = check_flow_conservation_batch(
        trace, path, raise_on_violation=False
    )
    assert len(per_replica) == trace.num_replicas
    for r in range(trace.num_replicas):
        assert per_replica[r] == check_flow_conservation(
            trace.replica(r), path, raise_on_violation=False
        )
    # The law holds on real executions, so the raising form passes too.
    assert check_flow_conservation_batch(trace, path) == per_replica


def test_ohms_law_batch_parity(batch_and_path):
    topology, trace, path = batch_and_path
    per_replica = check_ohms_law_batch(
        trace, path, topology=topology, raise_on_violation=False
    )
    for r in range(trace.num_replicas):
        assert per_replica[r] == check_ohms_law(
            trace.replica(r), path, raise_on_violation=False
        )
    assert check_ohms_law_batch(trace, path) == per_replica


def test_max_flow_bound_batch_parity(batch_and_path):
    _, trace, path = batch_and_path
    bounds = max_flow_bound_holds_batch(trace, path)
    for r in range(trace.num_replicas):
        assert bool(bounds[r]) == max_flow_bound_holds(trace.replica(r), path)


def test_short_paths_are_trivial(cycle_batch):
    _, trace = cycle_batch
    assert not flow_history_batch(trace, (0,)).any()
    assert check_flow_conservation_batch(trace, (0,)) == tuple(
        [] for _ in range(trace.num_replicas)
    )
    assert check_ohms_law_batch(trace, (0,)) == tuple(
        [] for _ in range(trace.num_replicas)
    )


def test_ohms_batch_validates_path(cycle_batch):
    topology, trace = cycle_batch
    with pytest.raises(TraceError):
        check_ohms_law_batch(trace, (0, 5), topology=topology)


def test_corrupted_batch_raises_with_replica_context():
    # Hand-build a two-replica trace where replica 1 violates conservation:
    # node 0 starts beeping and node 1 flips to beeping with no beep heard
    # anywhere near it — impossible under the flow law.
    states = np.zeros((2, 2, 3), dtype=np.int8)
    states[:, :, :] = int(State.W_FOLLOWER)
    states[0, 1, 0] = int(State.B_FOLLOWER)
    states[1, 1, 2] = int(State.B_FOLLOWER)
    trace = BatchTrace(
        states=states,
        rounds_executed=np.array([1, 1]),
        beeping_values=BEEPING,
        leader_values=LEADERS,
    )
    path = (0, 1, 2)
    with pytest.raises(InvariantViolation, match="replica 1"):
        check_flow_conservation_batch(trace, path)
    per_replica = check_flow_conservation_batch(
        trace, path, raise_on_violation=False
    )
    assert per_replica[0] == []
    assert len(per_replica[1]) == 1
    # Identical to the single-trace verdicts.
    for r in range(2):
        assert per_replica[r] == check_flow_conservation(
            trace.replica(r), path, raise_on_violation=False
        )


def test_frozen_rows_produce_no_phantom_violations():
    # Replica 0 retires after round 1 with a beeping endpoint frozen in
    # its final row; the repeated rows would violate the round-to-round
    # law if the valid mask did not exclude them.
    states = np.zeros((3, 2, 3), dtype=np.int8)
    states[:, :, :] = int(State.W_FOLLOWER)
    states[1:, 0, 0] = int(State.B_FOLLOWER)
    states[1, 1, 0] = int(State.B_FOLLOWER)
    trace = BatchTrace(
        states=states,
        rounds_executed=np.array([1, 2]),
        beeping_values=BEEPING,
        leader_values=LEADERS,
    )
    per_replica = check_flow_conservation_batch(
        trace, (0, 1), raise_on_violation=False
    )
    assert per_replica[0] == check_flow_conservation(
        trace.replica(0), (0, 1), raise_on_violation=False
    )
