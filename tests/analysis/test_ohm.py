"""Tests for Ohm's law (Corollary 8) and the distance bound (Lemma 11)."""

import pytest

from repro.analysis.ohm import (
    check_distance_bound,
    check_ohms_law,
    check_ohms_law_on_random_paths,
    sample_random_path,
)
from repro.beeping.adversary import planted_leaders_initial_states
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.errors import InvariantViolation
from repro.graphs.generators import cycle_graph, grid_graph, path_graph


def test_ohms_law_on_path_execution(converged_path_trace, small_path):
    full_path = tuple(range(small_path.n))
    assert check_ohms_law(converged_path_trace, full_path, topology=small_path) == []


def test_ohms_law_on_cycle_execution(converged_cycle_trace, small_cycle):
    # A non-shortest walk all the way around the cycle and back.
    walk = tuple(list(range(small_cycle.n)) + [0, 1, 0])
    assert check_ohms_law(converged_cycle_trace, walk, topology=small_cycle) == []


def test_ohms_law_on_grid_execution():
    topology = grid_graph(4, 4)
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=8, record_trace=True, max_rounds=50_000
    )
    assert result.converged
    checked = check_ohms_law_on_random_paths(
        result.trace, topology, num_paths=8, max_length=12, rng=0
    )
    assert checked == 8


def test_ohms_law_with_planted_leaders():
    topology = path_graph(16)
    initial = planted_leaders_initial_states(topology, (0, 15))
    result = VectorizedEngine(topology, BFWProtocol()).run(
        rng=2, record_trace=True, initial_states=initial, max_rounds=100_000
    )
    assert check_ohms_law(result.trace, tuple(range(16)), topology=topology) == []


def test_sample_random_path_is_a_walk(small_cycle):
    path = sample_random_path(small_cycle, length=9, rng=4)
    assert len(path) == 10
    for u, v in zip(path, path[1:]):
        assert small_cycle.has_edge(u, v)


def test_sample_random_path_respects_start(small_cycle):
    path = sample_random_path(small_cycle, length=3, rng=4, start=7)
    assert path[0] == 7


def test_distance_bound_lemma11(converged_path_trace, small_path):
    check_distance_bound(converged_path_trace, small_path)


def test_distance_bound_violation_detected(small_path, converged_path_trace):
    # Claim a bogus distance by restricting to a fabricated pair list with an
    # artificially shrunk graph: using node pairs at distance 8 but checking
    # against a path of only 3 nodes would be meaningless, so instead corrupt
    # the trace by doubling one node's beeps.
    import numpy as np

    from repro.beeping.trace import ExecutionTrace
    from repro.core.states import State

    states = converged_path_trace.states.copy()
    # Make node 0 beep in every round: its N^beep then exceeds every bound.
    states[:, 0] = int(State.B_LEADER)
    corrupted = ExecutionTrace(
        states,
        converged_path_trace.beeping_values,
        converged_path_trace.leader_values,
    )
    with pytest.raises(InvariantViolation):
        check_distance_bound(corrupted, small_path)
