"""Test package."""
