"""Tests for the graph generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.generators import (
    GRAPH_FAMILIES,
    barbell_graph,
    binary_tree_graph,
    caterpillar_graph,
    clique_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    make_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    random_tree_graph,
    star_graph,
    torus_graph,
)


def test_path_graph_shape():
    topology = path_graph(5)
    assert topology.n == 5
    assert topology.num_edges == 4
    assert topology.diameter() == 4


def test_cycle_graph_shape():
    topology = cycle_graph(7)
    assert topology.n == 7
    assert topology.num_edges == 7
    assert all(topology.degree(node) == 2 for node in topology.nodes())


def test_clique_graph_shape():
    topology = clique_graph(6)
    assert topology.num_edges == 15
    assert topology.diameter() == 1


def test_star_graph_shape():
    topology = star_graph(10)
    assert topology.degree(0) == 9
    assert topology.diameter() == 2


def test_grid_and_torus_shapes():
    grid = grid_graph(3, 4)
    assert grid.n == 12
    assert grid.diameter() == 5
    torus = torus_graph(4, 4)
    assert torus.n == 16
    assert all(torus.degree(node) == 4 for node in torus.nodes())


def test_binary_tree_shape():
    tree = binary_tree_graph(3)
    assert tree.n == 15
    assert tree.num_edges == 14


def test_hypercube_shape():
    cube = hypercube_graph(4)
    assert cube.n == 16
    assert cube.diameter() == 4
    assert all(cube.degree(node) == 4 for node in cube.nodes())


def test_barbell_and_lollipop_connected():
    barbell = barbell_graph(4, 5)
    assert barbell.diameter() >= 5
    lollipop = lollipop_graph(4, 5)
    assert lollipop.n == 9


def test_caterpillar_shape():
    caterpillar = caterpillar_graph(4, 2)
    assert caterpillar.n == 4 + 8
    assert caterpillar.num_edges == caterpillar.n - 1


def test_erdos_renyi_connected_and_reproducible():
    first = erdos_renyi_graph(40, rng=3)
    second = erdos_renyi_graph(40, rng=3)
    assert first.n == 40
    assert set(first.edges) == set(second.edges)


def test_random_geometric_connected():
    topology = random_geometric_graph(50, rng=1)
    assert topology.n == 50
    assert topology.diameter() >= 1


def test_random_tree_is_a_tree():
    tree = random_tree_graph(30, rng=5)
    assert tree.num_edges == 29
    assert tree.n == 30


def test_random_regular_graph_degrees():
    topology = random_regular_graph(20, 4, rng=2)
    assert all(topology.degree(node) == 4 for node in topology.nodes())


@pytest.mark.parametrize("family", GRAPH_FAMILIES)
def test_make_graph_all_families(family):
    topology = make_graph(family, 16, rng=0)
    assert topology.n >= 2
    assert topology.diameter() >= 1


def test_make_graph_unknown_family():
    with pytest.raises(TopologyError):
        make_graph("moebius", 10)


@pytest.mark.parametrize(
    "factory, args",
    [
        (path_graph, (0,)),
        (cycle_graph, (2,)),
        (grid_graph, (0, 3)),
        (hypercube_graph, (0,)),
        (barbell_graph, (1, 2)),
    ],
)
def test_generators_reject_invalid_sizes(factory, args):
    with pytest.raises(TopologyError):
        factory(*args)
