"""Tests for edge-list serialisation."""

import pytest

from repro.errors import TopologyError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.io import (
    dumps_edge_list,
    loads_edge_list,
    read_edge_list,
    write_edge_list,
)


def test_round_trip_in_memory():
    topology = cycle_graph(9)
    text = dumps_edge_list(topology)
    rebuilt = loads_edge_list(text, name="cycle9")
    assert rebuilt.n == topology.n
    assert set(rebuilt.edges) == set(topology.edges)
    assert rebuilt.name == "cycle9"


def test_round_trip_on_disk(tmp_path):
    topology = path_graph(12)
    destination = tmp_path / "graphs" / "path12.edges"
    write_edge_list(topology, destination)
    rebuilt = read_edge_list(destination)
    assert rebuilt.n == 12
    assert set(rebuilt.edges) == set(topology.edges)


def test_comments_and_blank_lines_ignored():
    text = "\n# a comment\nn 3\n\n0 1\n# another\n1 2\n"
    topology = loads_edge_list(text)
    assert topology.n == 3
    assert topology.num_edges == 2


def test_missing_header_rejected():
    with pytest.raises(TopologyError):
        loads_edge_list("0 1\n1 2\n")


def test_malformed_edge_rejected():
    with pytest.raises(TopologyError):
        loads_edge_list("n 3\n0 1 2\n")
