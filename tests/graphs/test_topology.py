"""Tests for the Topology abstraction."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.topology import Topology, topology_from_networkx


def test_basic_accessors():
    topology = Topology(4, [(0, 1), (1, 2), (2, 3)], name="p4")
    assert topology.n == 4
    assert len(topology) == 4
    assert topology.num_edges == 3
    assert topology.name == "p4"
    assert list(topology.nodes()) == [0, 1, 2, 3]
    assert topology.neighbors(1) == (0, 2)
    assert topology.degree(0) == 1
    assert topology.has_edge(2, 3)
    assert not topology.has_edge(0, 3)


def test_duplicate_edges_collapse():
    topology = Topology(3, [(0, 1), (1, 0), (1, 2)])
    assert topology.num_edges == 2


def test_self_loop_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(0, 0), (0, 1), (1, 2)])


def test_out_of_range_edge_rejected():
    with pytest.raises(TopologyError):
        Topology(3, [(0, 5)])


def test_disconnected_graph_rejected_by_default():
    with pytest.raises(TopologyError):
        Topology(4, [(0, 1), (2, 3)])


def test_disconnected_graph_allowed_when_requested():
    topology = Topology(4, [(0, 1), (2, 3)], require_connected=False)
    assert topology.num_edges == 2


def test_distances_on_path():
    topology = path_graph(6)
    assert topology.distance(0, 5) == 5
    assert topology.distance(2, 2) == 0
    distances = topology.distances_from(0)
    assert list(distances.astype(int)) == [0, 1, 2, 3, 4, 5]


def test_diameter_of_standard_graphs():
    assert path_graph(10).diameter() == 9
    assert cycle_graph(10).diameter() == 5
    assert Topology(1, []).diameter() == 0


def test_eccentricity():
    topology = path_graph(5)
    assert topology.eccentricity(0) == 4
    assert topology.eccentricity(2) == 2


def test_shortest_path_endpoints_and_length():
    topology = cycle_graph(8)
    path = topology.shortest_path(0, 3)
    assert path[0] == 0 and path[-1] == 3
    assert len(path) == 4
    for u, v in zip(path, path[1:]):
        assert topology.has_edge(u, v)


def test_sparse_adjacency_is_symmetric():
    topology = cycle_graph(6)
    adjacency = topology.sparse_adjacency()
    dense = adjacency.toarray()
    assert (dense == dense.T).all()
    assert dense.sum() == 2 * topology.num_edges


def test_to_networkx_round_trip():
    topology = path_graph(7)
    graph = topology.to_networkx()
    rebuilt = topology_from_networkx(graph, name="rebuilt")
    assert rebuilt.n == topology.n
    assert set(rebuilt.edges) == set(topology.edges)


def test_large_graph_diameter_heuristic_exact_on_path():
    topology = path_graph(600)
    assert topology.diameter() == 599
