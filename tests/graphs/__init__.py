"""Test package."""
