"""Tests for graph property computations."""

import numpy as np

from repro.graphs.generators import (
    clique_graph,
    cycle_graph,
    path_graph,
    random_tree_graph,
    star_graph,
)
from repro.graphs.properties import (
    degree_sequence,
    distance_matrix,
    exact_diameter,
    is_bipartite,
    peripheral_pair,
    summarize,
)


def test_exact_diameter_matches_topology_on_small_graphs():
    for topology in (path_graph(9), cycle_graph(10), clique_graph(6)):
        assert exact_diameter(topology) == topology.diameter()


def test_degree_sequence():
    degrees = degree_sequence(star_graph(6))
    assert degrees[0] == 5
    assert (degrees[1:] == 1).all()


def test_summarize_fields():
    summary = summarize(path_graph(8))
    assert summary.n == 8
    assert summary.num_edges == 7
    assert summary.diameter == 7
    assert summary.is_tree
    assert summary.min_degree == 1
    assert summary.max_degree == 2
    payload = summary.as_dict()
    assert payload["name"].startswith("path")


def test_peripheral_pair_on_path_is_the_two_ends():
    topology = path_graph(11)
    pair = set(peripheral_pair(topology))
    assert pair == {0, 10}


def test_peripheral_pair_distance_on_tree_equals_diameter():
    tree = random_tree_graph(40, rng=7)
    u, v = peripheral_pair(tree)
    assert tree.distance(u, v) == exact_diameter(tree)


def test_distance_matrix_symmetry_and_diagonal():
    topology = cycle_graph(8)
    matrix = distance_matrix(topology)
    assert (matrix == matrix.T).all()
    assert (np.diag(matrix) == 0).all()
    assert matrix.max() == 4


def test_is_bipartite():
    assert is_bipartite(path_graph(6))
    assert is_bipartite(cycle_graph(8))
    assert not is_bipartite(cycle_graph(9))
