"""Unit tests for churn adversaries and the incremental adjacency cache."""

import numpy as np
import pytest

from repro.core.states import State
from repro.dynamics import (
    AdjacencyCache,
    EdgeDelta,
    LeaderIsolatingChurn,
    ObliviousEdgeChurn,
    StateAwareChurnSchedule,
    normalize_edge,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, path_graph


def test_edge_delta_normalises_and_sorts_edges():
    delta = EdgeDelta(added=[(5, 2), (1, 0)], removed=[(9, 3)])
    assert delta.added == ((0, 1), (2, 5))
    assert delta.removed == ((3, 9),)
    assert not delta.is_empty
    assert EdgeDelta().is_empty


def test_adjacency_cache_applies_deltas_incrementally():
    cache = AdjacencyCache(path_graph(5))
    assert cache.num_edges == 4 and cache.has_edge(0, 1)
    cache.apply(EdgeDelta(added=[(0, 4)], removed=[(2, 3)]))
    assert cache.has_edge(0, 4) and not cache.has_edge(2, 3)
    assert cache.degree(0) == 2
    topology = cache.snapshot("t")
    assert set(topology.edges) == {(0, 1), (1, 2), (3, 4), (0, 4)}


def test_adjacency_cache_rejects_inconsistent_deltas():
    cache = AdjacencyCache(path_graph(4))
    with pytest.raises(ConfigurationError, match="non-edge"):
        cache.apply(EdgeDelta(removed=[(0, 3)]))
    with pytest.raises(ConfigurationError, match="existing edge"):
        cache.apply(EdgeDelta(added=[(0, 1)]))
    with pytest.raises(ConfigurationError, match="self-loop"):
        cache.apply(EdgeDelta(added=[(2, 2)]))
    with pytest.raises(ConfigurationError, match="outside node range"):
        cache.apply(EdgeDelta(added=[(0, 9)]))


def test_adjacency_cache_connectivity_probes():
    cache = AdjacencyCache(path_graph(5))
    assert cache.is_connected()
    assert cache.would_disconnect((1, 2))  # every path edge is a bridge
    cycle = AdjacencyCache(cycle_graph(5))
    assert not cycle.would_disconnect((0, 1))  # cycle edges never are
    cache.apply(EdgeDelta(removed=[(1, 2)]))
    assert not cache.is_connected()


def test_sample_non_edge_is_none_on_complete_graphs():
    from repro.graphs.generators import clique_graph

    cache = AdjacencyCache(clique_graph(4))
    assert cache.sample_non_edge(np.random.default_rng(0)) is None


def test_oblivious_churn_skips_bridges_when_preserving_connectivity():
    rng = np.random.default_rng(0)
    cache = AdjacencyCache(path_graph(6))
    adversary = ObliviousEdgeChurn(remove_per_round=2, add_per_round=0)
    for round_index in range(1, 10):
        adversary.propose(round_index, cache, rng)
        assert cache.is_connected()


def test_oblivious_churn_can_disconnect_when_allowed():
    rng = np.random.default_rng(1)
    cache = AdjacencyCache(path_graph(6))
    adversary = ObliviousEdgeChurn(
        remove_per_round=2, add_per_round=0, preserve_connectivity=False
    )
    adversary.propose(1, cache, rng)
    assert cache.num_edges == 3  # removals are never skipped


def test_leader_isolating_churn_cuts_leader_incident_edges_and_restores():
    topology = cycle_graph(8)
    cache = AdjacencyCache(topology)
    adversary = LeaderIsolatingChurn(cut_per_round=2)
    adversary.begin_run()
    rng = np.random.default_rng(0)
    states = np.full(8, int(State.W_FOLLOWER), dtype=np.int8)
    states[3] = int(State.W_LEADER)

    delta = adversary.propose(1, cache, rng, states=states)
    assert all(3 in edge for edge in delta.removed)
    assert cache.degree(3) == 0  # both of the leader's edges are down

    # Next round the cuts are restored before new ones are made.
    states[3] = int(State.W_FOLLOWER)
    states[5] = int(State.W_LEADER)
    delta = adversary.propose(2, cache, rng, states=states)
    assert cache.degree(3) == 2
    assert all(5 in edge for edge in delta.removed)


def test_leader_isolating_churn_requires_states():
    adversary = LeaderIsolatingChurn()
    with pytest.raises(ConfigurationError, match="state"):
        adversary.propose(
            1, AdjacencyCache(cycle_graph(6)), np.random.default_rng(0)
        )


def test_state_aware_schedule_rejects_oblivious_adversaries_and_vice_versa():
    from repro.dynamics import EdgeChurnSchedule

    base = cycle_graph(8)
    with pytest.raises(ConfigurationError, match="state-aware"):
        StateAwareChurnSchedule(base, adversary=ObliviousEdgeChurn())
    with pytest.raises(ConfigurationError, match="oblivious"):
        EdgeChurnSchedule(base, adversary=LeaderIsolatingChurn())


def test_state_aware_schedule_advances_one_round_at_a_time():
    base = cycle_graph(8)
    schedule = StateAwareChurnSchedule(base, seed=0)
    states = np.full(8, int(State.W_LEADER), dtype=np.int8)
    schedule.begin_run()
    schedule.topology_at(1, states=states)
    with pytest.raises(ConfigurationError, match="one round at a time"):
        schedule.topology_at(3, states=states)
    with pytest.raises(ConfigurationError, match="state vector"):
        schedule.topology_at(2)


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)
