"""Engine-level dynamics: batched vs sequential parity under topology schedules."""

import pytest

from repro.batch.engine import BatchedEngine
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.dynamics import (
    AdversarialCutSchedule,
    ScheduleSpec,
    StateAwareChurnSchedule,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, path_graph

from tests.batch.parity_harness import (
    DYNAMIC_PARITY_SCHEDULES,
    assert_schedule_replica_parity,
)


@pytest.mark.parametrize(
    "spec", DYNAMIC_PARITY_SCHEDULES, ids=lambda spec: spec.label
)
def test_batched_matches_sequential_under_schedule_on_cycle(spec):
    assert_schedule_replica_parity(cycle_graph(16), BFWProtocol(), spec, seeds=range(6))


@pytest.mark.parametrize(
    "spec", DYNAMIC_PARITY_SCHEDULES, ids=lambda spec: spec.label
)
def test_batched_matches_sequential_under_schedule_on_path(spec):
    assert_schedule_replica_parity(
        path_graph(11), NonUniformBFWProtocol(diameter=10), spec, seeds=range(6)
    )


def test_cut_and_churn_parity_without_early_stopping():
    # No replica retires, so every replica consumes the budget — the whole
    # schedule horizon is replayed identically by both engines.
    assert_schedule_replica_parity(
        cycle_graph(12),
        BFWProtocol(),
        ScheduleSpec("edge-churn", {"seed": 5}),
        seeds=range(4),
        max_rounds=200,
        stop_at_single_leader=False,
    )


def test_permanent_cut_stalls_convergence_across_the_bridge():
    # With the bridge permanently down, each side of the path elects its own
    # leader and the two survivors can never eliminate one another — the
    # execution must exhaust its budget with two leaders standing, while the
    # static run converges comfortably in the same budget.
    topology = path_graph(13)
    protocol = BFWProtocol()
    schedule = AdversarialCutSchedule(topology, period=4, down_rounds=4)
    stalled = VectorizedEngine(topology, protocol, schedule=schedule).run(
        rng=0, max_rounds=3000
    )
    assert not stalled.converged
    assert stalled.final_leader_count == 2
    static = VectorizedEngine(topology, protocol).run(rng=0, max_rounds=3000)
    assert static.converged


def test_batched_engine_rejects_state_aware_schedules_for_multi_replica_batches():
    topology = cycle_graph(12)
    schedule = StateAwareChurnSchedule(topology, seed=0)
    engine = BatchedEngine(topology, BFWProtocol(), schedule=schedule)
    with pytest.raises(ConfigurationError, match="state-aware"):
        engine.run([0, 1])


def test_state_aware_schedule_single_replica_parity():
    topology = cycle_graph(14)
    protocol = BFWProtocol()
    schedule = StateAwareChurnSchedule(topology, seed=3)
    for seed in (0, 5):
        single = VectorizedEngine(topology, protocol, schedule=schedule).run(
            rng=seed, max_rounds=3000
        )
        batch = BatchedEngine(topology, protocol, schedule=schedule).run(
            [seed], max_rounds=3000
        )
        replica = batch.replica(0)
        assert replica.converged == single.converged
        assert replica.convergence_round == single.convergence_round
        assert replica.leader_counts == single.leader_counts


def test_state_aware_adversary_with_enough_cuts_stalls_convergence():
    # The leader-isolating adversary exists to demonstrate Section 5's
    # point: knowledge of the configuration buys real stalling power.  On a
    # cycle every node has degree 2, so an adversary that can cut 4 edges
    # per round keeps (at least) two leaders fully fenced off at all times —
    # no elimination wave ever reaches them, and the run exhausts its budget
    # on every seed, while the static runs converge comfortably.
    from repro.dynamics import LeaderIsolatingChurn

    topology = cycle_graph(16)
    protocol = BFWProtocol()
    for seed in range(5):
        static = VectorizedEngine(topology, protocol).run(rng=seed, max_rounds=6000)
        assert static.converged
        schedule = StateAwareChurnSchedule(
            topology, adversary=LeaderIsolatingChurn(cut_per_round=4), seed=1
        )
        attacked = VectorizedEngine(topology, protocol, schedule=schedule).run(
            rng=seed, max_rounds=6000
        )
        assert not attacked.converged
        assert attacked.final_leader_count > 1
