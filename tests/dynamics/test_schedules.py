"""Property tests for topology schedules.

The three properties the subsystem promises:

* a static schedule run through the dynamic code path is **bit-identical**
  to today's engines (same results, same RNG stream);
* seeded churn schedules are **deterministic**: same parameters, same graph
  sequence, on any instance and in any query order;
* the node count is **invariant** across swaps, with a clear
  ``ConfigurationError`` otherwise.
"""

import numpy as np
import pytest

from repro.batch.engine import BatchedEngine
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.dynamics import (
    AdversarialCutSchedule,
    EdgeChurnSchedule,
    InterpolationSchedule,
    PeriodicRewiringSchedule,
    ScheduleSpec,
    StaticSchedule,
    build_schedule,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import clique_graph, cycle_graph, path_graph


# --------------------------------------------------------------------------- #
# Static schedule = bit-identical fast path
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [0, 1, 7, 23])
def test_static_schedule_sequential_run_is_bit_identical(seed):
    topology = cycle_graph(20)
    protocol = BFWProtocol()
    plain = VectorizedEngine(topology, protocol).run(rng=seed)
    scheduled = VectorizedEngine(
        topology, protocol, schedule=StaticSchedule(topology)
    ).run(rng=seed)
    # SimulationResult is a plain dataclass of scalars and tuples, so
    # equality is field-for-field — including the full leader trajectory.
    assert scheduled == plain


def test_static_schedule_batched_run_is_bit_identical():
    topology = cycle_graph(20)
    protocol = BFWProtocol()
    seeds = list(range(8))
    plain = BatchedEngine(topology, protocol).run(seeds)
    scheduled = BatchedEngine(
        topology, protocol, schedule=StaticSchedule(topology)
    ).run(seeds)
    np.testing.assert_array_equal(plain.convergence_round, scheduled.convergence_round)
    np.testing.assert_array_equal(plain.rounds_executed, scheduled.rounds_executed)
    np.testing.assert_array_equal(plain.final_states, scheduled.final_states)
    np.testing.assert_array_equal(plain.leader_node, scheduled.leader_node)
    assert plain.leader_counts == scheduled.leader_counts


def test_static_schedule_preserves_the_rng_stream():
    # Bit-identity includes randomness consumption: after a matched run the
    # engine must leave an externally supplied generator in the same state.
    topology = path_graph(12)
    protocol = BFWProtocol()
    rng_plain = np.random.default_rng(5)
    rng_sched = np.random.default_rng(5)
    VectorizedEngine(topology, protocol).run(rng=rng_plain)
    VectorizedEngine(topology, protocol, schedule=StaticSchedule(topology)).run(
        rng=rng_sched
    )
    assert rng_plain.bit_generator.state == rng_sched.bit_generator.state


# --------------------------------------------------------------------------- #
# Seeded churn is deterministic
# --------------------------------------------------------------------------- #


def test_edge_churn_schedule_is_deterministic_under_a_fixed_seed():
    base = cycle_graph(16)
    first = EdgeChurnSchedule(base, seed=13, add_per_round=2, remove_per_round=2)
    second = EdgeChurnSchedule(base, seed=13, add_per_round=2, remove_per_round=2)
    for round_index in range(60):
        assert (
            first.topology_at(round_index).edges
            == second.topology_at(round_index).edges
        )


def test_edge_churn_schedule_is_independent_of_query_order():
    base = cycle_graph(16)
    forward = EdgeChurnSchedule(base, seed=3)
    shuffled = EdgeChurnSchedule(base, seed=3)
    order = [40, 3, 17, 0, 40, 25, 1]
    for round_index in order:
        assert (
            shuffled.topology_at(round_index).edges
            == forward.topology_at(round_index).edges
        )


def test_edge_churn_differs_across_seeds():
    base = cycle_graph(16)
    a = EdgeChurnSchedule(base, seed=1)
    b = EdgeChurnSchedule(base, seed=2)
    assert any(
        a.topology_at(r).edges != b.topology_at(r).edges for r in range(1, 30)
    )


def test_edge_churn_preserves_connectivity_by_default():
    from repro.dynamics import AdjacencyCache

    base = cycle_graph(12)
    schedule = EdgeChurnSchedule(base, seed=9, add_per_round=1, remove_per_round=2)
    for round_index in range(1, 40):
        assert AdjacencyCache(schedule.topology_at(round_index)).is_connected()


def test_edge_churn_deduplicates_repeated_edge_sets():
    # Revisiting an edge set must return the identical Topology object, so
    # engine-side adjacency caches keyed by object identity stay effective.
    base = path_graph(6)
    schedule = EdgeChurnSchedule(base, seed=4, add_per_round=1, remove_per_round=1)
    seen = {}
    for round_index in range(80):
        topology = schedule.topology_at(round_index)
        signature = frozenset(topology.edges)
        if signature in seen:
            assert topology is seen[signature]
        seen[signature] = topology


def test_edge_churn_memory_stays_bounded_and_replay_survives_eviction():
    # The snapshot pool is a bounded LRU: a long horizon must not retain one
    # Topology per round, and rounds whose snapshot was evicted must replay
    # to the exact same edge set when revisited (e.g. by a later replica of
    # a sequential sweep restarting at round 1).
    base = cycle_graph(10)
    schedule = EdgeChurnSchedule(base, seed=2, add_per_round=2, remove_per_round=2)
    horizon = EdgeChurnSchedule.ROUND_MEMO_LIMIT + 64
    early = {r: schedule.topology_at(r).edges for r in range(0, 20)}
    schedule.topology_at(horizon)
    assert len(schedule._pool) <= EdgeChurnSchedule.POOL_LIMIT
    assert len(schedule._round_memo) <= EdgeChurnSchedule.ROUND_MEMO_LIMIT
    # Rounds 1..20 have aged out of both the memo and the pool by now, so
    # re-serving them goes through a replay-cursor reset — and must still
    # reproduce the exact same edge sets.
    for round_index, edges in early.items():
        assert schedule.topology_at(round_index).edges == edges


# --------------------------------------------------------------------------- #
# Node-count invariance
# --------------------------------------------------------------------------- #


def test_periodic_rewiring_rejects_mismatched_node_counts():
    with pytest.raises(ConfigurationError, match="node count"):
        PeriodicRewiringSchedule([cycle_graph(8), cycle_graph(10)])


def test_interpolation_rejects_mismatched_node_counts():
    with pytest.raises(ConfigurationError, match="node count"):
        InterpolationSchedule(cycle_graph(8), clique_graph(9), rounds=10)


def test_build_schedule_rejects_size_changing_target_family():
    # make_graph rounds "hypercube" to a power of two, so interpolating a
    # 20-node cycle into a hypercube would change n — a clear error, not a
    # silent resize.
    base = cycle_graph(20)
    spec = ScheduleSpec("interpolate", {"target_family": "hypercube", "rounds": 8})
    with pytest.raises(ConfigurationError, match="node count"):
        build_schedule(spec, base)


def test_engines_reject_schedules_for_a_different_node_count():
    schedule = StaticSchedule(cycle_graph(8))
    with pytest.raises(ConfigurationError, match="n=8"):
        VectorizedEngine(cycle_graph(10), BFWProtocol(), schedule=schedule)
    with pytest.raises(ConfigurationError, match="n=8"):
        BatchedEngine(cycle_graph(10), BFWProtocol(), schedule=schedule)


# --------------------------------------------------------------------------- #
# Concrete schedule shapes
# --------------------------------------------------------------------------- #


def test_interpolation_moves_from_base_to_target():
    base = cycle_graph(10)
    target = clique_graph(10)
    schedule = InterpolationSchedule(base, target, rounds=20)
    assert schedule.topology_at(0) is base
    assert schedule.topology_at(20) is target
    assert schedule.topology_at(999) is target
    counts = [schedule.topology_at(r).num_edges for r in range(21)]
    assert counts == sorted(counts)  # densification never loses edges
    assert counts[0] == base.num_edges and counts[-1] == target.num_edges


def test_adversarial_cut_alternates_between_down_and_up_phases():
    base = path_graph(9)
    schedule = AdversarialCutSchedule(base, period=4, down_rounds=2)
    (cut_edge,) = schedule.cut_edges
    for round_index in range(1, 25):
        topology = schedule.topology_at(round_index)
        phase = (round_index - 1) % 4
        if phase < 2:
            assert not topology.has_edge(*cut_edge)
        else:
            assert topology is base


def test_adversarial_cut_defaults_to_a_bridge_or_first_edge():
    # On a path the default cut is the first bridge; a bridgeless graph
    # falls back to its first edge (perturbing rather than disconnecting),
    # so `repro dynamic --schedule cut` works on every family.
    assert AdversarialCutSchedule(path_graph(5)).cut_edges == ((0, 1),)
    assert AdversarialCutSchedule(cycle_graph(8)).cut_edges == ((0, 1),)
    schedule = AdversarialCutSchedule(cycle_graph(8), edges=[(2, 3)])
    assert schedule.cut_edges == ((2, 3),)
    with pytest.raises(ConfigurationError, match="not an edge"):
        AdversarialCutSchedule(cycle_graph(8), edges=[(0, 4)])


def test_periodic_rewiring_cycles_through_topologies():
    a, b = cycle_graph(8), path_graph(8)
    schedule = PeriodicRewiringSchedule([a, b], period=3)
    # topology_at(r) = topologies[(r // period) % 2]
    expected = [b, b, b, a, a, a, b, b, b, a]
    assert [schedule.topology_at(r) for r in range(3, 13)] == expected


# --------------------------------------------------------------------------- #
# ScheduleSpec
# --------------------------------------------------------------------------- #


def test_schedule_spec_rejects_unknown_kinds():
    with pytest.raises(ConfigurationError, match="unknown schedule kind"):
        ScheduleSpec("wormhole")


def test_schedule_spec_rejects_invalid_parameters():
    spec = ScheduleSpec("edge-churn", {"no_such_parameter": 1})
    with pytest.raises(ConfigurationError, match="invalid parameters"):
        build_schedule(spec, cycle_graph(8))


def test_schedule_spec_labels_are_deterministic():
    spec = ScheduleSpec("edge-churn", {"seed": 3, "add_per_round": 2})
    assert spec.label == "edge-churn[add_per_round=2,seed=3]"
    assert ScheduleSpec("static").label == "static"


def test_build_schedule_passes_through_prebuilt_schedules():
    base = cycle_graph(8)
    schedule = StaticSchedule(base)
    assert build_schedule(schedule, base) is schedule
    with pytest.raises(ConfigurationError, match="n=8"):
        build_schedule(schedule, cycle_graph(12))
