"""Dynamic cells through the execution layer: specs, backends, experiments."""

import pickle

import pytest

from repro.dynamics import ScheduleSpec
from repro.errors import ConfigurationError
from repro.exec import (
    BatchedBackend,
    ExecutionCell,
    SequentialBackend,
    execute_cell_batched,
    execute_cell_sequential,
)
from repro.experiments.config import GraphSpec, ProtocolSpecConfig
from repro.experiments.dynamics import (
    dynamic_experiment,
    schedule_spec_for_rate,
)

from tests.batch.parity_harness import (
    assert_backend_record_parity,
    dynamic_parity_cells,
)


def _cell(protocol="bfw", spec=None, **kwargs):
    return ExecutionCell(
        protocol=ProtocolSpecConfig(name=protocol),
        graph=GraphSpec(family="cycle", n=12),
        seeds=(0, 1, 2),
        max_rounds=2000,
        schedule=spec,
        **kwargs,
    )


def test_dynamic_cells_pickle_round_trip():
    cell = _cell(spec=ScheduleSpec("edge-churn", {"seed": 3}))
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert clone.schedule.label == "edge-churn[seed=3]"


def test_dynamic_cell_labels_include_the_schedule():
    cell = _cell(spec=ScheduleSpec("edge-churn", {"seed": 3}))
    assert cell.graph_label == "cycle(12)@edge-churn[seed=3]"
    assert cell.label == "bfw on cycle(12)@edge-churn[seed=3]"
    assert _cell().graph_label == "cycle(12)"
    records = execute_cell_batched(cell).to_records()
    assert all(record.graph == cell.graph_label for record in records)


def test_sequential_and_batched_executors_agree_on_dynamic_cells():
    cells = dynamic_parity_cells(protocols=("bfw",), num_seeds=2)
    assert cells
    assert_backend_record_parity([SequentialBackend(), BatchedBackend()], cells=cells)


def test_state_aware_cells_run_identically_on_every_backend():
    # A state-aware schedule cannot share one adjacency across a batch, so
    # the batched executor falls back to the sequential per-replica path —
    # the records must still be byte-identical on every backend.
    cell = _cell(spec=ScheduleSpec("leader-isolating", {"cut_per_round": 1}))
    sequential = execute_cell_sequential(cell)
    batched = execute_cell_batched(cell)
    assert batched.batched is False
    assert sequential.to_records() == batched.to_records()


def test_dynamic_cells_reject_memory_protocols():
    cell = _cell(protocol="emek-keren", spec=ScheduleSpec("edge-churn", {"seed": 1}))
    with pytest.raises(ConfigurationError, match="constant-state"):
        execute_cell_sequential(cell)
    with pytest.raises(ConfigurationError, match="constant-state"):
        execute_cell_batched(cell)


def test_schedule_spec_for_rate_maps_zero_to_static():
    assert schedule_spec_for_rate("edge-churn", 0, seed=5).kind == "static"
    spec = schedule_spec_for_rate("edge-churn", 3, seed=5)
    assert spec.params["add_per_round"] == 3
    assert spec.params["remove_per_round"] == 3
    assert schedule_spec_for_rate("cut", 2, seed=5).params["down_rounds"] == 2
    with pytest.raises(ConfigurationError, match=">= 0"):
        schedule_spec_for_rate("edge-churn", -1, seed=5)
    with pytest.raises(ConfigurationError, match="<= 8"):
        schedule_spec_for_rate("cut", 9, seed=5)
    with pytest.raises(ConfigurationError, match="unknown dynamic schedule"):
        schedule_spec_for_rate("wormhole", 1, seed=5)


def test_dynamic_experiment_is_backend_invariant():
    kwargs = dict(
        families=("cycle",),
        sizes=(12,),
        churn_rates=(0, 2),
        num_seeds=3,
        max_rounds=2000,
    )
    sequential = dynamic_experiment(backend="sequential", **kwargs)
    batched = dynamic_experiment(backend="batched", **kwargs)
    assert sequential.records == batched.records
    assert sequential.rows == batched.rows
    assert len(batched.rows) == 2
    static_row, churn_row = batched.rows
    assert static_row.schedule == "static" and static_row.churn_rate == 0
    assert churn_row.churn_rate == 2
    assert "edge-churn" in churn_row.schedule
    rendered = batched.render()
    assert "Dynamic graphs" in rendered and "edge-churn" in rendered


def test_dynamic_experiment_static_row_matches_the_classical_sweep():
    # Churn rate 0 runs through the schedule code path but must reproduce
    # the scheduleless engines bit for bit: execute the same cell without
    # any schedule and compare every field except the qualified graph label.
    result = dynamic_experiment(
        families=("cycle",), sizes=(12,), churn_rates=(0,), num_seeds=4,
        backend="batched",
    )
    from repro.experiments.seeds import trial_seeds

    spec = schedule_spec_for_rate("edge-churn", 0, 0)
    plain_cell = ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=12),
        seeds=trial_seeds(
            20250212, f"dynamic/bfw/cycle/12/{spec.label}", 4
        ),
        max_rounds=None,
    )
    plain = execute_cell_batched(plain_cell).to_records()
    assert len(plain) == len(result.records) == 4
    for dynamic_record, plain_record in zip(result.records, plain):
        assert dynamic_record.graph == "cycle(12)@static"
        assert plain_record.graph == "cycle(12)"
        assert dynamic_record.seed == plain_record.seed
        assert dynamic_record.converged == plain_record.converged
        assert dynamic_record.convergence_round == plain_record.convergence_round
        assert dynamic_record.rounds_executed == plain_record.rounds_executed


def test_dynamic_experiment_validates_inputs():
    with pytest.raises(ConfigurationError, match="num_seeds"):
        dynamic_experiment(num_seeds=0)
    with pytest.raises(ConfigurationError, match="at least one"):
        dynamic_experiment(churn_rates=())


def test_dynamic_experiment_caps_churned_cells_by_default(monkeypatch):
    # With max_rounds=None, churned cells are capped (leaderless replicas
    # are absorbing and would otherwise spin through the engines' much
    # larger default budget) while the rate-0 static row keeps the
    # classical default.  A tiny patched cap makes the bound observable.
    import repro.experiments.dynamics as dynamics_module

    monkeypatch.setattr(dynamics_module, "DEFAULT_DYNAMIC_MAX_ROUNDS", 5)
    result = dynamic_experiment(
        families=("cycle",), sizes=(12,), churn_rates=(0, 2), num_seeds=3
    )
    static_row, churn_row = result.rows
    static_records = [r for r in result.records if r.graph.endswith("@static")]
    churn_records = [r for r in result.records if "edge-churn" in r.graph]
    # The static row is not capped: BFW on cycle(12) needs more than 5
    # rounds, which it only gets under the engines' default budget.
    assert all(record.rounds_executed > 5 for record in static_records)
    assert static_row.capped_runs == 0
    # Churned replicas run at most the patched cap; the non-converged ones
    # burned exactly the cap and are reported as capped.
    assert all(record.rounds_executed <= 5 for record in churn_records)
    capped = [r for r in churn_records if not r.converged]
    assert capped
    assert all(record.rounds_executed == 5 for record in capped)
    assert churn_row.capped_runs == len(capped)
    assert result.capped_runs == len(capped)


def test_dynamic_experiment_reports_capped_runs_in_render():
    result = dynamic_experiment(
        families=("cycle",),
        sizes=(12,),
        churn_rates=(0,),
        num_seeds=2,
        max_rounds=3,
    )
    (row,) = result.rows
    assert row.capped_runs == 2  # nobody converges in 3 rounds
    rendered = result.render()
    assert "capped" in rendered


def test_capped_dynamic_budget_never_raises_the_engine_default():
    # A cap must only ever lower the budget: small graphs keep the engines'
    # default, large graphs are clipped at the ceiling.
    from repro.beeping.simulator import default_round_budget
    from repro.experiments.dynamics import (
        DEFAULT_DYNAMIC_MAX_ROUNDS,
        capped_dynamic_budget,
    )
    from repro.experiments.seeds import rng_from
    from repro.graphs.generators import make_graph

    small = GraphSpec(family="cycle", n=12)
    small_default = default_round_budget(
        make_graph("cycle", 12, rng=rng_from(small.seed, "graph", "cycle", 12))
    )
    assert small_default < DEFAULT_DYNAMIC_MAX_ROUNDS
    assert capped_dynamic_budget(small) == small_default

    large = GraphSpec(family="cycle", n=64)
    assert capped_dynamic_budget(large) == DEFAULT_DYNAMIC_MAX_ROUNDS
