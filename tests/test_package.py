"""Smoke tests for the top-level package API."""

import repro


def test_version_is_exposed():
    assert repro.__version__
    assert repro.__version__.count(".") == 2


def test_public_api_symbols_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_the_docstring():
    from repro import BFWProtocol, run_bfw
    from repro.graphs import cycle_graph

    result = run_bfw(cycle_graph(32), BFWProtocol(beep_probability=0.5), rng=0)
    assert result.converged
    assert result.final_leader_count == 1
