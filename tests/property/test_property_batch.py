"""Property-based tests for the batch layer.

Three families of invariants, each checked over hypothesis-generated seed
sets, replica counts and protocol parameters:

* **retirement is final** — once a replica converges (and, for memory
  baselines, survives the stability window) it is retired in place: its
  trajectory never leaves the single-leader configuration afterwards and it
  executes no further rounds;
* **per-replica streams are independent of the batch** — replica ``r`` of a
  batch depends only on ``seeds[r]``, never on the batch size or the order
  of its neighbours (R=1 vs R=K, and permutations, give identical replicas);
* **round counts match the sequential engines** — the aggregate every sweep
  consumes (``effective_rounds``) is identical to the per-seed loop's.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EmekKerenStyleElection, GilbertNewportKnockout
from repro.batch import BatchedEngine, BatchedMemoryEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import cycle_graph
from tests.batch.parity_harness import assert_replica_parity

SETTINGS = settings(max_examples=15, deadline=None)

seed_lists = st.lists(
    st.integers(min_value=0, max_value=2**20), min_size=1, max_size=8
)


def _engine_for(topology, protocol):
    if isinstance(protocol, (EmekKerenStyleElection, GilbertNewportKnockout)):
        return BatchedMemoryEngine(topology, protocol)
    return BatchedEngine(topology, protocol)


def _protocol_from(flag, diameter):
    if flag == "bfw":
        return BFWProtocol()
    if flag == "emek-keren":
        return EmekKerenStyleElection(diameter=diameter)
    return GilbertNewportKnockout()


protocol_flags = st.sampled_from(["bfw", "emek-keren", "gilbert-newport"])


@SETTINGS
@given(seeds=seed_lists, flag=protocol_flags)
def test_retirement_never_resurrects_a_converged_replica(seeds, flag):
    topology = cycle_graph(10)
    protocol = _protocol_from(flag, topology.diameter())
    batch = _engine_for(topology, protocol).run(seeds, max_rounds=400)
    for index in range(batch.num_replicas):
        trajectory = batch.leader_counts[index]
        assert len(trajectory) == batch.rounds_executed[index] + 1
        if batch.converged[index]:
            convergence = int(batch.convergence_round[index])
            assert 0 <= convergence <= batch.rounds_executed[index]
            # From the convergence round on, the replica never leaves the
            # single-leader configuration: it is retired, not resurrected.
            assert all(count == 1 for count in trajectory[convergence:])
            assert batch.final_leader_count[index] == 1
        else:
            assert trajectory[-1] != 1 or batch.convergence_round[index] == -1


@SETTINGS
@given(seeds=seed_lists, flag=protocol_flags)
def test_replicas_are_independent_of_batch_size(seeds, flag):
    topology = cycle_graph(8)

    def run(batch_seeds):
        protocol = _protocol_from(flag, topology.diameter())
        return _engine_for(topology, protocol).run(batch_seeds, max_rounds=300)

    full = run(seeds)
    for index, seed in enumerate(seeds):
        alone = run([seed])
        assert alone.replica(0) == full.replica(index)


@SETTINGS
@given(seeds=seed_lists, flag=protocol_flags, data=st.data())
def test_replicas_are_independent_of_batch_order(seeds, flag, data):
    topology = cycle_graph(8)
    order = data.draw(st.permutations(range(len(seeds))))

    def run(batch_seeds):
        protocol = _protocol_from(flag, topology.diameter())
        return _engine_for(topology, protocol).run(batch_seeds, max_rounds=300)

    original = run(seeds)
    permuted = run([seeds[position] for position in order])
    for new_index, position in enumerate(order):
        assert permuted.replica(new_index) == original.replica(position)


@SETTINGS
@given(
    seeds=seed_lists,
    n=st.integers(min_value=4, max_value=14),
    flag=protocol_flags,
)
def test_round_counts_match_the_sequential_engine(seeds, n, flag):
    topology = cycle_graph(n)
    protocol = _protocol_from(flag, topology.diameter())
    # The harness compares every per-replica field, so in particular the
    # effective round counts that every sweep aggregates.
    batch = assert_replica_parity(topology, protocol, seeds=seeds, max_rounds=300)
    effective = batch.effective_rounds()
    assert effective.shape == (len(seeds),)
    assert (effective <= 300).all()
