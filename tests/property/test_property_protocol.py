"""Property-based tests for protocol definitions and the engine compiler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beeping.engine import compile_protocol
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.protocol import enumerate_reachable_states
from repro.core.states import State
from repro.core.variants import EagerEliminationBFWProtocol, NoFreezeBFWProtocol

probability_strategy = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False, allow_infinity=False
)

SETTINGS = settings(max_examples=50, deadline=None)


@SETTINGS
@given(p=probability_strategy)
def test_bfw_is_valid_for_every_p(p):
    protocol = BFWProtocol(beep_probability=p)
    protocol.validate()
    assert protocol.num_states() == 6
    assert set(enumerate_reachable_states(protocol)) == set(State)


@SETTINGS
@given(p=probability_strategy)
def test_bfw_kernels_are_stochastic_for_every_p(p):
    table = BFWProtocol(beep_probability=p).transition_table()
    for kernel in (table.silent, table.heard):
        for distribution in kernel.values():
            assert abs(sum(distribution.values()) - 1.0) < 1e-9
            assert all(value >= 0 for value in distribution.values())


@SETTINGS
@given(p=probability_strategy)
def test_compiled_tables_preserve_probabilities(p):
    protocol = BFWProtocol(beep_probability=p)
    compiled = compile_protocol(protocol)
    silent_row = int(State.W_LEADER), 0
    primary = compiled.succ_primary[silent_row]
    probability = compiled.primary_probability[silent_row]
    # The primary outcome is the more likely one; together with the secondary
    # outcome it reconstructs the original coin toss.
    if primary == int(State.B_LEADER):
        assert np.isclose(probability, max(p, 1 - p)) or np.isclose(probability, p)
    table_p = (
        probability if primary == int(State.B_LEADER) else 1.0 - probability
    )
    assert np.isclose(table_p, p)


@SETTINGS
@given(diameter=st.integers(min_value=1, max_value=10_000))
def test_nonuniform_probability_is_in_range(diameter):
    protocol = NonUniformBFWProtocol(diameter=diameter)
    assert 0.0 < protocol.beep_probability <= 0.5
    assert protocol.beep_probability * (diameter + 1) == 1.0 or np.isclose(
        protocol.beep_probability, 1.0 / (diameter + 1)
    )


@SETTINGS
@given(p=probability_strategy)
def test_variant_protocols_validate_for_every_p(p):
    for factory in (NoFreezeBFWProtocol, EagerEliminationBFWProtocol):
        protocol = factory(beep_probability=p)
        protocol.validate()
        compile_protocol(protocol)
