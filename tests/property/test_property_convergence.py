"""Property-based tests on convergence behaviour (Theorem 2, Definition 1)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.graphs.generators import (
    clique_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)

small_graph_strategy = st.one_of(
    st.integers(min_value=2, max_value=10).map(path_graph),
    st.integers(min_value=3, max_value=10).map(cycle_graph),
    st.integers(min_value=2, max_value=12).map(clique_graph),
    st.integers(min_value=3, max_value=10).map(star_graph),
    st.integers(min_value=6, max_value=12).map(lambda n: erdos_renyi_graph(n, rng=n)),
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    topology=small_graph_strategy,
    p=st.sampled_from([0.2, 0.5, 0.8]),
    seed=st.integers(0, 2**20),
)
def test_bfw_always_converges_on_small_graphs(topology, p, seed):
    """Theorem 2 (almost-sure convergence), checked within a generous budget."""
    result = VectorizedEngine(topology, BFWProtocol(beep_probability=p)).run(
        rng=seed, max_rounds=60_000
    )
    assert result.converged
    assert result.final_leader_count == 1
    # Definition 1: once a single leader remains, it remains (leader count is
    # non-increasing, so converging earlier than the budget is permanent).
    assert result.leader_counts[-1] == 1


@SETTINGS
@given(topology=small_graph_strategy, seed=st.integers(0, 2**20))
def test_nonuniform_bfw_always_converges_on_small_graphs(topology, seed):
    protocol = NonUniformBFWProtocol(diameter=max(1, topology.diameter()))
    result = VectorizedEngine(topology, protocol).run(rng=seed, max_rounds=60_000)
    assert result.converged
    assert result.final_leader_count == 1


@SETTINGS
@given(seed=st.integers(0, 2**20))
def test_single_node_graph_is_trivially_converged(seed):
    from repro.graphs.topology import Topology

    lonely = Topology(1, [])
    result = VectorizedEngine(lonely, BFWProtocol()).run(rng=seed, max_rounds=10)
    assert result.converged
    assert result.convergence_round == 0
