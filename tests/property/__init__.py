"""Test package."""
