"""Property-based tests for the graph substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_tree_graph,
)
from repro.graphs.io import dumps_edge_list, loads_edge_list
from repro.graphs.properties import exact_diameter

SETTINGS = settings(max_examples=40, deadline=None)


@SETTINGS
@given(n=st.integers(min_value=2, max_value=60))
def test_path_diameter_is_n_minus_one(n):
    assert path_graph(n).diameter() == n - 1


@SETTINGS
@given(n=st.integers(min_value=3, max_value=60))
def test_cycle_diameter_is_half_n(n):
    assert cycle_graph(n).diameter() == n // 2


@SETTINGS
@given(rows=st.integers(2, 8), cols=st.integers(2, 8))
def test_grid_diameter_is_manhattan(rows, cols):
    assert grid_graph(rows, cols).diameter() == rows + cols - 2


@SETTINGS
@given(dimension=st.integers(1, 7))
def test_hypercube_diameter_is_dimension(dimension):
    assert hypercube_graph(dimension).diameter() == dimension


@SETTINGS
@given(n=st.integers(2, 40), seed=st.integers(0, 1000))
def test_random_tree_has_n_minus_one_edges_and_exact_diameter(n, seed):
    tree = random_tree_graph(n, rng=seed)
    assert tree.num_edges == n - 1
    # The heuristic diameter equals the exact one on trees.
    assert tree.diameter() == exact_diameter(tree)


@SETTINGS
@given(n=st.integers(8, 30), seed=st.integers(0, 1000))
def test_distances_satisfy_triangle_inequality(n, seed):
    graph = erdos_renyi_graph(n, rng=seed)
    nodes = [0, n // 2, n - 1]
    for a in nodes:
        for b in nodes:
            for c in nodes:
                assert graph.distance(a, c) <= graph.distance(a, b) + graph.distance(
                    b, c
                )


@SETTINGS
@given(n=st.integers(2, 40), seed=st.integers(0, 500))
def test_edge_list_round_trip(n, seed):
    tree = random_tree_graph(n, rng=seed)
    rebuilt = loads_edge_list(dumps_edge_list(tree))
    assert rebuilt.n == tree.n
    assert set(rebuilt.edges) == set(tree.edges)
