"""Property-based tests: the paper's deterministic lemmas on random executions.

These tests generate random graphs, random valid initial configurations
(satisfying Eq. (2)) and random protocol parameters with hypothesis, run BFW,
and check the deterministic properties of Section 3 exactly.  They are the
strongest evidence the implementation matches the paper: the lemmas must hold
for *every* execution, not just on average.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.flow import check_flow_conservation
from repro.analysis.invariants import (
    check_claim6,
    check_distance_bound_all_rounds,
    check_leader_always_exists,
    check_leader_count_nonincreasing,
    check_max_beep_count_is_leader,
)
from repro.analysis.ohm import check_ohms_law, sample_random_path
from repro.beeping.adversary import random_valid_initial_states
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_tree_graph,
    star_graph,
)

#: Strategy over small graphs of diverse shapes.
graph_strategy = st.one_of(
    st.integers(min_value=4, max_value=12).map(path_graph),
    st.integers(min_value=4, max_value=12).map(cycle_graph),
    st.integers(min_value=4, max_value=10).map(star_graph),
    st.integers(min_value=6, max_value=14).map(lambda n: random_tree_graph(n, rng=n)),
    st.integers(min_value=8, max_value=14).map(lambda n: erdos_renyi_graph(n, rng=n)),
)

#: Strategy over protocol parameters.
probability_strategy = st.sampled_from([0.1, 0.25, 0.5, 0.75, 0.9])

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run(topology, p, seed, leader_probability=1.0, max_rounds=6000):
    protocol = BFWProtocol(beep_probability=p)
    initial = None
    if leader_probability < 1.0:
        initial = random_valid_initial_states(
            topology, rng=seed, leader_probability=leader_probability
        )
    engine = VectorizedEngine(topology, protocol)
    result = engine.run(
        rng=seed, record_trace=True, max_rounds=max_rounds, initial_states=initial
    )
    assert result.trace is not None
    return result


@SETTINGS
@given(topology=graph_strategy, p=probability_strategy, seed=st.integers(0, 2**20))
def test_lemma9_leader_always_exists(topology, p, seed):
    result = _run(topology, p, seed)
    check_leader_always_exists(result.trace)
    check_leader_count_nonincreasing(result.trace)


@SETTINGS
@given(topology=graph_strategy, p=probability_strategy, seed=st.integers(0, 2**20))
def test_lemma9_proof_invariant_max_beeper_is_leader(topology, p, seed):
    result = _run(topology, p, seed)
    check_max_beep_count_is_leader(result.trace)


@SETTINGS
@given(topology=graph_strategy, p=probability_strategy, seed=st.integers(0, 2**20))
def test_claim6_local_transitions(topology, p, seed):
    result = _run(topology, p, seed, max_rounds=1500)
    check_claim6(result.trace, topology)


@SETTINGS
@given(topology=graph_strategy, p=probability_strategy, seed=st.integers(0, 2**20))
def test_lemma11_distance_bound(topology, p, seed):
    result = _run(topology, p, seed, max_rounds=1500)
    check_distance_bound_all_rounds(result.trace, topology)


@SETTINGS
@given(
    topology=graph_strategy,
    p=probability_strategy,
    seed=st.integers(0, 2**20),
    walk_length=st.integers(1, 15),
)
def test_corollary8_ohms_law_on_random_walks(topology, p, seed, walk_length):
    result = _run(topology, p, seed, max_rounds=1500)
    walk = sample_random_path(topology, walk_length, rng=seed)
    assert check_ohms_law(result.trace, walk, topology=topology) == []
    assert check_flow_conservation(result.trace, walk) == []


@SETTINGS
@given(
    topology=graph_strategy,
    p=probability_strategy,
    seed=st.integers(0, 2**20),
    leader_probability=st.sampled_from([0.1, 0.3, 0.7]),
)
def test_invariants_hold_with_partial_initial_leaders(
    topology, p, seed, leader_probability
):
    """Eq. (2) only requires *at least one* leader; the lemmas must hold for
    any such planting, not just the all-leaders start."""
    result = _run(
        topology, p, seed, leader_probability=leader_probability, max_rounds=1500
    )
    check_leader_always_exists(result.trace)
    check_claim6(result.trace, topology)
    check_distance_bound_all_rounds(result.trace, topology)
