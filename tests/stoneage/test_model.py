"""Tests for the synchronous stone-age model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.graphs.generators import path_graph, star_graph
from repro.stoneage.model import Observation, StoneAgeProtocol, StoneAgeSimulator


class CountingProtocol(StoneAgeProtocol):
    """Each node displays its parity and flips it when it sees an 'odd' neighbour."""

    name = "counting"
    alphabet = ("even", "odd")

    @property
    def initial_state(self):
        return 0

    def message(self, state):
        return "odd" if state % 2 else "even"

    def transition(self, state, observation, rng):
        if observation.at_least("odd", 1):
            return state + 1
        return state

    def is_leader(self, state):
        return state == 0


def test_observation_threshold_clamps_counts():
    observation = Observation(counts={"odd": 2}, threshold=2)
    assert observation.at_least("odd", 1)
    assert observation.at_least("odd", 2)
    with pytest.raises(ConfigurationError):
        observation.at_least("odd", 3)
    assert not observation.at_least("even", 1)


def test_simulator_threshold_validation(small_path):
    with pytest.raises(ConfigurationError):
        StoneAgeSimulator(small_path, CountingProtocol(), threshold=0)


def test_simulator_runs_and_records(small_path):
    simulator = StoneAgeSimulator(small_path, CountingProtocol(), threshold=1)
    result = simulator.run(max_rounds=5, rng=0, record_states=True)
    assert len(result.leader_counts) == 6
    assert len(result.history) == 6
    assert result.protocol_name == "counting"


def test_simulator_with_custom_initial_states():
    topology = star_graph(5)
    simulator = StoneAgeSimulator(topology, CountingProtocol())
    # Only the hub starts odd; all leaves see it and flip every round.
    result = simulator.run(
        max_rounds=2, rng=0, initial_states=[1, 0, 0, 0, 0], record_states=True
    )
    first_round_states = result.history[1]
    assert first_round_states[1] == 1  # leaf flipped after seeing the odd hub
    assert first_round_states[0] == 1  # hub saw only even leaves, stayed odd


def test_simulator_rejects_wrong_number_of_initial_states(small_path):
    simulator = StoneAgeSimulator(small_path, CountingProtocol())
    with pytest.raises(SimulationError):
        simulator.run(max_rounds=1, initial_states=[0, 1])


def test_convergence_round_helper():
    from repro.stoneage.model import StoneAgeResult

    result = StoneAgeResult(
        final_states=(0,),
        leader_counts=(3, 2, 1, 1),
        history=(),
    )
    assert result.convergence_round() == 2
    assert result.final_leader_count == 1

    diverged = StoneAgeResult(
        final_states=(0,), leader_counts=(3, 2, 2), history=()
    )
    assert diverged.convergence_round() is None
