"""Test package."""
