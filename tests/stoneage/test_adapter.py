"""Tests for running BFW inside the stone-age model (experiment E9)."""

import numpy as np
import pytest

from repro.analysis.invariants import check_all_invariants
from repro.beeping.trace import ExecutionTrace
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.graphs.generators import cycle_graph, path_graph
from repro.stoneage.adapter import (
    BEEP,
    SILENT,
    BeepingToStoneAgeAdapter,
    run_in_stone_age_model,
)


def test_adapter_messages_match_beeping_classification():
    adapter = BeepingToStoneAgeAdapter(BFWProtocol())
    assert adapter.message(State.B_LEADER) == BEEP
    assert adapter.message(State.B_FOLLOWER) == BEEP
    for state in (State.W_LEADER, State.F_LEADER, State.W_FOLLOWER, State.F_FOLLOWER):
        assert adapter.message(state) == SILENT


def test_adapter_preserves_leader_classification():
    adapter = BeepingToStoneAgeAdapter(BFWProtocol())
    assert adapter.is_leader(State.W_LEADER)
    assert not adapter.is_leader(State.B_FOLLOWER)
    assert adapter.initial_state is State.W_LEADER
    assert adapter.wrapped.name == "bfw"


def test_bfw_converges_in_stone_age_model():
    topology = path_graph(10)
    result = run_in_stone_age_model(topology, BFWProtocol(), max_rounds=5000, rng=1)
    assert result.final_leader_count == 1
    assert result.convergence_round() is not None


def test_stone_age_execution_satisfies_bfw_invariants():
    """The adapter must produce executions indistinguishable from beeping ones."""
    topology = cycle_graph(8)
    result = run_in_stone_age_model(
        topology, BFWProtocol(), max_rounds=3000, rng=2, record_states=True
    )
    states = np.array(
        [[int(state) for state in row] for row in result.history], dtype=np.int8
    )
    trace = ExecutionTrace(
        states=states,
        beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
        leader_values=(
            int(State.W_LEADER),
            int(State.B_LEADER),
            int(State.F_LEADER),
        ),
        protocol_name="stone-age(bfw)",
        topology_name=topology.name,
    )
    check_all_invariants(trace, topology)


def test_threshold_does_not_change_behaviour_distribution():
    """Any b >= 1 gives the same information for two-symbol protocols."""
    topology = path_graph(8)
    rounds_b1 = [
        run_in_stone_age_model(
            topology, BFWProtocol(), max_rounds=5000, rng=seed, threshold=1
        ).convergence_round()
        for seed in range(8)
    ]
    rounds_b3 = [
        run_in_stone_age_model(
            topology, BFWProtocol(), max_rounds=5000, rng=seed, threshold=3
        ).convergence_round()
        for seed in range(8)
    ]
    # Identical seeds and identical information: identical executions.
    assert rounds_b1 == rounds_b3
