"""Tests for the vectorised engine and protocol compilation."""

import numpy as np
import pytest

from repro.beeping.adversary import planted_leaders_initial_states
from repro.beeping.engine import VectorizedEngine, compile_protocol, run_bfw
from repro.beeping.simulator import Simulator
from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.protocol import BeepingProtocol, TransitionTable
from repro.core.states import State
from repro.core.variants import NoFreezeBFWProtocol
from repro.errors import ProtocolError, SimulationError
from repro.graphs.generators import clique_graph, cycle_graph, path_graph


def test_compile_bfw_tables():
    compiled = compile_protocol(BFWProtocol(beep_probability=0.25))
    assert compiled.num_states == 6
    assert compiled.initial_state == int(State.W_LEADER)
    assert set(compiled.beeping_values) == {int(State.B_LEADER), int(State.B_FOLLOWER)}
    assert set(compiled.leader_values) == {
        int(State.W_LEADER),
        int(State.B_LEADER),
        int(State.F_LEADER),
    }
    # δ⊤ from W• goes deterministically to B◦.
    heard = 1
    assert compiled.succ_primary[int(State.W_LEADER), heard] == int(State.B_FOLLOWER)
    assert compiled.primary_probability[int(State.W_LEADER), heard] == 1.0
    # δ⊥ from W• is the p-coin.
    silent = 0
    assert compiled.primary_probability[int(State.W_LEADER), silent] == pytest.approx(
        0.75
    )


def test_compile_rejects_more_than_two_outcomes():
    class ThreeWay(BeepingProtocol):
        name = "three-way"

        @property
        def initial_state(self):
            return State.W_LEADER

        def states(self):
            return (State.W_LEADER, State.B_LEADER, State.F_LEADER)

        def is_beeping(self, state):
            return state is State.B_LEADER

        def is_leader(self, state):
            return True

        def transition_table(self):
            return TransitionTable(
                silent={
                    State.W_LEADER: {
                        State.W_LEADER: 0.4,
                        State.B_LEADER: 0.3,
                        State.F_LEADER: 0.3,
                    },
                    State.F_LEADER: {State.W_LEADER: 1.0},
                },
                heard={
                    State.W_LEADER: {State.W_LEADER: 1.0},
                    State.B_LEADER: {State.F_LEADER: 1.0},
                    State.F_LEADER: {State.W_LEADER: 1.0},
                },
            )

    with pytest.raises(ProtocolError):
        compile_protocol(ThreeWay())


def test_engine_converges_on_standard_graphs(bfw):
    for topology in (path_graph(16), cycle_graph(20), clique_graph(30)):
        result = VectorizedEngine(topology, bfw).run(rng=1, max_rounds=100_000)
        assert result.converged, topology.name
        assert result.final_leader_count == 1


def test_engine_is_reproducible(bfw, small_cycle):
    engine = VectorizedEngine(small_cycle, bfw)
    first = engine.run(rng=42)
    second = engine.run(rng=42)
    assert first.convergence_round == second.convergence_round
    assert first.leader_counts == second.leader_counts


def test_engine_different_seeds_differ(bfw):
    topology = path_graph(24)
    engine = VectorizedEngine(topology, bfw)
    rounds = {engine.run(rng=seed).convergence_round for seed in range(6)}
    assert len(rounds) > 1


def test_engine_initial_states_planting(bfw, small_path):
    initial = planted_leaders_initial_states(small_path, (0,))
    result = VectorizedEngine(small_path, bfw).run(rng=0, initial_states=initial)
    assert result.convergence_round == 0


def test_engine_rejects_bad_initial_states(bfw, small_path):
    engine = VectorizedEngine(small_path, bfw)
    with pytest.raises(SimulationError):
        engine.run(initial_states=[0] * (small_path.n + 1))
    with pytest.raises(SimulationError):
        engine.run(initial_states=[99] * small_path.n)


def test_engine_trace_consistent_with_leader_counts(bfw, small_cycle):
    result = VectorizedEngine(small_cycle, bfw).run(rng=3, record_trace=True)
    assert result.trace is not None
    from_trace = [
        result.trace.leader_count(t) for t in range(result.rounds_executed + 1)
    ]
    assert tuple(from_trace) == result.leader_counts


def test_engine_beep_count_recording(bfw, small_path):
    engine = VectorizedEngine(small_path, bfw)
    result = engine.run(rng=5, record_trace=True, record_beep_counts=True)
    assert engine.last_beep_counts is not None
    assert result.trace is not None
    assert (engine.last_beep_counts == result.trace.beep_counts()).all()


def test_engine_and_reference_simulator_agree_statistically():
    """Both engines implement the same process; their mean convergence times
    on a small cycle must be statistically indistinguishable."""
    topology = cycle_graph(10)
    protocol = BFWProtocol()
    engine_rounds = [
        VectorizedEngine(topology, protocol).run(rng=seed).convergence_round
        for seed in range(25)
    ]
    simulator_rounds = [
        Simulator(topology, protocol).run(rng=seed + 1000).convergence_round
        for seed in range(25)
    ]
    mean_engine = np.mean(engine_rounds)
    mean_simulator = np.mean(simulator_rounds)
    # Convergence on a 10-cycle takes tens of rounds; allow a generous factor.
    assert 0.4 < mean_engine / mean_simulator < 2.5


def test_run_bfw_convenience_wrapper():
    result = run_bfw(path_graph(12), rng=7)
    assert result.converged
    result_nonuniform = run_bfw(
        path_graph(12), NonUniformBFWProtocol(diameter=11), rng=7
    )
    assert result_nonuniform.converged


def test_no_freeze_variant_compiles_and_runs():
    result = VectorizedEngine(path_graph(8), NoFreezeBFWProtocol()).run(
        rng=2, max_rounds=5000
    )
    # The ablated protocol has no single-leader guarantee; we only require
    # that the engine executes it without error.
    assert result.rounds_executed >= 1
