"""Test package."""
