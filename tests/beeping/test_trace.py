"""Tests for execution traces."""

import numpy as np
import pytest

from repro.beeping.trace import ExecutionTrace, TraceBuilder
from repro.core.states import State
from repro.errors import TraceError

BEEPING = (int(State.B_LEADER), int(State.B_FOLLOWER))
LEADERS = (int(State.W_LEADER), int(State.B_LEADER), int(State.F_LEADER))


def _toy_trace() -> ExecutionTrace:
    """A hand-built 3-node trace: a leader beeps, the wave relays right."""
    rows = [
        [State.W_LEADER, State.W_FOLLOWER, State.W_FOLLOWER],
        [State.B_LEADER, State.W_FOLLOWER, State.W_FOLLOWER],
        [State.F_LEADER, State.B_FOLLOWER, State.W_FOLLOWER],
        [State.W_LEADER, State.F_FOLLOWER, State.B_FOLLOWER],
    ]
    states = np.array([[int(s) for s in row] for row in rows], dtype=np.int8)
    return ExecutionTrace(
        states=states,
        beeping_values=BEEPING,
        leader_values=LEADERS,
        protocol_name="bfw",
        topology_name="path(3)",
        seed=1,
    )


def test_shape_queries():
    trace = _toy_trace()
    assert trace.n == 3
    assert trace.num_rounds == 3
    assert list(trace.rounds()) == [0, 1, 2, 3]


def test_state_queries():
    trace = _toy_trace()
    assert trace.bfw_state_of(0, 1) is State.B_LEADER
    assert trace.state_of(2, 3) == int(State.B_FOLLOWER)


def test_beeping_and_leader_masks():
    trace = _toy_trace()
    assert trace.beeping_nodes(0) == ()
    assert trace.beeping_nodes(1) == (0,)
    assert trace.beeping_nodes(2) == (1,)
    assert trace.leaders(0) == (0,)
    assert trace.leader_count(3) == 1


def test_beep_counts_accumulate():
    trace = _toy_trace()
    counts = trace.beep_counts()
    assert list(counts) == [1, 1, 1]
    assert trace.beep_count_of(0, 1) == 1
    assert trace.beep_count_of(2, 2) == 0


def test_leader_counts_and_convergence_round():
    trace = _toy_trace()
    assert list(trace.leader_counts()) == [1, 1, 1, 1]
    assert trace.convergence_round() == 0


def test_convergence_round_none_when_multiple_leaders():
    states = np.full((4, 3), int(State.W_LEADER), dtype=np.int8)
    trace = ExecutionTrace(states, BEEPING, LEADERS)
    assert trace.convergence_round() is None


def test_round_out_of_range_raises():
    trace = _toy_trace()
    with pytest.raises(TraceError):
        trace.state_of(0, 10)


def test_serialisation_round_trip():
    trace = _toy_trace()
    rebuilt = ExecutionTrace.from_dict(trace.as_dict())
    assert rebuilt.n == trace.n
    assert rebuilt.num_rounds == trace.num_rounds
    assert (rebuilt.states == trace.states).all()
    assert rebuilt.seed == 1


def test_trace_builder():
    builder = TraceBuilder(BEEPING, LEADERS, protocol_name="bfw")
    builder.record([int(State.W_LEADER)] * 3)
    builder.record([int(State.B_LEADER)] * 3)
    assert len(builder) == 2
    trace = builder.build()
    assert trace.num_rounds == 1
    assert trace.beeping_nodes(1) == (0, 1, 2)


def test_trace_builder_empty_raises():
    builder = TraceBuilder(BEEPING, LEADERS)
    with pytest.raises(TraceError):
        builder.build()


def test_trace_rejects_bad_shape():
    with pytest.raises(TraceError):
        ExecutionTrace(np.zeros(5, dtype=np.int8), BEEPING, LEADERS)
