"""Tests for the reference simulator."""

import numpy as np
import pytest

from repro.beeping.network import Configuration, single_leader_configuration
from repro.beeping.observers import LeaderCountTracker, Observer, RoundSnapshot
from repro.beeping.simulator import (
    MemorySimulator,
    Simulator,
    default_round_budget,
)
from repro.baselines.gilbert_newport import GilbertNewportKnockout
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.errors import ConfigurationError
from repro.graphs.generators import clique_graph, path_graph


def test_default_round_budget_scales_with_d_squared():
    small = default_round_budget(path_graph(5))
    large = default_round_budget(path_graph(50))
    assert large > small
    assert large >= 49 * 49  # at least D^2


def test_bfw_converges_on_small_path(small_path, bfw):
    result = Simulator(small_path, bfw).run(rng=2)
    assert result.converged
    assert result.final_leader_count == 1
    assert result.convergence_round is not None
    assert result.convergence_round <= result.rounds_executed


def test_bfw_converges_on_clique(bfw):
    result = Simulator(clique_graph(12), bfw).run(rng=4)
    assert result.converged
    assert result.final_leader_count == 1


def test_single_leader_initial_configuration_is_already_converged(small_path, bfw):
    configuration = single_leader_configuration(small_path, bfw, leader=0)
    result = Simulator(small_path, bfw).run(
        rng=0, initial_configuration=configuration
    )
    assert result.converged
    assert result.convergence_round == 0
    assert result.rounds_executed == 0


def test_leader_count_never_increases(small_cycle, bfw):
    result = Simulator(small_cycle, bfw).run(rng=9, stop_at_single_leader=True)
    counts = np.asarray(result.leader_counts)
    assert (np.diff(counts) <= 0).all()
    assert counts[0] == small_cycle.n


def test_zero_max_rounds_executes_nothing(small_path, bfw):
    result = Simulator(small_path, bfw).run(max_rounds=0, rng=0)
    assert result.rounds_executed == 0
    assert not result.converged
    assert result.final_leader_count == small_path.n


def test_negative_max_rounds_rejected(small_path, bfw):
    with pytest.raises(ConfigurationError):
        Simulator(small_path, bfw).run(max_rounds=-1)


def test_record_trace_matches_result(small_path, bfw):
    result = Simulator(small_path, bfw).run(rng=5, record_trace=True)
    assert result.trace is not None
    assert result.trace.num_rounds == result.rounds_executed
    assert result.trace.leader_count(result.rounds_executed) == 1
    assert result.trace.convergence_round() == result.convergence_round


def test_custom_observer_sees_every_round(small_path, bfw):
    class Counter(Observer):
        def __init__(self) -> None:
            self.calls = 0

        def on_round(self, snapshot: RoundSnapshot) -> None:
            self.calls += 1

    counter = Counter()
    result = Simulator(small_path, bfw).run(rng=1, observers=[counter])
    # Round 0 plus one call per executed round.
    assert counter.calls == result.rounds_executed + 1


def test_observer_can_stop_early(small_path, bfw):
    class StopAtTen(Observer):
        def should_stop(self, snapshot: RoundSnapshot) -> bool:
            return snapshot.round_index >= 10

    result = Simulator(small_path, bfw).run(
        rng=1, observers=[StopAtTen()], stop_at_single_leader=False
    )
    assert result.rounds_executed == 10


def test_result_as_dict_round_trips_scalars(small_path, bfw):
    result = Simulator(small_path, bfw).run(rng=3)
    payload = result.as_dict()
    assert payload["converged"] is True
    assert payload["protocol_name"] == "bfw"
    assert payload["seed"] == 3


def test_memory_simulator_knockout_on_clique():
    simulator = MemorySimulator(clique_graph(16), GilbertNewportKnockout())
    result = simulator.run(rng=5, max_rounds=2000)
    assert result.converged
    assert result.final_leader_count == 1


def test_memory_simulator_leader_counts_non_increasing():
    simulator = MemorySimulator(clique_graph(16), GilbertNewportKnockout())
    result = simulator.run(rng=6, max_rounds=2000)
    counts = np.asarray(result.leader_counts)
    assert (np.diff(counts) <= 0).all()
