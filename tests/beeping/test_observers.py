"""Tests for simulation observers."""

import numpy as np
import pytest

from repro.beeping.observers import (
    BeepCountTracker,
    CallbackObserver,
    LeaderCountTracker,
    RoundSnapshot,
    SingleLeaderStopper,
    StateHistogramTracker,
    TraceRecorder,
)
from repro.beeping.simulator import Simulator
from repro.core.states import State
from repro.errors import SimulationError


def _snapshot(round_index, leaders, beeping, n=4):
    leader_mask = np.zeros(n, dtype=bool)
    leader_mask[list(leaders)] = True
    beep_mask = np.zeros(n, dtype=bool)
    beep_mask[list(beeping)] = True
    return RoundSnapshot(
        round_index=round_index,
        state_values=np.zeros(n, dtype=np.int8),
        beeping=beep_mask,
        leaders=leader_mask,
        heard=beep_mask.copy(),
    )


def test_snapshot_counts():
    snapshot = _snapshot(0, leaders=(0, 1), beeping=(1,))
    assert snapshot.leader_count == 2
    assert snapshot.beep_count == 1


def test_leader_count_tracker_convergence_round():
    tracker = LeaderCountTracker()
    tracker.on_round(_snapshot(0, leaders=(0, 1, 2), beeping=()))
    tracker.on_round(_snapshot(1, leaders=(0, 1), beeping=()))
    tracker.on_round(_snapshot(2, leaders=(0,), beeping=()))
    tracker.on_round(_snapshot(3, leaders=(0,), beeping=()))
    assert tracker.counts == [3, 2, 1, 1]
    assert tracker.convergence_round == 2
    assert tracker.final_count == 1


def test_leader_count_tracker_resets_if_count_rises():
    tracker = LeaderCountTracker()
    tracker.on_round(_snapshot(0, leaders=(0,), beeping=()))
    tracker.on_round(_snapshot(1, leaders=(0, 1), beeping=()))
    assert tracker.convergence_round is None


def test_single_leader_stopper_patience():
    stopper = SingleLeaderStopper(patience=2)
    assert not stopper.should_stop(_snapshot(0, leaders=(0,), beeping=()))
    assert not stopper.should_stop(_snapshot(1, leaders=(0,), beeping=()))
    assert stopper.should_stop(_snapshot(2, leaders=(0,), beeping=()))


def test_single_leader_stopper_rejects_negative_patience():
    with pytest.raises(SimulationError):
        SingleLeaderStopper(patience=-1)


def test_beep_count_tracker_accumulates():
    tracker = BeepCountTracker()
    tracker.on_start(4, "bfw", "test")
    tracker.on_round(_snapshot(0, leaders=(), beeping=(0,)))
    tracker.on_round(_snapshot(1, leaders=(), beeping=(0, 2)))
    assert list(tracker.counts) == [2, 0, 1, 0]
    assert len(tracker.history) == 2


def test_beep_count_tracker_requires_start():
    tracker = BeepCountTracker()
    with pytest.raises(SimulationError):
        tracker.on_round(_snapshot(0, leaders=(), beeping=()))


def test_callback_observer():
    seen = []
    observer = CallbackObserver(
        on_round=lambda snapshot: seen.append(snapshot.round_index),
        should_stop=lambda snapshot: snapshot.round_index >= 1,
    )
    observer.on_round(_snapshot(0, leaders=(), beeping=()))
    assert not observer.should_stop(_snapshot(0, leaders=(), beeping=()))
    assert observer.should_stop(_snapshot(1, leaders=(), beeping=()))
    assert seen == [0]


def test_state_histogram_tracker():
    tracker = StateHistogramTracker()
    snapshot = _snapshot(0, leaders=(0,), beeping=())
    tracker.on_round(snapshot)
    assert tracker.histograms[0] == {0: 4}


def test_trace_recorder_produces_usable_trace(small_path, bfw):
    recorder = TraceRecorder(
        beeping_values=[int(State.B_LEADER), int(State.B_FOLLOWER)],
        leader_values=[int(s) for s in State if s.is_leader],
    )
    result = Simulator(small_path, bfw).run(rng=1, observers=[recorder])
    trace = recorder.trace()
    assert trace.num_rounds == result.rounds_executed
    assert trace.leader_count(trace.num_rounds) == result.final_leader_count


def test_trace_recorder_without_rounds_raises():
    recorder = TraceRecorder(beeping_values=[1], leader_values=[0])
    with pytest.raises(SimulationError):
        recorder.trace()
