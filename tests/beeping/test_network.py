"""Tests for Configuration (per-round network state)."""

import pytest

from repro.beeping.network import (
    Configuration,
    all_waiting_leaders,
    single_leader_configuration,
)
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.errors import SimulationError
from repro.graphs.generators import path_graph


def test_default_configuration_matches_eq2(small_path, bfw):
    configuration = Configuration(small_path, bfw)
    assert configuration.leader_count() == small_path.n
    assert configuration.beeping_nodes() == ()
    assert all(
        configuration.state_of(node) is State.W_LEADER
        for node in small_path.nodes()
    )


def test_explicit_states_sequence(small_path, bfw):
    states = [State.W_FOLLOWER] * small_path.n
    states[3] = State.B_LEADER
    configuration = Configuration(small_path, bfw, states)
    assert configuration.beeping_nodes() == (3,)
    assert configuration.leaders() == (3,)


def test_states_mapping_defaults_missing_nodes(small_path, bfw):
    configuration = Configuration(small_path, bfw, {0: State.B_FOLLOWER})
    assert configuration.state_of(0) is State.B_FOLLOWER
    assert configuration.state_of(1) is State.W_LEADER


def test_wrong_length_rejected(small_path, bfw):
    with pytest.raises(SimulationError):
        Configuration(small_path, bfw, [State.W_LEADER] * (small_path.n - 1))


def test_invalid_state_rejected(small_path):
    protocol = BFWProtocol()
    with pytest.raises(SimulationError):
        Configuration(small_path, protocol, ["not-a-state"] * small_path.n)


def test_hears_beep_includes_self_and_neighbours(bfw):
    topology = path_graph(4)
    states = [State.W_FOLLOWER, State.B_FOLLOWER, State.W_FOLLOWER, State.W_FOLLOWER]
    configuration = Configuration(topology, bfw, states)
    assert configuration.hears_beep(0)      # neighbour of the beeper
    assert configuration.hears_beep(1)      # the beeper itself
    assert configuration.hears_beep(2)      # other neighbour
    assert not configuration.hears_beep(3)  # two hops away


def test_heard_vector_matches_scalar_queries(small_cycle, bfw):
    states = [State.W_FOLLOWER] * small_cycle.n
    states[0] = State.B_LEADER
    states[6] = State.B_FOLLOWER
    configuration = Configuration(small_cycle, bfw, states)
    heard = configuration.heard_vector()
    for node in small_cycle.nodes():
        assert bool(heard[node]) == configuration.hears_beep(node)


def test_replace_returns_new_configuration(small_path, bfw):
    configuration = Configuration(small_path, bfw)
    updated = configuration.replace({0: State.W_FOLLOWER})
    assert configuration.state_of(0) is State.W_LEADER
    assert updated.state_of(0) is State.W_FOLLOWER


def test_counts_by_state(small_path, bfw):
    configuration = single_leader_configuration(small_path, bfw, leader=4)
    counts = configuration.counts_by_state()
    assert counts[State.W_LEADER] == 1
    assert counts[State.W_FOLLOWER] == small_path.n - 1


def test_helpers(small_path, bfw):
    assert all_waiting_leaders(small_path, bfw).leader_count() == small_path.n
    single = single_leader_configuration(small_path, bfw, leader=2)
    assert single.leaders() == (2,)
