"""Tests for initial-configuration construction (Eq. (2) and beyond)."""

import numpy as np
import pytest

from repro.beeping.adversary import (
    all_leaders_initial_states,
    leaderless_wave_on_cycle_states,
    planted_leaders_initial_states,
    random_unrestricted_states,
    random_valid_initial_states,
    satisfies_initial_condition,
    two_leaders_at_diameter_states,
)
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph, path_graph, star_graph


def test_all_leaders_matches_eq2(small_path):
    states = all_leaders_initial_states(small_path)
    assert (states == int(State.W_LEADER)).all()
    assert satisfies_initial_condition(states)


def test_planted_leaders(small_path):
    states = planted_leaders_initial_states(small_path, (0, 4))
    assert states[0] == int(State.W_LEADER)
    assert states[4] == int(State.W_LEADER)
    assert (states == int(State.W_LEADER)).sum() == 2
    assert satisfies_initial_condition(states)


def test_planted_leaders_requires_nonempty(small_path):
    with pytest.raises(ConfigurationError):
        planted_leaders_initial_states(small_path, ())


def test_planted_leaders_rejects_out_of_range(small_path):
    with pytest.raises(ConfigurationError):
        planted_leaders_initial_states(small_path, (small_path.n,))


def test_two_leaders_at_diameter_on_path():
    topology = path_graph(15)
    states = two_leaders_at_diameter_states(topology)
    leaders = np.flatnonzero(states == int(State.W_LEADER))
    assert set(leaders) == {0, 14}


def test_random_valid_states_always_have_a_leader():
    topology = star_graph(20)
    for seed in range(10):
        states = random_valid_initial_states(topology, rng=seed, leader_probability=0.1)
        assert satisfies_initial_condition(states)


def test_random_valid_states_rejects_bad_probability(small_path):
    with pytest.raises(ConfigurationError):
        random_valid_initial_states(small_path, leader_probability=1.5)


def test_random_unrestricted_states_cover_all_states():
    topology = path_graph(200)
    states = random_unrestricted_states(topology, rng=0)
    assert set(np.unique(states)) == set(int(s) for s in State)


def test_leaderless_wave_requires_cycle(small_path):
    with pytest.raises(ConfigurationError):
        leaderless_wave_on_cycle_states(small_path)


def test_leaderless_wave_rotates_forever():
    """The Section 5 obstruction: a leaderless wave on a cycle never dies."""
    topology = cycle_graph(12)
    states = leaderless_wave_on_cycle_states(topology)
    assert not satisfies_initial_condition(states)
    engine = VectorizedEngine(topology, BFWProtocol())
    result = engine.run(
        max_rounds=300, rng=0, initial_states=states, record_trace=True,
        stop_at_single_leader=False,
    )
    trace = result.trace
    assert trace is not None
    # No leader ever appears, yet exactly one node beeps in every round.
    for round_index in range(trace.num_rounds + 1):
        assert trace.leader_count(round_index) == 0
        assert len(trace.beeping_nodes(round_index)) == 1


def test_satisfies_initial_condition_rejects_beeping_start(small_path):
    states = planted_leaders_initial_states(small_path, (0,))
    states[3] = int(State.B_FOLLOWER)
    assert not satisfies_initial_condition(states)
