"""Experiment E10 — the population-protocols row of the related work.

Constant-state leader election in the classical population-protocols model
needs ``Ω(n²)`` expected pairwise interactions on the clique [10]; the
folklore pairwise-elimination protocol matches that bound.  The benchmark
measures its convergence interactions across population sizes, checks the
quadratic shape, and reports the broadcast (epidemic) time for context, since
graph-general population leader election is governed by it [2].
"""

import numpy as np
import pytest

from repro.graphs.generators import clique_graph
from repro.population.protocols import (
    INFECTED,
    SUSCEPTIBLE,
    EpidemicBroadcast,
    PairwiseElimination,
)
from repro.population.scheduler import PopulationScheduler
from repro.viz.table_format import render_table

SIZES = (16, 32, 64)
SEEDS = tuple(range(5))


def _run_all():
    election_rows = []
    for n in SIZES:
        interactions = []
        for seed in SEEDS:
            scheduler = PopulationScheduler(clique_graph(n), PairwiseElimination())
            result = scheduler.run(max_interactions=400 * n * n, rng=seed)
            assert result.converged
            interactions.append(result.convergence_interactions)
        election_rows.append(
            (n, float(np.mean(interactions)), float(np.mean(interactions)) / (n * n))
        )
    # Epidemic broadcast time for context (parallel time ~ log n on a clique).
    broadcast_rows = []
    for n in SIZES:
        times = []
        for seed in SEEDS:
            scheduler = PopulationScheduler(clique_graph(n), EpidemicBroadcast())
            states = [SUSCEPTIBLE] * n
            states[0] = INFECTED
            result = scheduler.run(
                max_interactions=200 * n * int(np.log2(n) + 2),
                rng=seed,
                initial_states=states,
                stop_at_single_leader=False,
            )
            times.append(result.parallel_time)
        broadcast_rows.append((n, float(np.mean(times))))
    return election_rows, broadcast_rows


@pytest.mark.experiment("E10")
def test_population_protocol_leader_election_quadratic(benchmark, report):
    election_rows, broadcast_rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = render_table(
        ["n", "mean interactions to 1 leader", "interactions / n^2"], election_rows
    )
    broadcast_table = render_table(
        ["n", "epidemic parallel time (upper bound run)"], broadcast_rows
    )
    report(
        "Experiment E10 — population protocols (related work)",
        table + "\n\n" + broadcast_table,
    )
    # Quadratic shape: interactions / n^2 stays within a constant band.
    ratios = [row[2] for row in election_rows]
    assert max(ratios) / min(ratios) < 5.0
    # And interactions grow by roughly 4x per doubling of n.
    assert 2.0 < election_rows[1][1] / election_rows[0][1] < 8.0
    assert 2.0 < election_rows[2][1] / election_rows[1][1] < 8.0
