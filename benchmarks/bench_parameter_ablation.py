"""Experiment E8 — the role of p and of each protocol ingredient.

Part 1 sweeps the beep probability ``p`` on a fixed path: Theorems 2 and 3
predict that smaller ``p`` (down to ~1/D) speeds convergence up on
high-diameter graphs, while the protocol remains correct for every constant
``p ∈ (0, 1)``.

Part 2 removes one ingredient at a time (the Frozen state; wave relaying) and
shows the protocol breaks: without relaying, distant leaders can never
eliminate each other; without freezing, waves can bounce back and eliminate
their own source, voiding Lemma 9's guarantee.
"""

import pytest

from repro.experiments.figures import ablation_experiment


@pytest.mark.experiment("E8")
def test_parameter_sweep_and_structural_ablations(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_experiment(
            diameter=16,
            probabilities=(0.05, 0.1, 0.25, 0.5, 0.9),
            num_seeds=6,
            master_seed=6,
        ),
        rounds=1,
        iterations=1,
    )
    report("Experiment E8 — parameter sweep and ablations", result.render())

    # The full protocol converges for every p.
    assert all(point.convergence_rate == 1.0 for point in result.sweep_points)

    # On a diameter-16 path, small p (close to 1/(D+1) ≈ 0.06) beats p = 0.9
    # on average — the Theorem 3 effect.
    by_p = {point.beep_probability: point.rounds.mean for point in result.sweep_points}
    assert by_p[0.05] < by_p[0.9]

    by_variant = {outcome.variant: outcome for outcome in result.ablations}
    # The full protocol converges; the no-relay ablation cannot.
    assert by_variant["bfw (full)"].convergence_rate == 1.0
    assert by_variant["no-relay"].convergence_rate == 0.0
    # The no-freeze ablation loses the "a leader always exists" guarantee or
    # fails to converge within the budget in at least some runs.
    no_freeze = by_variant["no-freeze"]
    assert no_freeze.convergence_rate < 1.0 or no_freeze.leaderless_rate > 0.0
