"""Experiment E3 — Theorem 3: BFW with p = 1/(D+1) converges in O(D log n).

Same sweep as E2 but with the non-uniform parameter.  Expected shape: the
fitted exponent drops towards 1 (the ``log n`` factor on paths adds a small
bias above 1), the best-fitting model is ``D log n`` / ``D``, and the
speed-up over the uniform protocol grows with the diameter — the gap the
paper describes between Theorems 2 and 3.
"""

import pytest

from repro.experiments.figures import crossover_experiment, scaling_experiment

DIAMETERS = (8, 16, 32, 48)


@pytest.mark.experiment("E3")
def test_theorem3_nonuniform_scaling(benchmark, report):
    result = benchmark.pedantic(
        lambda: scaling_experiment(
            mode="nonuniform",
            family="path",
            diameters=DIAMETERS,
            num_seeds=8,
            master_seed=3,
        ),
        rounds=1,
        iterations=1,
    )
    report("Experiment E3 — Theorem 3 scaling (p = 1/(D+1))", result.render())

    assert all(point.convergence_rate == 1.0 for point in result.points)
    # Clearly sub-quadratic, and clearly cheaper than the uniform protocol.
    assert result.power_law.exponent < 1.8
    assert result.power_law.exponent > 0.4
    # Convergence time grows overall with the diameter (individual adjacent
    # pairs may invert due to noise at these modest seed counts).
    means = [point.rounds.mean for point in result.points]
    assert means[-1] > means[0]


@pytest.mark.experiment("E3")
def test_theorem2_vs_theorem3_speedup(benchmark, report):
    crossover = benchmark.pedantic(
        lambda: crossover_experiment(
            family="path", diameters=(8, 16, 32), num_seeds=6, master_seed=4
        ),
        rounds=1,
        iterations=1,
    )
    report(
        "Experiment E3 — speed-up of the non-uniform protocol",
        crossover.render(),
    )
    speedups = dict(crossover.speedups)
    # The non-uniform protocol wins at every diameter, and its advantage grows
    # with D (the ~D-factor gap between the two theorems).
    assert all(value > 1.0 for value in speedups.values())
    assert speedups[32] > speedups[8]
