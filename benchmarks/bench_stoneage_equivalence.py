"""Experiment E9 — BFW runs unchanged in the synchronous stone-age model.

The paper notes that BFW "can also be implemented in a synchronous version of
the stone-age model": with the two-symbol alphabet {beep, silent} and
threshold b = 1, a stone-age node observes exactly the information a beeping
node hears.  The benchmark runs BFW through the stone-age adapter and checks
(a) it converges to a single leader, (b) the executions satisfy the same
deterministic invariants, and (c) raising the counting threshold b does not
change the executions at all (the extra information is never used).
"""

import numpy as np
import pytest

from repro.analysis.invariants import check_leader_always_exists
from repro.beeping.trace import ExecutionTrace
from repro.core.bfw import BFWProtocol
from repro.core.states import State
from repro.graphs.generators import cycle_graph, path_graph
from repro.stoneage.adapter import run_in_stone_age_model
from repro.viz.table_format import render_table

CASES = ((path_graph(12), 1), (path_graph(12), 2), (cycle_graph(16), 3))


def _run_all():
    rows = []
    for topology, seed in CASES:
        result_b1 = run_in_stone_age_model(
            topology, BFWProtocol(), max_rounds=20_000, rng=seed, threshold=1,
            record_states=True,
        )
        result_b3 = run_in_stone_age_model(
            topology, BFWProtocol(), max_rounds=20_000, rng=seed, threshold=3
        )
        states = np.array(
            [[int(s) for s in row] for row in result_b1.history], dtype=np.int8
        )
        trace = ExecutionTrace(
            states=states,
            beeping_values=(int(State.B_LEADER), int(State.B_FOLLOWER)),
            leader_values=(
                int(State.W_LEADER),
                int(State.B_LEADER),
                int(State.F_LEADER),
            ),
        )
        check_leader_always_exists(trace)
        rows.append(
            (
                topology.name,
                seed,
                result_b1.convergence_round(),
                result_b3.convergence_round(),
                result_b1.final_leader_count,
            )
        )
    return rows


@pytest.mark.experiment("E9")
def test_stone_age_equivalence(benchmark, report):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    table = render_table(
        ["graph", "seed", "convergence (b=1)", "convergence (b=3)", "final leaders"],
        rows,
    )
    report("Experiment E9 — stone-age model equivalence", table)
    for _, _, conv_b1, conv_b3, final_leaders in rows:
        assert final_leaders == 1
        assert conv_b1 is not None
        # Identical seeds and identical usable information: identical runs.
        assert conv_b1 == conv_b3
