"""Experiment E2 — Theorem 2: uniform BFW converges in O(D² log n) rounds.

We sweep path graphs of increasing diameter with the uniform protocol
(``p = 1/2``) and fit the measured mean convergence times.  The paper's claim
is an upper bound of ``O(D² log n)`` (and the Section 5 discussion argues the
``D²`` factor is necessary), so the expected shape is a power-law exponent
close to 2 in ``D`` and a best-fitting model of ``D²``-type rather than
``D``-type.
"""

import pytest

from repro.experiments.figures import scaling_experiment

DIAMETERS = (8, 16, 32, 48)


@pytest.mark.experiment("E2")
def test_theorem2_uniform_scaling(benchmark, report):
    result = benchmark.pedantic(
        lambda: scaling_experiment(
            mode="uniform",
            family="path",
            diameters=DIAMETERS,
            num_seeds=6,
            master_seed=2,
        ),
        rounds=1,
        iterations=1,
    )
    report("Experiment E2 — Theorem 2 scaling (uniform p = 1/2)", result.render())

    # Every diameter converged within the budget for every seed.
    assert all(point.convergence_rate == 1.0 for point in result.points)

    # Convergence time is clearly super-linear in D: exponent well above 1.4
    # and the best model is one of the D^2 variants, not a D-linear one.
    assert result.power_law.exponent > 1.4
    assert result.power_law.r_squared > 0.9
    assert result.model_comparison.best_model in ("D^2 log n", "D^2")

    # Monotonicity: larger diameters take longer on average.
    means = [point.rounds.mean for point in result.points]
    assert all(earlier < later for earlier, later in zip(means, means[1:]))
