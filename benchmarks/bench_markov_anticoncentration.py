"""Experiment E7 — anti-concentration of beep counts (Lemmas 14, 15, 17).

Two leaders that never hear each other behave as independent copies of the
W→B→F chain.  The analysis needs:

* ``Var(N_t) = Ω(t)`` (Lemma 14's proof),
* ``P(|N_t^{(u)} − N_t^{(v)}| < d)`` bounded away from 1 at ``t = d²``
  (Lemma 15),
* the separation time ``σ_{u,v}`` (first time the counts differ by more than
  ``d``) concentrating around ``Θ(d²)`` (Lemma 17 adds the ``log n`` factor
  for the w.h.p. statement),
* the coupling of Claim 16 keeping the two coupled counts within ±1.

The benchmark measures all four empirically.
"""

import numpy as np
import pytest

from repro.markov.coupling import empirical_meeting_time_distribution, simulate_coupling
from repro.markov.visits import (
    estimate_anti_concentration,
    estimate_separation_time,
    simulate_visit_counts,
)
from repro.viz.table_format import render_table

P = 0.5


def _run_experiment():
    rows = []
    # Variance growth (Lemma 14).
    for horizon in (100, 400, 1600):
        counts = simulate_visit_counts(P, horizon, num_chains=3000, rng=horizon)
        rows.append(("Var(N_t)", horizon, float(np.var(counts))))
    # Anti-concentration at t = d^2 (Lemma 15).  The lemma's constant is tied
    # to the chain's variance constant, so we probe the threshold at the scale
    # of one standard deviation of the difference (sqrt(t)/4 for p = 1/2).
    anti = estimate_anti_concentration(
        P, horizon=400, num_samples=3000, threshold=5.0, rng=7
    )
    # Separation times (Lemma 17 without the log factor).
    separation_small = estimate_separation_time(P, target_difference=4, num_samples=400, rng=8)
    separation_large = estimate_separation_time(P, target_difference=8, num_samples=400, rng=9)
    # Coupling (Claim 16).
    gaps = [
        simulate_coupling(P, horizon=200, initial_state=0, rng=seed).max_beep_gap
        for seed in range(200)
    ]
    meetings = empirical_meeting_time_distribution(
        P, horizon=200, num_samples=200, initial_state=0, rng=10
    )
    return rows, anti, separation_small, separation_large, gaps, meetings


@pytest.mark.experiment("E7")
def test_anti_concentration_of_beep_counts(benchmark, report):
    rows, anti, sep_small, sep_large, gaps, meetings = benchmark.pedantic(
        _run_experiment, rounds=1, iterations=1
    )
    variance_table = render_table(["quantity", "t", "value"], rows)
    summary = (
        f"{variance_table}\n\n"
        f"P(|N_u - N_v| < {anti.threshold:g}) at t=400: "
        f"{anti.probability_below:.3f}\n"
        f"mean separation time for d=4: {float(np.mean(sep_small)):.1f} rounds "
        f"(d^2 = 16)\n"
        f"mean separation time for d=8: {float(np.mean(sep_large)):.1f} rounds "
        f"(d^2 = 64)\n"
        f"coupling max |Ñ - N| over 200 runs: {max(gaps)} (Claim 16 bound: 1)\n"
        f"median coupling meeting time: {float(np.median(meetings)):.1f} rounds"
    )
    report("Experiment E7 — anti-concentration (Lemmas 14/15, Claim 16)", summary)

    # Lemma 14: variance grows linearly in t (ratio ~4 per 4x horizon).
    variances = {row[1]: row[2] for row in rows}
    assert 2.0 < variances[400] / variances[100] < 8.0
    assert 2.0 < variances[1600] / variances[400] < 8.0
    # Lemma 15: the probability of staying within a constant multiple of the
    # fluctuation scale is bounded away from 1.
    assert anti.probability_below < 0.95
    # Separation time grows ~quadratically with the target difference.
    ratio = float(np.mean(sep_large)) / float(np.mean(sep_small))
    assert 2.0 < ratio < 10.0
    # Claim 16 holds in every run.
    assert max(gaps) <= 1
