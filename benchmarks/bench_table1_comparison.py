"""Experiment E1 — regenerate Table 1 (protocol comparison).

The qualitative columns (round complexity, IDs, knowledge, safety, states,
termination detection) come from each implementation's metadata; the measured
column is the mean convergence round of each protocol on a small benchmark
graph set.  The expected *shape* (the paper's message):

* the baselines with identifiers / knowledge of ``n`` or ``D`` converge in
  ``O(D log n)`` or better and are faster than uniform BFW on high-diameter
  graphs;
* uniform BFW pays roughly an extra factor ``D`` on paths/cycles but needs no
  identifiers, no knowledge, and only six states;
* the non-uniform BFW (``p = 1/(D+1)``) closes most of that gap.
"""

import pytest

from repro.experiments.config import GraphSpec
from repro.experiments.tables import generate_table1

#: Small graph set so the benchmark completes quickly; the CLI scales it up.
GRAPHS = (
    GraphSpec(family="path", n=17),
    GraphSpec(family="cycle", n=32),
    GraphSpec(family="erdos-renyi", n=32, seed=1),
    GraphSpec(family="clique", n=32),
)


@pytest.mark.experiment("E1")
def test_table1_regeneration(benchmark, report):
    result = benchmark.pedantic(
        lambda: generate_table1(graphs=GRAPHS, num_seeds=5, master_seed=1),
        rounds=1,
        iterations=1,
    )
    report("Experiment E1 — Table 1 (regenerated)", result.render())

    by_name = {row.protocol: row for row in result.rows}
    path_label = "path(17)"

    # Every protocol that ran on the path converged in every trial.
    for row in result.rows:
        for label, rate in row.convergence_rates.items():
            assert rate == 1.0, (row.protocol, label)

    # Shape check 1: uniform BFW is the slowest on the high-diameter path.
    bfw_rounds = by_name["bfw"].measured_rounds[path_label]
    for name in ("bfw-nonuniform", "id-broadcast", "pipelined-ids", "emek-keren"):
        assert by_name[name].measured_rounds[path_label] < bfw_rounds, name

    # Shape check 2: the O(D + log n) baseline beats the O(D log n) ones on
    # the path (pipelining pays off once D and log n are both non-trivial).
    assert (
        by_name["pipelined-ids"].measured_rounds[path_label]
        < by_name["id-broadcast"].measured_rounds[path_label]
    )

    # Shape check 3: on the clique every protocol is fast (tens of rounds).
    clique_label = "clique(32)"
    for name in ("bfw", "bfw-nonuniform", "gilbert-newport"):
        assert by_name[name].measured_rounds[clique_label] < 200, name
