"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (a table, a scaling
figure, or a claim-shaped experiment) and prints the regenerated rows so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction report.
Workload sizes are kept modest so the whole harness completes in minutes; the
CLI (``python -m repro.cli ...``) exposes the same experiments at larger
scales.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their regenerated tables; make sure the output is
    # visible even without -s by reporting through the terminalreporter at
    # the end would be more invasive, so we simply register a marker here.
    config.addinivalue_line(
        "markers", "experiment(id): marks a benchmark with its DESIGN.md experiment id"
    )


@pytest.fixture
def report():
    """Print a rendered experiment report, clearly delimited."""

    def _print(title: str, body: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(body)

    return _print
