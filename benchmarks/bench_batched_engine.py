"""Experiment E12 — batched Monte-Carlo engine vs looping single runs.

The batched engine exists for exactly one reason: a sweep's replicas share
the Python-level round loop instead of paying it once per seed.  This
benchmark measures that claim in replica-rounds per second on the workload
the scaling experiments actually run (dozens of seeds on a 200-node cycle)
and asserts the ≥ 3× speed-up the subsystem promises, after first checking
that the batched results are replica-for-replica identical to the loop.
"""

import time

import pytest

from repro.batch import BatchedEngine
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import cycle_graph

MAX_ROUNDS = 400_000


def _loop_replica_rounds(topology, protocol, seeds):
    engine = VectorizedEngine(topology, protocol)
    results = [engine.run(rng=seed, max_rounds=MAX_ROUNDS) for seed in seeds]
    return results, sum(result.rounds_executed for result in results)


@pytest.mark.experiment("E12")
def test_batched_engine_speedup_over_seed_loop(report):
    topology = cycle_graph(200)
    protocol = BFWProtocol()
    seeds = list(range(32))

    start = time.perf_counter()
    singles, loop_rounds = _loop_replica_rounds(topology, protocol, seeds)
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = BatchedEngine(topology, protocol).run(
        seeds, max_rounds=MAX_ROUNDS, record_leader_counts=False
    )
    batch_seconds = time.perf_counter() - start

    # identical replicas first — a fast wrong engine is worthless
    for index, single in enumerate(singles):
        replica = batch.replica(index)
        assert replica.converged == single.converged
        assert replica.convergence_round == single.convergence_round
        assert replica.rounds_executed == single.rounds_executed
    assert batch.total_replica_rounds == loop_rounds

    loop_throughput = loop_rounds / loop_seconds
    batch_throughput = batch.total_replica_rounds / batch_seconds
    speedup = batch_throughput / loop_throughput
    report(
        "E12 — batched engine vs seed loop (32 replicas, cycle(200))",
        f"loop:    {loop_throughput:12,.0f} replica-rounds/sec ({loop_seconds:.2f}s)\n"
        f"batched: {batch_throughput:12,.0f} replica-rounds/sec ({batch_seconds:.2f}s)\n"
        f"speedup: {speedup:.2f}x",
    )
    assert speedup >= 3.0, (
        f"batched engine must be >= 3x the seed loop; measured {speedup:.2f}x"
    )


@pytest.mark.experiment("E12")
def test_batched_engine_throughput(benchmark):
    topology = cycle_graph(200)
    protocol = BFWProtocol()
    seeds = list(range(64))
    engine = BatchedEngine(topology, protocol)

    def run():
        return engine.run(seeds, max_rounds=MAX_ROUNDS, record_leader_counts=False)

    result = benchmark(run)
    assert result.converged.all()


@pytest.mark.experiment("E12")
def test_seed_loop_throughput_baseline(benchmark):
    topology = cycle_graph(200)
    protocol = BFWProtocol()
    seeds = list(range(8))  # smaller workload: this is the slow path

    def run():
        return _loop_replica_rounds(topology, protocol, seeds)[0]

    results = benchmark(run)
    assert all(result.converged for result in results)
