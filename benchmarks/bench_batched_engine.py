"""Experiment E12 — batched Monte-Carlo engines vs looping single runs.

The batch subsystem exists for exactly one reason: a sweep's replicas share
the Python-level loop instead of paying it once per seed.  This benchmark
measures that claim in replica-rounds per second on the workloads the paper
experiments actually run, after first checking that the batched results are
replica-for-replica identical to the loop:

* the constant-state :class:`~repro.batch.engine.BatchedEngine` against a
  loop of :class:`~repro.beeping.engine.VectorizedEngine` runs (BFW on a
  200-node cycle, the scaling-experiment workload), asserting ≥ 3×;
* the :class:`~repro.batch.memory.BatchedMemoryEngine` against a loop of
  :class:`~repro.beeping.simulator.MemorySimulator` runs (the Emek–Keren
  epoch baseline, a Table-1 workload), asserting ≥ 2× at R = 32 — in
  practice the gap is far larger, because the sequential memory simulator
  pays a Python call per *node* per round, not just per round;
* the :class:`~repro.exec.ProcessBackend` against the single-process
  :class:`~repro.exec.BatchedBackend` on a multi-cell sweep (the Table-1 /
  scaling shape), asserting ≥ 1.5× with 2 workers — only on machines with
  at least 2 CPUs, since cell sharding cannot beat one process on one core.
  This case always writes its measurements to ``BENCH_exec.json``
  (override the path with ``REPRO_BENCH_JSON``) so the execution-layer
  perf trajectory is machine-readable from PR to PR.
* the dynamic-graph churn sweep (E14): batched replica-rounds/sec as a
  function of the churn rate, plus the amortised-vs-naive rebuild ratio —
  one memoised schedule shared by all replicas against a fresh schedule per
  replica (the rebuild-per-round-per-replica strawman).  Writes
  ``BENCH_dynamics.json`` (override with ``REPRO_BENCH_DYNAMICS_JSON``).
* the batched observation layer (E15): the overhead of recording a full
  ``BatchTrace`` (plus an extinction observer) on a batched run against the
  untraced run, and the throughput of the batch analysis entry points
  (``first_beep_round_batch`` / ``summarize_batch``) against the
  per-replica loop over ``trace.replica(r)``.  Writes
  ``BENCH_observers.json`` (override with ``REPRO_BENCH_OBSERVERS_JSON``).
* the streaming telemetry layer (E16): the overhead of folding the analysis
  reductions online (``Streaming*`` reducers) and of spilling the trace to
  windowed ``.npz`` segments, both against the untraced run and against the
  in-memory recorder — plus the peak-RAM proxy (largest resident spill
  window vs the full ``(T+1, R, n)`` history).  Writes
  ``BENCH_telemetry.json`` (override with ``REPRO_BENCH_TELEMETRY_JSON``).
* intra-cell sharding (E17): one large Monte-Carlo cell (BFW on a 200-node
  cycle, thousands of replicas) on ``process:2`` whole — the historical
  one-cell/one-core defect — against the same cell with
  ``shard_size="auto"``, asserting byte-identical outcomes and ≥ 1.5×
  with 2 workers on ≥ 2 CPUs.  Writes ``BENCH_shard.json`` (override with
  ``REPRO_BENCH_SHARD_JSON``).
* in-flight observability (E18): the E17 single-cell workload through the
  :class:`~repro.exec.BatchedBackend` three ways — silent, with
  ``heartbeat_interval=32`` streaming :class:`~repro.exec.ShardProgress`
  events, and with heartbeats *plus* a full
  :class:`~repro.telemetry.progress.ProgressReporter` (telemetry JSONL +
  span tree) — asserting byte-identical records and bounding the
  heartbeat overhead at ≤ 5% of the silent run (process CPU time,
  best-of-N).  Writes ``BENCH_observability.json`` (override with
  ``REPRO_BENCH_OBSERVABILITY_JSON``).

* fused round kernels (E19): the interpreted numpy round loop against the
  fused kernel of :mod:`repro.batch.kernels` (numba-compiled when numba is
  importable, the same kernel body interpreted otherwise) on the two shapes
  ROADMAP item 2 names — a million-node cycle at small R and R = 4096 on a
  small cycle — asserting byte-identical batches first, then comparing
  replica-rounds/sec.  The ≥ 2× gate on the million-node shape is enforced
  only when numba is importable (the CI ``kernels`` job); without numba the
  pure-Python kernel is probed at reduced size, informationally.  Writes
  ``BENCH_kernel.json`` (override with ``REPRO_BENCH_KERNEL_JSON``).

Setting ``REPRO_BENCH_FAST=1`` shrinks every workload (small R and n) and
skips the speed-up assertions; CI uses it as a smoke mode so these scripts
cannot silently rot without turning CI red on timing noise.
"""

import json
import os
import time

import pytest

from repro.baselines import EmekKerenStyleElection
from repro.batch import BatchedEngine, BatchedMemoryEngine
from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import MemorySimulator
from repro.core.bfw import BFWProtocol
from repro.exec import BatchedBackend, ProcessBackend
from repro.experiments.config import GraphSpec, ProtocolSpecConfig, SweepConfig
from repro.experiments.runner import sweep_cells
from repro.graphs.generators import cycle_graph

MAX_ROUNDS = 400_000

#: Smoke mode: tiny workloads, no timing assertions (see module docstring).
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"

#: ``REPRO_BENCH_STRICT=0`` keeps the full workloads but skips the E13
#: speed-up assertion — CI uses it to measure a real BENCH_exec.json on
#: shared runners without going red on their timing noise.
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") == "1"

#: Where the execution-backend case writes its machine-readable results.
BENCH_EXEC_JSON = os.environ.get("REPRO_BENCH_JSON", "BENCH_exec.json")

#: Where the dynamic-graph churn case writes its machine-readable results.
BENCH_DYNAMICS_JSON = os.environ.get(
    "REPRO_BENCH_DYNAMICS_JSON", "BENCH_dynamics.json"
)

#: Where the observation-layer case writes its machine-readable results.
BENCH_OBSERVERS_JSON = os.environ.get(
    "REPRO_BENCH_OBSERVERS_JSON", "BENCH_observers.json"
)

#: Where the streaming-telemetry case writes its machine-readable results.
BENCH_TELEMETRY_JSON = os.environ.get(
    "REPRO_BENCH_TELEMETRY_JSON", "BENCH_telemetry.json"
)

#: Where the intra-cell sharding case writes its machine-readable results.
BENCH_SHARD_JSON = os.environ.get("REPRO_BENCH_SHARD_JSON", "BENCH_shard.json")

#: Where the observability-overhead case writes its machine-readable results.
BENCH_OBSERVABILITY_JSON = os.environ.get(
    "REPRO_BENCH_OBSERVABILITY_JSON", "BENCH_observability.json"
)

#: Where the fused-kernel case writes its machine-readable results.
BENCH_KERNEL_JSON = os.environ.get("REPRO_BENCH_KERNEL_JSON", "BENCH_kernel.json")

#: Workers used by the process-backend sweep case.
PROCESS_WORKERS = 2


def _size(value, fast_value):
    return fast_value if FAST else value


def _loop_replica_rounds(topology, protocol, seeds):
    engine = VectorizedEngine(topology, protocol)
    results = [engine.run(rng=seed, max_rounds=MAX_ROUNDS) for seed in seeds]
    return results, sum(result.rounds_executed for result in results)


def _assert_same_replicas(batch, singles):
    # identical replicas first — a fast wrong engine is worthless
    for index, single in enumerate(singles):
        replica = batch.replica(index)
        assert replica.converged == single.converged
        assert replica.convergence_round == single.convergence_round
        assert replica.rounds_executed == single.rounds_executed


@pytest.mark.experiment("E12")
def test_batched_engine_speedup_over_seed_loop(report):
    topology = cycle_graph(_size(200, 24))
    protocol = BFWProtocol()
    seeds = list(range(_size(32, 4)))

    start = time.perf_counter()
    singles, loop_rounds = _loop_replica_rounds(topology, protocol, seeds)
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = BatchedEngine(topology, protocol).run(
        seeds, max_rounds=MAX_ROUNDS, record_leader_counts=False
    )
    batch_seconds = time.perf_counter() - start

    _assert_same_replicas(batch, singles)
    assert batch.total_replica_rounds == loop_rounds

    loop_throughput = loop_rounds / loop_seconds
    batch_throughput = batch.total_replica_rounds / batch_seconds
    speedup = batch_throughput / loop_throughput
    report(
        f"E12 — batched engine vs seed loop "
        f"({len(seeds)} replicas, {topology.name})",
        f"loop:    {loop_throughput:12,.0f} replica-rounds/sec ({loop_seconds:.2f}s)\n"
        f"batched: {batch_throughput:12,.0f} replica-rounds/sec ({batch_seconds:.2f}s)\n"
        f"speedup: {speedup:.2f}x",
    )
    if not FAST:
        assert speedup >= 3.0, (
            f"batched engine must be >= 3x the seed loop; measured {speedup:.2f}x"
        )


@pytest.mark.experiment("E12")
def test_batched_memory_engine_speedup_over_seed_loop(report):
    topology = cycle_graph(_size(64, 12))
    diameter = topology.diameter()
    protocol = EmekKerenStyleElection(diameter=diameter)
    seeds = list(range(_size(32, 4)))

    start = time.perf_counter()
    simulator = MemorySimulator(topology, protocol)
    singles = [simulator.run(rng=seed, max_rounds=MAX_ROUNDS) for seed in seeds]
    loop_seconds = time.perf_counter() - start
    loop_rounds = sum(result.rounds_executed for result in singles)

    start = time.perf_counter()
    batch = BatchedMemoryEngine(topology, protocol).run(
        seeds, max_rounds=MAX_ROUNDS
    )
    batch_seconds = time.perf_counter() - start

    _assert_same_replicas(batch, singles)
    assert batch.total_replica_rounds == loop_rounds

    loop_throughput = loop_rounds / loop_seconds
    batch_throughput = batch.total_replica_rounds / batch_seconds
    speedup = batch_throughput / loop_throughput
    report(
        f"E12 — batched memory engine vs seed loop "
        f"({len(seeds)} replicas, emek-keren on {topology.name})",
        f"loop:    {loop_throughput:12,.0f} replica-rounds/sec ({loop_seconds:.2f}s)\n"
        f"batched: {batch_throughput:12,.0f} replica-rounds/sec ({batch_seconds:.2f}s)\n"
        f"speedup: {speedup:.2f}x",
    )
    if not FAST:
        assert speedup >= 2.0, (
            f"batched memory engine must be >= 2x the seed loop; "
            f"measured {speedup:.2f}x"
        )


@pytest.mark.experiment("E13")
def test_process_backend_sweep_speedup_over_batched(report):
    """Multi-cell sweep: cells sharded across 2 workers vs one process.

    The workload is the sweep shape the experiments actually run — one
    constant-state protocol across several cycle sizes, all replicas of a
    cell in one batched state array either way.  The records must match
    byte for byte; the wall-clock comparison (and the machine-readable
    ``BENCH_exec.json``) is the point of the case.
    """
    sweep = SweepConfig(
        name="bench-exec",
        protocols=(ProtocolSpecConfig(name="bfw"),),
        graphs=tuple(
            GraphSpec(family="cycle", n=_size(200, 16) + _size(8, 2) * index)
            for index in range(_size(6, 2))
        ),
        num_seeds=_size(32, 3),
        master_seed=20250212,
    )
    cells = sweep_cells(sweep)

    start = time.perf_counter()
    batched_records = BatchedBackend().run_cells(cells)
    batched_seconds = time.perf_counter() - start

    process_backend = ProcessBackend(workers=PROCESS_WORKERS)
    start = time.perf_counter()
    process_records = process_backend.run_cells(cells)
    process_seconds = time.perf_counter() - start

    # identical records first — a fast wrong backend is worthless
    assert process_records == batched_records

    replica_rounds = sum(record.rounds_executed for record in batched_records)
    speedup = batched_seconds / process_seconds
    cpus = os.cpu_count() or 1
    payload = {
        "benchmark": "exec-backend-sweep",
        "fast_mode": FAST,
        "strict": STRICT,
        "cpu_count": cpus,
        "workload": {
            "protocol": "bfw",
            "graphs": [graph.label for graph in sweep.graphs],
            "replicas_per_cell": sweep.num_seeds,
            "cells": len(cells),
            "replica_rounds": replica_rounds,
        },
        "results": [
            {
                "backend": "batched",
                "wall_seconds": batched_seconds,
                "replica_rounds_per_sec": replica_rounds / max(batched_seconds, 1e-9),
            },
            {
                "backend": process_backend.name,
                "wall_seconds": process_seconds,
                "replica_rounds_per_sec": replica_rounds / max(process_seconds, 1e-9),
            },
        ],
        "speedup_process_vs_batched": speedup,
    }
    with open(BENCH_EXEC_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    report(
        f"E13 — process backend vs batched backend "
        f"({len(cells)} cells, R={sweep.num_seeds}, {PROCESS_WORKERS} workers, "
        f"{cpus} CPU(s))",
        f"batched:     {batched_seconds:8.2f}s\n"
        f"process:{PROCESS_WORKERS}:   {process_seconds:8.2f}s\n"
        f"speedup:     {speedup:.2f}x\n"
        f"json:        {BENCH_EXEC_JSON}",
    )
    if not FAST and STRICT and cpus >= PROCESS_WORKERS:
        assert speedup >= 1.5, (
            f"process backend must be >= 1.5x the batched backend on a "
            f"multi-cell sweep with {PROCESS_WORKERS} workers; "
            f"measured {speedup:.2f}x on {cpus} CPUs"
        )


@pytest.mark.experiment("E14")
def test_dynamic_churn_sweep(report):
    """Dynamic graphs: throughput vs churn rate, and amortised rebuilds.

    Two claims are measured:

    * the batched engine keeps its replica-rounds/sec profile when the
      adjacency is swapped between rounds (rate 0 is the explicit static
      schedule — the dynamic code path's identity element);
    * the schedule layer's memoisation is what makes sequential dynamic
      sweeps affordable: one schedule shared by all replicas pays one
      topology rebuild per round (the first replica's), every later replica
      replays dictionary hits — against the naive strawman of a fresh
      schedule per replica (one rebuild per round *per replica*).

    The churn cases run under a tighter round budget than the static case:
    churn can eliminate *every* leader (a state unreachable on a static
    graph, where at least one leader always survives), and such leaderless
    replicas never trigger the single-leader stop — they would burn the
    full 400k-round budget measuring nothing but stall throughput.
    """
    from repro.dynamics import ScheduleSpec, build_schedule

    topology = cycle_graph(_size(200, 16))
    protocol = BFWProtocol()
    seeds = list(range(_size(32, 3)))
    churn_rates = (0, 1, 2, 4) if not FAST else (0, 2)
    churn_budget = _size(20_000, 2_000)

    rate_results = []
    for rate in churn_rates:
        if rate == 0:
            spec = ScheduleSpec("static")
        else:
            spec = ScheduleSpec(
                "edge-churn",
                {"add_per_round": rate, "remove_per_round": rate, "seed": 11},
            )
        engine = BatchedEngine(
            topology, protocol, schedule=build_schedule(spec, topology)
        )
        start = time.perf_counter()
        batch = engine.run(
            seeds,
            max_rounds=MAX_ROUNDS if rate == 0 else churn_budget,
            record_leader_counts=False,
        )
        seconds = time.perf_counter() - start
        rate_results.append(
            {
                "churn_rate": rate,
                "schedule": spec.label,
                "wall_seconds": seconds,
                "replica_rounds": batch.total_replica_rounds,
                "replica_rounds_per_sec": batch.total_replica_rounds
                / max(seconds, 1e-9),
                "convergence_rate": batch.convergence_rate,
            }
        )

    # Amortised vs naive rebuild: sequential engine, fixed round horizon
    # (no early stopping), so both variants simulate exactly the same work
    # and differ only in how often the schedule rebuilds topologies.
    rebuild_seeds = seeds[: _size(8, 2)]
    horizon = _size(400, 40)
    churn_spec = ScheduleSpec(
        "edge-churn", {"add_per_round": 2, "remove_per_round": 2, "seed": 7}
    )

    shared_schedule = build_schedule(churn_spec, topology)
    shared_engine = VectorizedEngine(topology, protocol, schedule=shared_schedule)
    start = time.perf_counter()
    for seed in rebuild_seeds:
        shared_engine.run(rng=seed, max_rounds=horizon, stop_at_single_leader=False)
    amortised_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for seed in rebuild_seeds:
        fresh_engine = VectorizedEngine(
            topology, protocol, schedule=build_schedule(churn_spec, topology)
        )
        fresh_engine.run(rng=seed, max_rounds=horizon, stop_at_single_leader=False)
    naive_seconds = time.perf_counter() - start

    rebuild_ratio = naive_seconds / max(amortised_seconds, 1e-9)
    payload = {
        "benchmark": "dynamic-churn-sweep",
        "fast_mode": FAST,
        "strict": STRICT,
        "workload": {
            "protocol": "bfw",
            "graph": topology.name,
            "replicas": len(seeds),
            "churn_rates": list(churn_rates),
        },
        "results": rate_results,
        "rebuild": {
            "replicas": len(rebuild_seeds),
            "rounds_per_replica": horizon,
            "amortised_wall_seconds": amortised_seconds,
            "naive_wall_seconds": naive_seconds,
            "naive_over_amortised": rebuild_ratio,
        },
    }
    with open(BENCH_DYNAMICS_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    lines = [
        f"rate {entry['churn_rate']}: "
        f"{entry['replica_rounds_per_sec']:12,.0f} replica-rounds/sec "
        f"({entry['wall_seconds']:.2f}s, conv {entry['convergence_rate']:.2f})"
        for entry in rate_results
    ]
    lines.append(
        f"rebuilds:  amortised {amortised_seconds:.2f}s vs naive "
        f"{naive_seconds:.2f}s -> {rebuild_ratio:.2f}x"
    )
    lines.append(f"json:      {BENCH_DYNAMICS_JSON}")
    report(
        f"E14 — batched engine under edge churn "
        f"({len(seeds)} replicas, {topology.name})",
        "\n".join(lines),
    )
    if not FAST and STRICT:
        assert rebuild_ratio >= 1.3, (
            f"sharing one memoised schedule across replicas must beat "
            f"rebuilding it per replica; measured {rebuild_ratio:.2f}x"
        )


@pytest.mark.experiment("E15")
def test_observer_overhead(report):
    """Batched observation layer: trace overhead and analysis throughput.

    Two claims are measured:

    * attaching a full :class:`BatchTraceRecorder` (plus the
      leader-extinction observer) to a batched run costs a bounded multiple
      of the untraced run — the per-round price is one int8 copy of the
      ``(R, n)`` state block and two lookup-table gathers;
    * the batch analysis entry points consume the recorded ``(T+1, R, n)``
      arrays directly and beat the per-replica loop (rebuild
      ``trace.replica(r)``, then per-round Python passes) on wall-clock.

    The workload is a fixed-horizon run without early stopping — the shape
    trace analysis actually consumes (wave/flow studies and the Section 5
    leaderless demonstrations run all replicas over one shared horizon;
    early-stopped sweeps aggregate scalar outcomes, not traces).
    """
    from repro.analysis import (
        first_beep_round,
        first_beep_round_batch,
        summarize_batch,
        summarize_trace,
    )
    from repro.batch import BatchTraceRecorder, LeaderExtinctionObserver

    topology = cycle_graph(_size(200, 24))
    protocol = BFWProtocol()
    seeds = list(range(_size(32, 4)))
    horizon = _size(1500, 60)
    engine = BatchedEngine(topology, protocol)

    start = time.perf_counter()
    untraced = engine.run(
        seeds,
        max_rounds=horizon,
        stop_at_single_leader=False,
        record_leader_counts=False,
    )
    untraced_seconds = time.perf_counter() - start

    recorder = BatchTraceRecorder()
    extinction = LeaderExtinctionObserver()
    start = time.perf_counter()
    traced = engine.run(
        seeds,
        max_rounds=horizon,
        stop_at_single_leader=False,
        record_leader_counts=False,
        observers=[recorder, extinction],
    )
    traced_seconds = time.perf_counter() - start

    # identical replicas first — observation must never perturb execution
    _assert_same_replicas(traced, untraced.to_simulation_results())
    trace = recorder.trace()
    assert extinction.report().extinction_rate == 0.0

    overhead = traced_seconds / max(untraced_seconds, 1e-9)

    start = time.perf_counter()
    batch_firsts = first_beep_round_batch(trace)
    batch_summaries = summarize_batch(trace)
    batch_analysis_seconds = time.perf_counter() - start

    import numpy as np

    start = time.perf_counter()
    loop_summaries = []
    for index in range(trace.num_replicas):
        replica = trace.replica(index)
        np.testing.assert_array_equal(batch_firsts[index], first_beep_round(replica))
        loop_summaries.append(summarize_trace(replica))
    loop_analysis_seconds = time.perf_counter() - start
    assert tuple(loop_summaries) == batch_summaries

    analysis_speedup = loop_analysis_seconds / max(batch_analysis_seconds, 1e-9)
    payload = {
        "benchmark": "batched-observers",
        "fast_mode": FAST,
        "strict": STRICT,
        "workload": {
            "protocol": "bfw",
            "graph": topology.name,
            "replicas": len(seeds),
            "trace_rounds": trace.num_rounds,
            "replica_rounds": int(traced.total_replica_rounds),
        },
        "results": {
            "untraced_wall_seconds": untraced_seconds,
            "traced_wall_seconds": traced_seconds,
            "trace_overhead": overhead,
            "batch_analysis_wall_seconds": batch_analysis_seconds,
            "per_replica_analysis_wall_seconds": loop_analysis_seconds,
            "analysis_speedup_batch_vs_loop": analysis_speedup,
        },
    }
    with open(BENCH_OBSERVERS_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    report(
        f"E15 — batched observation layer "
        f"({len(seeds)} replicas, {topology.name}, {trace.num_rounds} rounds)",
        f"untraced:       {untraced_seconds:8.2f}s\n"
        f"traced:         {traced_seconds:8.2f}s ({overhead:.2f}x)\n"
        f"analysis batch: {batch_analysis_seconds:8.3f}s\n"
        f"analysis loop:  {loop_analysis_seconds:8.3f}s "
        f"({analysis_speedup:.2f}x)\n"
        f"json:           {BENCH_OBSERVERS_JSON}",
    )
    if not FAST and STRICT:
        assert analysis_speedup >= 1.5, (
            f"batch analysis entry points must beat the per-replica loop; "
            f"measured {analysis_speedup:.2f}x"
        )
        assert overhead <= 10.0, (
            f"trace recording overhead must stay bounded; measured "
            f"{overhead:.2f}x the untraced run"
        )


@pytest.mark.experiment("E16")
def test_streaming_telemetry_overhead(report, tmp_path):
    """Streaming telemetry: online reducers and spilled traces vs the rest.

    Three claims are measured on the E15 fixed-horizon workload:

    * folding the analysis reductions online (first beep, invariants, beep
      totals, convergence — the ``O(R · n)``-accumulator reducers) costs at
      most a small multiple of the untraced run, *without* materialising the
      ``(T + 1, R, n)`` history at all;
    * spilling the trace as windowed ``.npz`` segments bounds trace RAM at
      the window size — the peak resident window is a small fraction of the
      in-memory ``BatchTrace`` — while replaying byte-identically;
    * both paths leave the physics untouched: replica results match the
      untraced run, streamed values equal the post-hoc reductions of the
      in-memory trace, and the spilled trace rehydrates to it exactly.
    """
    import numpy as np

    from repro.analysis import (
        beep_count_matrix_batch,
        first_beep_round_batch,
        summarize_batch,
    )
    from repro.batch import BatchTraceRecorder
    from repro.telemetry import (
        MetricsRegistry,
        SpillingTraceRecorder,
        StreamingBeepTotals,
        StreamingConvergence,
        StreamingFirstBeep,
        StreamingInvariantChecker,
        use_metrics,
    )

    topology = cycle_graph(_size(600, 24))
    protocol = BFWProtocol()
    seeds = list(range(_size(32, 4)))
    horizon = _size(1500, 60)
    engine = BatchedEngine(topology, protocol)
    run_kwargs = dict(
        max_rounds=horizon,
        stop_at_single_leader=False,
        record_leader_counts=False,
    )
    repeats = 1 if FAST else 2

    def _timed(run):
        # Process CPU time makes the overhead ratio robust to co-tenant
        # load on shared runners; wall time is reported alongside.
        wall = time.perf_counter()
        cpu = time.process_time()
        value = run()
        return time.process_time() - cpu, time.perf_counter() - wall, value

    def _best_of(run):
        best_cpu = best_wall = float("inf")
        value = None
        for _ in range(repeats):
            cpu, wall, value = _timed(run)
            best_cpu = min(best_cpu, cpu)
            best_wall = min(best_wall, wall)
        return best_cpu, best_wall, value

    engine.run(seeds, **run_kwargs)  # warmup: prime caches and lazy imports

    untraced_cpu, untraced_seconds, untraced = _best_of(
        lambda: engine.run(seeds, **run_kwargs)
    )

    # Fresh reducers and registry per repeat (runs are deterministic, so the
    # last repeat's accumulators stand for any of them).
    observed = {}

    def _streamed_run():
        observed["streams"] = {
            "first-beep": StreamingFirstBeep(),
            "invariants": StreamingInvariantChecker(),
            "beep-totals": StreamingBeepTotals(),
            "convergence": StreamingConvergence(),
        }
        observed["registry"] = MetricsRegistry()
        with use_metrics(observed["registry"]):
            return engine.run(
                seeds,
                observers=list(observed["streams"].values()),
                **run_kwargs,
            )

    streaming_cpu, streaming_seconds, streamed = _best_of(_streamed_run)
    streams = observed["streams"]
    registry = observed["registry"]

    spiller = SpillingTraceRecorder(
        directory=str(tmp_path), byte_budget=_size(1024 * 1024, 512)
    )
    spilling_cpu, spilling_seconds, _ = _timed(
        lambda: engine.run(seeds, observers=[spiller], **run_kwargs)
    )

    recorder = BatchTraceRecorder()
    inmemory_cpu, inmemory_seconds, _ = _timed(
        lambda: engine.run(seeds, observers=[recorder], **run_kwargs)
    )

    # identical physics first — telemetry must never perturb execution
    _assert_same_replicas(streamed, untraced.to_simulation_results())
    trace = recorder.trace()
    spilled = spiller.trace()
    assert spilled.load() == trace

    # streamed values == the post-hoc reductions of the recorded history
    np.testing.assert_array_equal(
        streams["first-beep"].result(), first_beep_round_batch(trace)
    )
    assert streams["convergence"].result() == summarize_batch(trace)
    matrix = beep_count_matrix_batch(trace)
    totals = streams["beep-totals"].result()
    for replica in range(trace.num_replicas):
        last = int(trace.rounds_executed[replica])
        np.testing.assert_array_equal(totals[replica], matrix[last, replica])
    assert streams["invariants"].result().ok

    # and the run metrics were sampled exactly once, with the right totals
    assert registry.counters["engine.runs"] == 1
    assert registry.counters["engine.rounds_advanced"] == int(
        streamed.total_replica_rounds
    )

    trace_bytes = int(trace.states.nbytes)
    peak_window = int(spilled.peak_window_bytes)
    streaming_overhead = streaming_cpu / max(untraced_cpu, 1e-9)
    spilling_overhead = spilling_cpu / max(untraced_cpu, 1e-9)
    inmemory_overhead = inmemory_cpu / max(untraced_cpu, 1e-9)
    payload = {
        "benchmark": "streaming-telemetry",
        "fast_mode": FAST,
        "strict": STRICT,
        "workload": {
            "protocol": "bfw",
            "graph": topology.name,
            "replicas": len(seeds),
            "trace_rounds": trace.num_rounds,
            "replica_rounds": int(untraced.total_replica_rounds),
            "timing_repeats": repeats,
        },
        "results": {
            "untraced_wall_seconds": untraced_seconds,
            "streaming_wall_seconds": streaming_seconds,
            "spilling_wall_seconds": spilling_seconds,
            "inmemory_wall_seconds": inmemory_seconds,
            "untraced_cpu_seconds": untraced_cpu,
            "streaming_cpu_seconds": streaming_cpu,
            "spilling_cpu_seconds": spilling_cpu,
            "inmemory_cpu_seconds": inmemory_cpu,
            "streaming_overhead": streaming_overhead,
            "spilling_overhead": spilling_overhead,
            "inmemory_overhead": inmemory_overhead,
            "trace_bytes": trace_bytes,
            "peak_window_bytes": peak_window,
            "peak_ram_fraction": peak_window / max(trace_bytes, 1),
        },
    }
    with open(BENCH_TELEMETRY_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    report(
        f"E16 — streaming telemetry "
        f"({len(seeds)} replicas, {topology.name}, {trace.num_rounds} rounds)",
        f"untraced:   {untraced_seconds:8.2f}s wall {untraced_cpu:8.2f}s cpu\n"
        f"streaming:  {streaming_seconds:8.2f}s wall ({streaming_overhead:.2f}x cpu)\n"
        f"spilling:   {spilling_seconds:8.2f}s wall ({spilling_overhead:.2f}x cpu)\n"
        f"in-memory:  {inmemory_seconds:8.2f}s wall ({inmemory_overhead:.2f}x cpu)\n"
        f"peak spill window: {peak_window:,} B of {trace_bytes:,} B trace "
        f"({peak_window / max(trace_bytes, 1):.3f})\n"
        f"json:       {BENCH_TELEMETRY_JSON}",
    )
    if not FAST and STRICT:
        assert streaming_overhead <= 1.3, (
            f"streaming reducers must stay within 1.3x of the untraced run; "
            f"measured {streaming_overhead:.2f}x"
        )
        assert peak_window * 4 <= trace_bytes, (
            f"the resident spill window must be a small fraction of the "
            f"full trace; peak {peak_window:,} B vs {trace_bytes:,} B"
        )


@pytest.mark.experiment("E17")
def test_intra_cell_sharding_speedup_on_single_cell(report):
    """One big Monte-Carlo cell: whole on ``process:2`` vs sharded.

    This is the workload the one-cell/one-core defect pinned to a single
    worker: a sweep of exactly one cell with thousands of replicas.  Whole,
    the process backend can schedule only one work unit (its pool clamps to
    1); with ``shard_size="auto"`` the seed list splits into one shard per
    worker.  The outcomes must be byte-identical — records, batch arrays,
    final states — before any timing counts.  A shared round budget keeps
    the per-replica workload uniform, so the case measures sharding, not
    tail-replica variance.
    """
    import numpy as np

    from repro.exec import ExecutionCell
    from repro.experiments.seeds import trial_seeds

    replicas = _size(4096, 8)
    n = _size(200, 16)
    max_rounds = _size(2000, 50)
    cell = ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=n),
        seeds=trial_seeds(20250808, f"bench-shard/bfw/cycle/{n}", replicas),
        max_rounds=max_rounds,
    )

    whole_backend = ProcessBackend(workers=PROCESS_WORKERS)
    start = time.perf_counter()
    whole = whole_backend.run_cell_outcomes((cell,))[0]
    whole_seconds = time.perf_counter() - start
    assert whole_backend.last_pool_size == 1  # the defect, measured

    sharded_backend = ProcessBackend(workers=PROCESS_WORKERS, shard_size="auto")
    start = time.perf_counter()
    sharded = sharded_backend.run_cell_outcomes((cell,))[0]
    sharded_seconds = time.perf_counter() - start
    assert sharded_backend.last_pool_size == PROCESS_WORKERS

    # identical outcomes first — a fast wrong merge is worthless
    assert sharded.to_records() == whole.to_records()
    for field in (
        "converged",
        "convergence_round",
        "rounds_executed",
        "final_leader_count",
        "leader_node",
    ):
        np.testing.assert_array_equal(
            getattr(sharded.batch, field), getattr(whole.batch, field)
        )
    assert sharded.batch.seeds == whole.batch.seeds
    np.testing.assert_array_equal(
        sharded.batch.final_states, whole.batch.final_states
    )

    replica_rounds = int(whole.batch.rounds_executed.sum())
    speedup = whole_seconds / sharded_seconds
    cpus = os.cpu_count() or 1
    payload = {
        "benchmark": "intra-cell-sharding",
        "fast_mode": FAST,
        "strict": STRICT,
        "cpu_count": cpus,
        "workload": {
            "protocol": "bfw",
            "graph": f"cycle({n})",
            "replicas": replicas,
            "max_rounds": max_rounds,
            "replica_rounds": replica_rounds,
        },
        "results": [
            {
                "configuration": "whole-cell",
                "pool_size": whole_backend.last_pool_size,
                "wall_seconds": whole_seconds,
                "replica_rounds_per_sec": replica_rounds / max(whole_seconds, 1e-9),
            },
            {
                "configuration": "shard-size-auto",
                "pool_size": sharded_backend.last_pool_size,
                "wall_seconds": sharded_seconds,
                "replica_rounds_per_sec": replica_rounds
                / max(sharded_seconds, 1e-9),
            },
        ],
        "speedup_sharded_vs_whole": speedup,
    }
    with open(BENCH_SHARD_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    report(
        f"E17 — intra-cell sharding on one Monte-Carlo cell "
        f"(R={replicas}, cycle({n}), {PROCESS_WORKERS} workers, {cpus} CPU(s))",
        f"whole cell:  {whole_seconds:8.2f}s (pool of 1 — the defect)\n"
        f"shard auto:  {sharded_seconds:8.2f}s (pool of {PROCESS_WORKERS})\n"
        f"speedup:     {speedup:.2f}x\n"
        f"json:        {BENCH_SHARD_JSON}",
    )
    if not FAST and STRICT and cpus >= PROCESS_WORKERS:
        assert speedup >= 1.5, (
            f"sharding one large cell across {PROCESS_WORKERS} workers must "
            f"be >= 1.5x the whole-cell run; measured {speedup:.2f}x on "
            f"{cpus} CPUs"
        )


@pytest.mark.experiment("E18")
def test_observability_overhead(report, tmp_path):
    """In-flight observability: heartbeats and span traces vs the silent run.

    The E17 single-cell workload runs through the batched backend three
    ways — untraced, with ``heartbeat_interval=32`` streaming in-flight
    :class:`~repro.exec.ShardProgress` events to a hook, and with
    heartbeats *plus* a full :class:`~repro.telemetry.progress.ProgressReporter`
    (telemetry JSONL stream and span tree) wired through
    ``cell_progress_adapter`` — exactly how ``repro ... --heartbeat K
    --telemetry --spans`` reaches the backend.

    Records must be byte-identical across all three before any timing
    counts: observability must never perturb the physics.  The overhead
    ratios use process CPU time (best-of-N) so co-tenant load on shared
    runners cannot fail the gate; the acceptance bar is heartbeats at
    ``K=32`` costing at most 5% over the silent run.
    """
    from repro.exec import ExecutionCell, ShardProgress
    from repro.experiments.runner import cell_progress_adapter
    from repro.experiments.seeds import trial_seeds
    from repro.telemetry.progress import ProgressReporter

    replicas = _size(4096, 8)
    n = _size(200, 16)
    max_rounds = _size(2000, 50)
    heartbeat_every = 32
    cell = ExecutionCell(
        protocol=ProtocolSpecConfig(name="bfw"),
        graph=GraphSpec(family="cycle", n=n),
        seeds=trial_seeds(
            20250808, f"bench-observability/bfw/cycle/{n}", replicas
        ),
        max_rounds=max_rounds,
    )
    cells = (cell,)
    repeats = 1 if FAST else 3

    def _timed(run):
        # Process CPU time makes the overhead ratio robust to co-tenant
        # load on shared runners; wall time is reported alongside.
        wall = time.perf_counter()
        cpu = time.process_time()
        value = run()
        return time.process_time() - cpu, time.perf_counter() - wall, value

    def _best_of(run):
        best_cpu = best_wall = float("inf")
        value = None
        for _ in range(repeats):
            cpu, wall, value = _timed(run)
            best_cpu = min(best_cpu, cpu)
            best_wall = min(best_wall, wall)
        return best_cpu, best_wall, value

    silent_backend = BatchedBackend()
    silent_backend.run_cells(cells)  # warmup: prime caches and lazy imports
    untraced_cpu, untraced_seconds, reference = _best_of(
        lambda: silent_backend.run_cells(cells)
    )

    beating_backend = BatchedBackend(heartbeat_interval=heartbeat_every)
    events = []

    def _beating_run():
        events.clear()
        return beating_backend.run_cells(cells, progress=events.append)

    heartbeat_cpu, heartbeat_seconds, beating = _best_of(_beating_run)
    beats = [event for event in events if isinstance(event, ShardProgress)]
    assert beating == reference  # identical physics first
    assert beats, "a heartbeat-enabled run must emit in-flight events"
    assert all(beat.heartbeat.engine for beat in beats)

    runs = {"count": 0}

    def _reported_run():
        runs["count"] += 1
        reporter = ProgressReporter(
            quiet=True,
            telemetry_path=str(tmp_path / f"telemetry-{runs['count']}.jsonl"),
            spans_path=str(tmp_path / f"spans-{runs['count']}.jsonl"),
        )
        try:
            return beating_backend.run_cells(
                cells, progress=cell_progress_adapter(reporter)
            )
        finally:
            reporter.close()

    spans_cpu, spans_seconds, reported = _best_of(_reported_run)
    assert reported == reference

    heartbeat_overhead = heartbeat_cpu / max(untraced_cpu, 1e-9)
    spans_overhead = spans_cpu / max(untraced_cpu, 1e-9)
    payload = {
        "benchmark": "observability-overhead",
        "fast_mode": FAST,
        "strict": STRICT,
        "workload": {
            "protocol": "bfw",
            "graph": f"cycle({n})",
            "replicas": replicas,
            "max_rounds": max_rounds,
            "heartbeat_interval": heartbeat_every,
            "beats_per_run": len(beats),
            "timing_repeats": repeats,
        },
        "results": {
            "untraced_wall_seconds": untraced_seconds,
            "heartbeat_wall_seconds": heartbeat_seconds,
            "spans_wall_seconds": spans_seconds,
            "untraced_cpu_seconds": untraced_cpu,
            "heartbeat_cpu_seconds": heartbeat_cpu,
            "spans_cpu_seconds": spans_cpu,
            "heartbeat_overhead": heartbeat_overhead,
            "spans_overhead": spans_overhead,
        },
    }
    with open(BENCH_OBSERVABILITY_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    report(
        f"E18 — in-flight observability "
        f"(R={replicas}, cycle({n}), heartbeat every {heartbeat_every} rounds)",
        f"untraced:   {untraced_seconds:8.2f}s wall {untraced_cpu:8.2f}s cpu\n"
        f"heartbeat:  {heartbeat_seconds:8.2f}s wall "
        f"({heartbeat_overhead:.3f}x cpu, {len(beats)} beats)\n"
        f"full spans: {spans_seconds:8.2f}s wall ({spans_overhead:.3f}x cpu)\n"
        f"json:       {BENCH_OBSERVABILITY_JSON}",
    )
    if not FAST and STRICT:
        assert heartbeat_overhead <= 1.05, (
            f"heartbeats at K={heartbeat_every} must cost at most 5% over "
            f"the silent run; measured {heartbeat_overhead:.3f}x"
        )
        assert spans_overhead <= 1.15, (
            f"the full reporter (telemetry + spans) must stay within 1.15x "
            f"of the silent run; measured {spans_overhead:.3f}x"
        )


@pytest.mark.experiment("E19")
def test_fused_kernel_rounds_per_sec(report):
    """Fused round kernels: the compiled loop vs the interpreted numpy loop.

    Two workload shapes, both BFW on a cycle over a fixed round horizon (no
    early stopping, so both kernels simulate exactly the same work):

    * ``wide`` — a million-node cycle at small R: the per-round cost is all
      array traffic, the regime where fusing the ~10 interpreter-dispatched
      ops per round into one native pass pays in memory locality;
    * ``tall`` — R = 4096 on a small cycle: the regime sweeps actually run,
      where the interpreter dispatch is amortised over many replicas and
      the fused kernel must still not lose.

    Batches must be byte-identical before any timing counts — the fused
    kernel consumes the same prefetched uniforms in the same order as the
    interpreted loop, and this case is where that claim meets a
    million-node CSR for real.  The ≥ 2× gate on the wide shape runs only
    when numba is importable (the CI ``kernels`` job installs the
    ``repro[kernels]`` extra); on numba-free machines the same kernel body
    runs interpreted at probe size, so the path cannot rot, but a
    pure-Python per-node loop at n = 10⁶ would measure nothing except
    interpreter overhead.
    """
    import numpy as np

    from repro.batch.kernels import numba_available

    fused_kernel = "numba" if numba_available() else "python"
    if FAST:
        workloads = [("wide", 2000, 2, 6), ("tall", 24, 32, 20)]
    elif numba_available():
        workloads = [("wide", 1_000_000, 4, 16), ("tall", 200, 4096, 256)]
    else:
        # Probe sizes: large enough to exercise the CSR path and the block
        # refill boundary, small enough for the interpreted kernel body.
        workloads = [("wide", 20_000, 4, 16), ("tall", 200, 256, 64)]

    compile_seconds = None
    results = []
    for shape, n, replicas, horizon in workloads:
        topology = cycle_graph(n)
        protocol = BFWProtocol()
        seeds = list(range(replicas))
        run_kwargs = dict(
            max_rounds=horizon,
            stop_at_single_leader=False,
            record_leader_counts=False,
        )

        numpy_engine = BatchedEngine(topology, protocol, kernel="numpy")
        start = time.perf_counter()
        reference = numpy_engine.run(seeds, **run_kwargs)
        numpy_seconds = time.perf_counter() - start

        fused_engine = BatchedEngine(topology, protocol, kernel=fused_kernel)
        fused_engine.run(seeds[:1], max_rounds=1)  # warmup: compile + caches
        start = time.perf_counter()
        fused = fused_engine.run(seeds, **run_kwargs)
        fused_seconds = time.perf_counter() - start

        # byte-identical batches first — a fast divergent kernel is worthless
        assert fused_engine.last_kernel["active"] == fused_kernel
        np.testing.assert_array_equal(fused.converged, reference.converged)
        np.testing.assert_array_equal(
            fused.rounds_executed, reference.rounds_executed
        )
        np.testing.assert_array_equal(
            fused.final_states, reference.final_states
        )
        compile_seconds = fused_engine.last_kernel["compile_seconds"]

        replica_rounds = int(reference.total_replica_rounds)
        results.append(
            {
                "shape": shape,
                "graph": f"cycle({n})",
                "replicas": replicas,
                "rounds": horizon,
                "replica_rounds": replica_rounds,
                "numpy_wall_seconds": numpy_seconds,
                "fused_wall_seconds": fused_seconds,
                "numpy_replica_rounds_per_sec": replica_rounds
                / max(numpy_seconds, 1e-9),
                "fused_replica_rounds_per_sec": replica_rounds
                / max(fused_seconds, 1e-9),
                "speedup_fused_vs_numpy": numpy_seconds
                / max(fused_seconds, 1e-9),
            }
        )

    payload = {
        "benchmark": "fused-round-kernels",
        "fast_mode": FAST,
        "strict": STRICT,
        "numba_available": numba_available(),
        "fused_kernel": fused_kernel,
        "compile_seconds": compile_seconds,
        "results": results,
    }
    with open(BENCH_KERNEL_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    lines = [
        f"{entry['shape']:5s} {entry['graph']:16s} R={entry['replicas']:<5d} "
        f"numpy {entry['numpy_replica_rounds_per_sec']:14,.0f} rr/s  "
        f"{fused_kernel} {entry['fused_replica_rounds_per_sec']:14,.0f} rr/s  "
        f"-> {entry['speedup_fused_vs_numpy']:.2f}x"
        for entry in results
    ]
    if compile_seconds is not None:
        lines.append(f"compile: {compile_seconds:.2f}s (once per process)")
    lines.append(f"json:    {BENCH_KERNEL_JSON}")
    report(
        f"E19 — fused round kernels (kernel={fused_kernel}, "
        f"numba={'yes' if numba_available() else 'no'})",
        "\n".join(lines),
    )
    if not FAST and STRICT and numba_available():
        wide = results[0]
        assert wide["speedup_fused_vs_numpy"] >= 2.0, (
            f"the compiled kernel must be >= 2x the interpreted numpy loop "
            f"on the million-node cycle; measured "
            f"{wide['speedup_fused_vs_numpy']:.2f}x"
        )


@pytest.mark.experiment("E12")
def test_batched_engine_throughput(benchmark):
    topology = cycle_graph(_size(200, 24))
    protocol = BFWProtocol()
    seeds = list(range(_size(64, 4)))
    engine = BatchedEngine(topology, protocol)

    def run():
        return engine.run(seeds, max_rounds=MAX_ROUNDS, record_leader_counts=False)

    result = benchmark(run)
    assert result.converged.all()


@pytest.mark.experiment("E12")
def test_batched_memory_engine_throughput(benchmark):
    topology = cycle_graph(_size(64, 12))
    protocol = EmekKerenStyleElection(diameter=topology.diameter())
    engine = BatchedMemoryEngine(topology, protocol)
    seeds = list(range(_size(64, 4)))

    def run():
        return engine.run(seeds, max_rounds=MAX_ROUNDS)

    result = benchmark(run)
    assert result.converged.all()


@pytest.mark.experiment("E12")
def test_seed_loop_throughput_baseline(benchmark):
    topology = cycle_graph(_size(200, 24))
    protocol = BFWProtocol()
    seeds = list(range(_size(8, 2)))  # smaller workload: this is the slow path

    def run():
        return _loop_replica_rounds(topology, protocol, seeds)[0]

    results = benchmark(run)
    assert all(result.converged for result in results)
