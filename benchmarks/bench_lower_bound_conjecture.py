"""Experiment E4 — the Section 5 lower-bound conjecture.

Two leaders are planted at the ends of a path of length ``D``.  The paper
conjectures that the meeting point of their beep waves behaves like a simple
random walk, so the time until one leader is eliminated should be ``Θ(D²)``.
The benchmark measures elimination times across diameters and checks that the
fitted exponent is close to 2 and that the ``time / D²`` ratio stays within a
constant band.
"""

import pytest

from repro.experiments.figures import lower_bound_experiment

DIAMETERS = (8, 16, 32, 48)


@pytest.mark.experiment("E4")
def test_two_diametral_leaders_take_quadratic_time(benchmark, report):
    result = benchmark.pedantic(
        lambda: lower_bound_experiment(
            diameters=DIAMETERS, num_seeds=12, master_seed=5
        ),
        rounds=1,
        iterations=1,
    )
    report("Experiment E4 — Section 5 lower-bound conjecture", result.render())

    # The elimination time normalised by D^2 stays within a constant band
    # (no drift towards 0 or infinity across a 6x range of diameters).
    ratios = [point.normalised_by_d2 for point in result.points]
    assert max(ratios) / min(ratios) < 5.0

    # The fitted exponent is consistent with the conjectured Theta(D^2).
    assert 1.5 < result.power_law.exponent < 2.6
