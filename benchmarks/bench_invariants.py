"""Experiment E5 — Lemma 9 and Definition 1 across random executions.

The benchmark runs BFW on a spread of graph families and seeds, recording
full traces, and verifies that (a) a leader exists in every round, (b) the
leader count never increases, (c) every execution converges to exactly one
leader within its budget, and (d) a node with the maximal beep count is
always a leader (the inductive invariant behind Lemma 9's proof).
"""

import pytest

from repro.analysis.invariants import (
    check_leader_always_exists,
    check_leader_count_nonincreasing,
    check_max_beep_count_is_leader,
)
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_tree_graph,
    star_graph,
)

GRAPHS = (
    path_graph(16),
    cycle_graph(20),
    star_graph(16),
    grid_graph(5, 5),
    random_tree_graph(20, rng=1),
    erdos_renyi_graph(24, rng=2),
)
SEEDS = tuple(range(5))


def _run_and_check_all():
    checked = 0
    for topology in GRAPHS:
        for seed in SEEDS:
            result = VectorizedEngine(topology, BFWProtocol()).run(
                rng=seed, record_trace=True, max_rounds=200_000
            )
            assert result.converged, (topology.name, seed)
            assert result.final_leader_count == 1
            trace = result.trace
            check_leader_always_exists(trace)
            check_leader_count_nonincreasing(trace)
            check_max_beep_count_is_leader(trace)
            checked += 1
    return checked


@pytest.mark.experiment("E5")
def test_lemma9_and_convergence_across_families(benchmark, report):
    checked = benchmark.pedantic(_run_and_check_all, rounds=1, iterations=1)
    report(
        "Experiment E5 — Lemma 9 / Definition 1 validation",
        f"{checked} executions across {len(GRAPHS)} graph families and "
        f"{len(SEEDS)} seeds: a leader existed in every round, the leader "
        "count never increased, every execution converged to a single leader, "
        "and a maximal-beep-count node was always a leader.",
    )
    assert checked == len(GRAPHS) * len(SEEDS)
