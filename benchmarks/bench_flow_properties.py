"""Experiment E6 — flow conservation (Lemma 7), Ohm's law (Corollary 8),
and the distance bound (Lemma 11), checked exactly on recorded executions.

These are deterministic statements: a single violation anywhere would be an
implementation bug.  The benchmark doubles as a performance measurement of
the trace-analysis machinery itself.
"""

import pytest

from repro.analysis.flow import check_flow_conservation
from repro.analysis.invariants import check_claim6, check_distance_bound_all_rounds
from repro.analysis.ohm import check_ohms_law_on_random_paths
from repro.beeping.engine import VectorizedEngine
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import cycle_graph, grid_graph, path_graph

CASES = (
    (path_graph(16), 3),
    (cycle_graph(16), 4),
    (grid_graph(4, 4), 5),
)


def _verify_all():
    paths_checked = 0
    for topology, seed in CASES:
        result = VectorizedEngine(topology, BFWProtocol()).run(
            rng=seed, record_trace=True, max_rounds=100_000
        )
        trace = result.trace
        check_claim6(trace, topology)
        check_distance_bound_all_rounds(trace, topology)
        # Lemma 7 along the full node sequence where it is a path of the graph.
        if topology.name.startswith("path"):
            assert check_flow_conservation(trace, tuple(range(topology.n))) == []
        paths_checked += check_ohms_law_on_random_paths(
            trace, topology, num_paths=10, max_length=16, rng=seed
        )
    return paths_checked


@pytest.mark.experiment("E6")
def test_flow_conservation_and_ohms_law(benchmark, report):
    paths_checked = benchmark.pedantic(_verify_all, rounds=1, iterations=1)
    report(
        "Experiment E6 — deterministic flow properties",
        f"Claim 6, Lemma 7, Lemma 11 and Corollary 8 verified exactly on "
        f"{len(CASES)} full executions ({paths_checked} random walks checked "
        "for Ohm's law). No violations.",
    )
    assert paths_checked == 10 * len(CASES)
