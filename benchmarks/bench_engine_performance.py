"""Experiment E11 — simulator performance (vectorised vs reference engine).

Not a paper artefact, but the property that makes the scaling experiments
feasible: the vectorised engine advances a whole round with a handful of
array operations.  The benchmark times both engines on the same workload and
a larger workload only the vectorised engine can handle comfortably, so
regressions in the hot path are caught.
"""

import pytest

from repro.beeping.engine import VectorizedEngine
from repro.beeping.simulator import Simulator
from repro.core.bfw import BFWProtocol
from repro.graphs.generators import cycle_graph, random_geometric_graph


@pytest.mark.experiment("E11")
def test_vectorized_engine_medium_cycle(benchmark):
    topology = cycle_graph(200)
    protocol = BFWProtocol()

    def run():
        return VectorizedEngine(topology, protocol).run(rng=1, max_rounds=400_000)

    result = benchmark(run)
    assert result.converged


@pytest.mark.experiment("E11")
def test_reference_simulator_small_cycle(benchmark):
    topology = cycle_graph(24)
    protocol = BFWProtocol()

    def run():
        return Simulator(topology, protocol).run(rng=1, max_rounds=100_000)

    result = benchmark(run)
    assert result.converged


@pytest.mark.experiment("E11")
def test_vectorized_engine_geometric_colony(benchmark):
    topology = random_geometric_graph(400, rng=3)
    protocol = BFWProtocol()

    def run():
        return VectorizedEngine(topology, protocol).run(rng=2, max_rounds=400_000)

    result = benchmark(run)
    assert result.converged
