"""Markov-chain substrate for the probabilistic analysis of Section 4."""

from repro.markov.bfw_chain import (
    STATE_B,
    STATE_F,
    STATE_NAMES,
    STATE_W,
    beeps_from_return_times,
    bfw_leader_chain,
    expected_beeps,
    sample_return_times,
    stationary_distribution,
    transition_matrix,
    variance_lower_bound,
)
from repro.markov.chain import FiniteMarkovChain
from repro.markov.coupling import (
    CouplingOutcome,
    empirical_meeting_time_distribution,
    simulate_coupling,
)
from repro.markov.visits import (
    AntiConcentrationEstimate,
    estimate_anti_concentration,
    estimate_separation_time,
    simulate_visit_counts,
)

__all__ = [
    "AntiConcentrationEstimate",
    "CouplingOutcome",
    "FiniteMarkovChain",
    "STATE_B",
    "STATE_F",
    "STATE_NAMES",
    "STATE_W",
    "beeps_from_return_times",
    "bfw_leader_chain",
    "empirical_meeting_time_distribution",
    "estimate_anti_concentration",
    "estimate_separation_time",
    "expected_beeps",
    "sample_return_times",
    "simulate_coupling",
    "simulate_visit_counts",
    "stationary_distribution",
    "transition_matrix",
    "variance_lower_bound",
]
