"""Visit-count statistics and anti-concentration experiments (Lemmas 14 and 15).

The heart of the uniform-BFW analysis is an anti-concentration statement:
for two leaders ``u`` and ``v`` whose behaviour is described by independent
copies of the undisturbed-leader chain, the difference of their beep counts
``|N_t^{(u)} − N_t^{(v)}|`` exceeds any target ``d`` within roughly ``d²``
rounds with constant probability (Lemma 15), which after ``O(log n)``
independent attempts holds w.h.p. (Lemma 17).  Combined with Ohm's law, a
difference larger than the diameter forces an elimination (Claim 18).

This module measures those quantities empirically so that the benchmark E7
can compare them against the paper's statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError
from repro.markov.bfw_chain import STATE_B, STATE_W, bfw_leader_chain


@dataclass(frozen=True)
class AntiConcentrationEstimate:
    """Empirical estimate of the quantities in Lemma 14 / Lemma 15.

    Attributes
    ----------
    p:
        Beeping probability of the chain.
    horizon:
        Number of rounds ``t`` simulated.
    threshold:
        The difference target ``d`` (Lemma 15 uses ``d = sqrt(t)``).
    probability_below:
        Empirical ``P(|N_t^{(u)} − N_t^{(v)}| < threshold)`` — Lemma 15 states
        this is at most ``1 − ε`` for a constant ``ε(p) > 0``.
    mean_difference:
        Empirical ``E|N_t^{(u)} − N_t^{(v)}|``.
    visit_variance:
        Empirical ``Var(N_t)`` — Lemma 14's proof shows it grows linearly in
        ``t``.
    num_samples:
        Number of independent chain pairs simulated.
    """

    p: float
    horizon: int
    threshold: float
    probability_below: float
    mean_difference: float
    visit_variance: float
    num_samples: int


def simulate_visit_counts(
    p: float,
    horizon: int,
    num_chains: int,
    rng: RngLike = None,
    start_in_waiting: bool = True,
) -> np.ndarray:
    """Simulate ``num_chains`` independent leader chains and count beeps.

    Parameters
    ----------
    p:
        Beeping probability.
    horizon:
        Number of rounds ``t``.
    num_chains:
        Number of independent chains.
    start_in_waiting:
        Whether chains start in state ``W`` (the protocol's initial state, as
        in Section 4.2) or from the stationary distribution (the setting of
        Theorem 13).

    Returns
    -------
    Integer array of length ``num_chains`` with the beep counts ``N_t``.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1; got {horizon}")
    chain = bfw_leader_chain(p)
    initial = STATE_W if start_in_waiting else None
    paths = chain.sample_many_paths(
        num_paths=num_chains, length=horizon, initial_state=initial, rng=rng
    )
    return chain.visit_counts(paths, STATE_B)


def estimate_anti_concentration(
    p: float,
    horizon: int,
    num_samples: int = 2000,
    threshold: float = None,
    rng: RngLike = None,
) -> AntiConcentrationEstimate:
    """Estimate the probability that two independent beep counts stay close.

    Lemma 15 (with ``d = sqrt(horizon)``) states this probability is bounded
    away from one by a constant depending only on ``p``.
    """
    generator = as_rng(rng)
    if threshold is None:
        threshold = float(np.sqrt(horizon))
    counts_u = simulate_visit_counts(
        p, horizon, num_samples, rng=generator
    ).astype(float)
    counts_v = simulate_visit_counts(
        p, horizon, num_samples, rng=generator
    ).astype(float)
    differences = np.abs(counts_u - counts_v)
    return AntiConcentrationEstimate(
        p=p,
        horizon=horizon,
        threshold=float(threshold),
        probability_below=float(np.mean(differences < threshold)),
        mean_difference=float(differences.mean()),
        visit_variance=float(np.var(counts_u)),
        num_samples=num_samples,
    )


def estimate_separation_time(
    p: float,
    target_difference: int,
    num_samples: int = 500,
    max_rounds: int = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Empirical distribution of ``σ_{u,v}`` (Eq. (17)).

    ``σ_{u,v}`` is the first round at which two independent leader chains'
    beep counts differ by more than ``target_difference``.  Lemma 17 proves
    ``σ_{u,v} = O(D² log n)`` w.h.p. when the target is the diameter ``D``;
    the scaling benchmark compares the empirical quantiles against
    ``target_difference²``.

    Returns
    -------
    Integer array of length ``num_samples``; entries equal ``max_rounds + 1``
    when separation was not reached within the budget.
    """
    if target_difference < 1:
        raise ConfigurationError(
            f"target_difference must be >= 1; got {target_difference}"
        )
    if max_rounds is None:
        max_rounds = 200 * target_difference * target_difference + 1000
    generator = as_rng(rng)
    chain = bfw_leader_chain(p)
    cumulative = np.cumsum(chain.transition_matrix, axis=1)

    states_u = np.full(num_samples, STATE_W, dtype=np.int64)
    states_v = np.full(num_samples, STATE_W, dtype=np.int64)
    counts_u = np.zeros(num_samples, dtype=np.int64)
    counts_v = np.zeros(num_samples, dtype=np.int64)
    separation = np.full(num_samples, max_rounds + 1, dtype=np.int64)
    active = np.ones(num_samples, dtype=bool)

    for round_index in range(1, max_rounds + 1):
        if not active.any():
            break
        uniforms_u = generator.random(num_samples)
        uniforms_v = generator.random(num_samples)
        rows_u = cumulative[states_u]
        rows_v = cumulative[states_v]
        states_u = (uniforms_u[:, None] >= rows_u).sum(axis=1)
        states_v = (uniforms_v[:, None] >= rows_v).sum(axis=1)
        counts_u += states_u == STATE_B
        counts_v += states_v == STATE_B
        separated = active & (np.abs(counts_u - counts_v) > target_difference)
        separation[separated] = round_index
        active &= ~separated
    return separation
