"""The undisturbed-leader chain of Section 4.2 (Eq. (15) and Eq. (16)).

While a leader is never disturbed by other nodes' beeps, its state evolves as
the three-state Markov chain

    W --(p)--> B --> F --> W        (and W --(1-p)--> W)

with transition matrix

    P = [[1 - p, p, 0],
         [0,     0, 1],
         [1,     0, 0]]

and stationary distribution ``π = (1/(2p+1), p/(2p+1), p/(2p+1))``.

The convergence proofs couple each leader's behaviour with an independent
copy of this chain and study the visit counts ``N_t`` to state ``B`` — the
number of beeps the leader has emitted.  This module provides the chain, the
closed-form stationary distribution, and the first-return-time decomposition
``τ ~ 2 + Geometric(p)`` used in the proof of Lemma 14.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.markov.chain import FiniteMarkovChain

RngLike = Union[int, np.random.Generator, None]

#: Index of the Waiting state in the chain.
STATE_W = 0
#: Index of the Beeping state in the chain.
STATE_B = 1
#: Index of the Frozen state in the chain.
STATE_F = 2

#: Display names for the chain's states.
STATE_NAMES: Tuple[str, str, str] = ("W", "B", "F")


def transition_matrix(p: float) -> np.ndarray:
    """The matrix ``P`` of Eq. (15) for beeping probability ``p``."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must lie strictly in (0, 1); got {p}")
    return np.array(
        [
            [1.0 - p, p, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0],
        ]
    )


def stationary_distribution(p: float) -> np.ndarray:
    """The closed-form stationary distribution ``π`` of Eq. (16)."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must lie strictly in (0, 1); got {p}")
    denominator = 2.0 * p + 1.0
    return np.array([1.0 / denominator, p / denominator, p / denominator])


def bfw_leader_chain(p: float) -> FiniteMarkovChain:
    """The undisturbed-leader chain as a :class:`FiniteMarkovChain`."""
    return FiniteMarkovChain(
        transition_matrix=transition_matrix(p), state_names=STATE_NAMES
    )


def expected_beeps(p: float, t: int) -> float:
    """``E[N_t]``: expected number of beeps in ``t`` rounds at stationarity.

    Equals ``π_B · t = p t / (2p + 1)``, the quantity around which Lemma 14's
    anti-concentration statement is centred.
    """
    return stationary_distribution(p)[STATE_B] * t


def sample_return_times(
    p: float, num_samples: int, rng: RngLike = None
) -> np.ndarray:
    """Sample first-return times of state ``B``: ``τ ~ 2 + Geometric(p)``.

    After beeping, the chain deterministically visits ``F`` and then ``W``,
    and from ``W`` it needs a Geometric(p) number of additional rounds to
    beep again, giving ``τ = 2 + Geom(p)`` as used in the proof of Lemma 14.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must lie strictly in (0, 1); got {p}")
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1; got {num_samples}")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    return 2 + generator.geometric(p, size=num_samples)


def beeps_from_return_times(return_times: np.ndarray, horizon: int) -> int:
    """``N_t`` computed via the renewal identity Eq. (18).

    ``N_t = min{k ≥ 0 : τ_1 + ... + τ_{k+1} > t}`` — the number of completed
    renewals (beeps) within ``horizon`` rounds when the inter-beep times are
    ``return_times``.  Used to cross-check the direct simulation in tests.
    """
    cumulative = np.cumsum(np.asarray(return_times))
    exceeding = np.flatnonzero(cumulative > horizon)
    if len(exceeding) == 0:
        raise ConfigurationError(
            "not enough return-time samples to cover the requested horizon"
        )
    return int(exceeding[0])


def variance_lower_bound(p: float, t: int) -> float:
    """The ``Var(N_t) = Ω(t)`` lower bound direction used in Lemma 14.

    The proof establishes ``Var(N_t) ≥ δ(p)² t / 4`` for an explicit constant
    ``δ(p)``; for reporting purposes we use the exact asymptotic variance of
    the renewal process, ``t · Var(τ) / E[τ]³`` with ``τ = 2 + Geom(p)``,
    which the empirical benchmark compares against.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"p must lie strictly in (0, 1); got {p}")
    mean_tau = 2.0 + 1.0 / p
    var_tau = (1.0 - p) / (p * p)
    return t * var_tau / mean_tau**3
