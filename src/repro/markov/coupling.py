"""The coupling argument of Lemma 15 / Claim 16, made executable.

The proof of Lemma 15 couples a leader's chain ``X_t`` (started from an
arbitrary state) with a stationary copy ``X̃_t``: both evolve independently
until they first occupy the same state, and move together afterwards.
Claim 16 observes that, because the chain is a deterministic cycle
``B → F → W`` with a single randomised exit from ``W``, the two copies'
beep counts can never differ by more than one before they meet — so the
coupling transfers anti-concentration from the stationary chain to the
arbitrary-start chain at the cost of ±1.

:func:`simulate_coupling` runs that coupling and reports the meeting time and
the maximum beep-count gap observed, which the tests check against Claim 16.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError
from repro.markov.bfw_chain import STATE_B, bfw_leader_chain


@dataclass(frozen=True)
class CouplingOutcome:
    """Result of one simulated coupling run.

    Attributes
    ----------
    meeting_time:
        First round in which the two copies occupy the same state (0 when
        they already start together); ``horizon + 1`` if they never meet
        within the horizon (cannot happen for ergodic chains with a long
        enough horizon, but recorded for completeness).
    max_beep_gap:
        Maximum of ``|Ñ_t − N_t|`` over the horizon.  Claim 16 asserts this
        never exceeds one.
    final_gap:
        ``|Ñ_T − N_T|`` at the end of the horizon.
    horizon:
        Number of simulated rounds.
    """

    meeting_time: int
    max_beep_gap: int
    final_gap: int
    horizon: int


def simulate_coupling(
    p: float,
    horizon: int,
    initial_state: int,
    rng: RngLike = None,
) -> CouplingOutcome:
    """Simulate the Lemma 15 coupling for ``horizon`` rounds.

    Parameters
    ----------
    p:
        Beeping probability of the chain.
    horizon:
        Number of rounds to simulate.
    initial_state:
        Starting state of the non-stationary copy (0 = W, 1 = B, 2 = F).
    rng:
        Seed or generator.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1; got {horizon}")
    chain = bfw_leader_chain(p)
    if not 0 <= initial_state < chain.num_states:
        raise ConfigurationError(
            f"initial_state must be in 0..{chain.num_states - 1}; got {initial_state}"
        )
    generator = as_rng(rng)
    cumulative = np.cumsum(chain.transition_matrix, axis=1)
    pi = chain.stationary_distribution()

    state_x = initial_state
    state_tilde = int(generator.choice(chain.num_states, p=pi))
    count_x = int(state_x == STATE_B)
    count_tilde = int(state_tilde == STATE_B)

    met = state_x == state_tilde
    meeting_time = 0 if met else horizon + 1
    max_gap = abs(count_tilde - count_x)

    for round_index in range(1, horizon + 1):
        u = generator.random()
        state_x = int(np.searchsorted(cumulative[state_x], u, side="right"))
        if met:
            state_tilde = state_x
        else:
            v = generator.random()
            state_tilde = int(
                np.searchsorted(cumulative[state_tilde], v, side="right")
            )
            if state_tilde == state_x:
                met = True
                meeting_time = round_index
        count_x += state_x == STATE_B
        count_tilde += state_tilde == STATE_B
        max_gap = max(max_gap, abs(count_tilde - count_x))

    return CouplingOutcome(
        meeting_time=meeting_time,
        max_beep_gap=max_gap,
        final_gap=abs(count_tilde - count_x),
        horizon=horizon,
    )


def empirical_meeting_time_distribution(
    p: float,
    horizon: int,
    num_samples: int,
    initial_state: int = 0,
    rng: RngLike = None,
) -> np.ndarray:
    """Meeting times of many independent coupling runs.

    Used by the anti-concentration benchmark to confirm that the coupling
    meets quickly (geometrically fast), which is what makes the ±1 transfer
    of Claim 16 essentially free.
    """
    generator = as_rng(rng)
    return np.array(
        [
            simulate_coupling(p, horizon, initial_state, rng=generator).meeting_time
            for _ in range(num_samples)
        ],
        dtype=np.int64,
    )
