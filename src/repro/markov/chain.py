"""Generic finite Markov chains.

The probabilistic analysis of the paper (Section 4) works with the
three-state chain ``W → B → F`` that describes a leader's behaviour while it
is not disturbed by other nodes.  The machinery here is deliberately more
general — arbitrary finite chains with dense transition matrices — because
the anti-concentration experiment (E7) and several tests also exercise it on
other small chains, and because the stationary-distribution and mixing
utilities are reusable substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FiniteMarkovChain:
    """A finite Markov chain given by its transition matrix.

    Attributes
    ----------
    transition_matrix:
        Row-stochastic matrix ``P``; ``P[i, j]`` is the probability of moving
        from state ``i`` to state ``j``.
    state_names:
        Optional display names, one per state.
    """

    transition_matrix: np.ndarray
    state_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        matrix = np.asarray(self.transition_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"transition matrix must be square; got shape {matrix.shape}"
            )
        if (matrix < -1e-12).any():
            raise ConfigurationError("transition matrix has negative entries")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ConfigurationError(
                f"transition matrix rows must sum to 1; got {row_sums}"
            )
        object.__setattr__(self, "transition_matrix", matrix)
        if self.state_names and len(self.state_names) != matrix.shape[0]:
            raise ConfigurationError(
                "state_names length does not match the number of states"
            )

    @property
    def num_states(self) -> int:
        """Number of states of the chain."""
        return self.transition_matrix.shape[0]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def is_irreducible(self) -> bool:
        """Whether every state can reach every other state."""
        reachable = self._reachability()
        return bool(reachable.all())

    def is_aperiodic(self) -> bool:
        """Whether the chain is aperiodic (gcd of cycle lengths is one).

        Checked via the standard trick: the chain is aperiodic iff some power
        ``P^k`` with ``k ≤ n²`` has all-positive entries on the support of the
        reachability relation.  For the small chains used here an exact period
        computation per state is affordable.
        """
        n = self.num_states
        period = 0
        support = self.transition_matrix > 0
        power = np.eye(n, dtype=bool)
        lengths = []
        for k in range(1, 2 * n * n + 1):
            power = (power @ support) > 0
            if power[0, 0]:
                lengths.append(k)
        if not lengths:
            return False
        period = lengths[0]
        for length in lengths[1:]:
            period = int(np.gcd(period, length))
            if period == 1:
                return True
        return period == 1

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution ``π`` with ``π P = π``.

        Computed from the left eigenvector of eigenvalue 1; assumes the chain
        is irreducible so that the distribution is unique.
        """
        eigenvalues, eigenvectors = np.linalg.eig(self.transition_matrix.T)
        index = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vector = np.real(eigenvectors[:, index])
        vector = np.abs(vector)
        return vector / vector.sum()

    def mixing_bound(self) -> float:
        """The second-largest eigenvalue modulus (SLEM), a mixing-rate proxy."""
        eigenvalues = np.linalg.eigvals(self.transition_matrix)
        moduli = np.sort(np.abs(eigenvalues))[::-1]
        return float(moduli[1]) if len(moduli) > 1 else 0.0

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    def sample_path(
        self,
        length: int,
        initial_state: Optional[int] = None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Sample a trajectory ``X_1, ..., X_length``.

        Parameters
        ----------
        length:
            Number of steps to generate.
        initial_state:
            State of ``X_1``; when ``None``, ``X_1`` is drawn from the
            stationary distribution (the setting of Theorem 13).
        rng:
            Seed or generator.
        """
        if length < 1:
            raise ConfigurationError(f"path length must be >= 1; got {length}")
        generator = as_rng(rng)
        n = self.num_states
        cumulative = np.cumsum(self.transition_matrix, axis=1)
        path = np.empty(length, dtype=np.int64)
        if initial_state is None:
            pi = self.stationary_distribution()
            path[0] = int(generator.choice(n, p=pi))
        else:
            if not 0 <= initial_state < n:
                raise ConfigurationError(
                    f"initial state {initial_state} outside 0..{n - 1}"
                )
            path[0] = initial_state
        uniforms = generator.random(length)
        for t in range(1, length):
            row = cumulative[path[t - 1]]
            path[t] = int(np.searchsorted(row, uniforms[t], side="right"))
        return path

    def sample_many_paths(
        self,
        num_paths: int,
        length: int,
        initial_state: Optional[int] = None,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Sample ``num_paths`` independent trajectories, vectorised over paths.

        Returns an integer array of shape ``(num_paths, length)``.
        """
        if num_paths < 1:
            raise ConfigurationError(f"num_paths must be >= 1; got {num_paths}")
        generator = as_rng(rng)
        n = self.num_states
        cumulative = np.cumsum(self.transition_matrix, axis=1)
        paths = np.empty((num_paths, length), dtype=np.int64)
        if initial_state is None:
            pi = self.stationary_distribution()
            paths[:, 0] = generator.choice(n, size=num_paths, p=pi)
        else:
            paths[:, 0] = initial_state
        uniforms = generator.random((num_paths, length))
        for t in range(1, length):
            rows = cumulative[paths[:, t - 1]]
            paths[:, t] = (uniforms[:, t : t + 1] >= rows).sum(axis=1)
        return paths

    def visit_counts(
        self, paths: np.ndarray, state: int
    ) -> np.ndarray:
        """``N_t(state)`` for each path: number of visits to ``state``.

        Parameters
        ----------
        paths:
            Array of shape ``(num_paths, length)`` as produced by
            :meth:`sample_many_paths`.
        state:
            The state whose visits are counted.
        """
        return (np.asarray(paths) == state).sum(axis=1)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _reachability(self) -> np.ndarray:
        support = self.transition_matrix > 0
        reach = np.eye(self.num_states, dtype=bool) | support
        for _ in range(self.num_states):
            updated = reach | (reach @ reach)
            if (updated == reach).all():
                break
            reach = updated
        return reach
