"""Graph generators used by the examples, tests and benchmarks.

Every generator returns a :class:`~repro.graphs.topology.Topology` with a
descriptive name.  The families mirror those commonly used to evaluate
beeping-model algorithms:

* worst-case-diameter families: paths, cycles, caterpillars, barbells,
  lollipops;
* low-diameter families: cliques, stars, hypercubes;
* "physical deployment" families: grids, tori, random geometric graphs;
* random families: connected Erdős–Rényi graphs, random trees,
  random regular graphs.

Randomised generators take a ``numpy`` :class:`~numpy.random.Generator` (or a
seed) so that every experiment is exactly reproducible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import TopologyError
from repro.graphs.topology import Edge, Topology, topology_from_networkx


# --------------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------------- #


def path_graph(n: int) -> Topology:
    """A path on ``n`` nodes: the worst case for the diameter (``D = n - 1``)."""
    if n < 1:
        raise TopologyError(f"path graph needs n >= 1; got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology(n, edges, name=f"path({n})")


def cycle_graph(n: int) -> Topology:
    """A cycle on ``n`` nodes (``D = floor(n / 2)``)."""
    if n < 3:
        raise TopologyError(f"cycle graph needs n >= 3; got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, edges, name=f"cycle({n})")


def clique_graph(n: int) -> Topology:
    """The complete graph on ``n`` nodes (``D = 1``), the single-hop setting of [17]."""
    if n < 1:
        raise TopologyError(f"clique needs n >= 1; got {n}")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology(n, edges, name=f"clique({n})")


def star_graph(n: int) -> Topology:
    """A star with one hub and ``n - 1`` leaves (``D = 2``)."""
    if n < 2:
        raise TopologyError(f"star graph needs n >= 2; got {n}")
    edges = [(0, i) for i in range(1, n)]
    return Topology(n, edges, name=f"star({n})")


def grid_graph(rows: int, cols: int) -> Topology:
    """A ``rows × cols`` grid (``D = rows + cols - 2``)."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid needs positive dimensions; got {rows}x{cols}")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return Topology(rows * cols, edges, name=f"grid({rows}x{cols})")


def torus_graph(rows: int, cols: int) -> Topology:
    """A ``rows × cols`` torus (grid with wrap-around edges)."""
    if rows < 3 or cols < 3:
        raise TopologyError(f"torus needs both dimensions >= 3; got {rows}x{cols}")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.append((node, right))
            edges.append((node, down))
    return Topology(rows * cols, edges, name=f"torus({rows}x{cols})")


def binary_tree_graph(depth: int) -> Topology:
    """A complete binary tree of the given depth (``n = 2^(depth+1) - 1``)."""
    if depth < 0:
        raise TopologyError(f"tree depth must be non-negative; got {depth}")
    n = 2 ** (depth + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return Topology(n, edges, name=f"binary-tree(depth={depth})")


def hypercube_graph(dimension: int) -> Topology:
    """The ``dimension``-dimensional hypercube (``n = 2^dimension``, ``D = dimension``)."""
    if dimension < 1:
        raise TopologyError(f"hypercube dimension must be >= 1; got {dimension}")
    n = 2**dimension
    edges: List[Edge] = []
    for node in range(n):
        for bit in range(dimension):
            neighbour = node ^ (1 << bit)
            if neighbour > node:
                edges.append((node, neighbour))
    return Topology(n, edges, name=f"hypercube({dimension})")


def barbell_graph(clique_size: int, path_length: int) -> Topology:
    """Two cliques of ``clique_size`` nodes joined by a path of ``path_length`` edges.

    A classical high-diameter, high-degree stress test: waves must traverse
    the thin bridge to eliminate leaders in the opposite clique.
    """
    if clique_size < 2:
        raise TopologyError(f"barbell cliques need >= 2 nodes; got {clique_size}")
    if path_length < 1:
        raise TopologyError(f"barbell path needs >= 1 edge; got {path_length}")
    n = 2 * clique_size + max(0, path_length - 1)
    edges: List[Edge] = []
    # First clique: nodes 0 .. clique_size - 1.
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((i, j))
    # Second clique occupies the last clique_size labels.
    offset = n - clique_size
    for i in range(clique_size):
        for j in range(i + 1, clique_size):
            edges.append((offset + i, offset + j))
    # Path bridging node clique_size - 1 to node offset.
    bridge = [clique_size - 1]
    bridge.extend(range(clique_size, offset))
    bridge.append(offset)
    for u, v in zip(bridge, bridge[1:]):
        edges.append((u, v))
    return Topology(n, edges, name=f"barbell({clique_size},{path_length})")


def lollipop_graph(clique_size: int, path_length: int) -> Topology:
    """A clique with a path attached (the ``networkx`` lollipop graph)."""
    if clique_size < 2 or path_length < 1:
        raise TopologyError(
            f"lollipop needs clique >= 2 and path >= 1; got {clique_size}, {path_length}"
        )
    graph = nx.lollipop_graph(clique_size, path_length)
    return topology_from_networkx(
        graph, name=f"lollipop({clique_size},{path_length})"
    )


def caterpillar_graph(spine_length: int, legs_per_node: int) -> Topology:
    """A path ("spine") where every spine node has ``legs_per_node`` pendant leaves."""
    if spine_length < 1 or legs_per_node < 0:
        raise TopologyError(
            "caterpillar needs spine_length >= 1 and legs_per_node >= 0; "
            f"got {spine_length}, {legs_per_node}"
        )
    edges: List[Edge] = [(i, i + 1) for i in range(spine_length - 1)]
    next_label = spine_length
    for spine_node in range(spine_length):
        for _ in range(legs_per_node):
            edges.append((spine_node, next_label))
            next_label += 1
    return Topology(
        next_label, edges, name=f"caterpillar({spine_length},{legs_per_node})"
    )


# --------------------------------------------------------------------------- #
# Random families
# --------------------------------------------------------------------------- #


def erdos_renyi_graph(
    n: int, probability: Optional[float] = None, rng: RngLike = None
) -> Topology:
    """A connected Erdős–Rényi graph ``G(n, p)``.

    Parameters
    ----------
    n:
        Number of nodes.
    probability:
        Edge probability.  Defaults to ``2 ln(n) / n``, comfortably above the
        connectivity threshold so that only a few retries are needed.
    rng:
        Seed or generator for reproducibility.
    """
    if n < 2:
        raise TopologyError(f"Erdős–Rényi graph needs n >= 2; got {n}")
    generator = as_rng(rng)
    if probability is None:
        probability = min(1.0, 2.0 * math.log(n) / n)
    for _ in range(100):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.gnp_random_graph(n, probability, seed=seed)
        if nx.is_connected(graph):
            return topology_from_networkx(
                graph, name=f"erdos-renyi({n},{probability:.3f})"
            )
    raise TopologyError(
        f"failed to sample a connected G({n}, {probability}) graph in 100 attempts"
    )


def random_geometric_graph(
    n: int, radius: Optional[float] = None, rng: RngLike = None
) -> Topology:
    """A connected random geometric graph in the unit square.

    Nodes are placed uniformly at random in ``[0, 1]²`` and joined when their
    Euclidean distance is at most ``radius``.  This is the canonical model of
    a colony of simple agents (or cheap radio devices) scattered in space,
    matching the biological deployments the paper's introduction motivates.
    """
    if n < 2:
        raise TopologyError(f"random geometric graph needs n >= 2; got {n}")
    generator = as_rng(rng)
    if radius is None:
        radius = min(1.0, 1.5 * math.sqrt(math.log(n) / (math.pi * n)))
    for _ in range(100):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.random_geometric_graph(n, radius, seed=seed)
        if nx.is_connected(graph):
            return topology_from_networkx(
                graph, name=f"geometric({n},{radius:.3f})"
            )
        radius *= 1.1
    raise TopologyError(
        f"failed to sample a connected geometric graph on {n} nodes in 100 attempts"
    )


def random_tree_graph(n: int, rng: RngLike = None) -> Topology:
    """A uniformly random labelled tree on ``n`` nodes (via a Prüfer sequence)."""
    if n < 1:
        raise TopologyError(f"random tree needs n >= 1; got {n}")
    if n <= 2:
        edges = [(0, 1)] if n == 2 else []
        return Topology(n, edges, name=f"random-tree({n})")
    generator = as_rng(rng)
    prufer = [int(generator.integers(0, n)) for _ in range(n - 2)]
    degree = [1] * n
    for node in prufer:
        degree[node] += 1
    edges: List[Edge] = []
    leaves = sorted(i for i in range(n) if degree[i] == 1)
    for node in prufer:
        leaf = leaves.pop(0)
        edges.append((leaf, node))
        degree[node] -= 1
        if degree[node] == 1:
            # Insert while keeping the list sorted for determinism.
            lo, hi = 0, len(leaves)
            while lo < hi:
                mid = (lo + hi) // 2
                if leaves[mid] < node:
                    lo = mid + 1
                else:
                    hi = mid
            leaves.insert(lo, node)
    edges.append((leaves[0], leaves[1]))
    return Topology(n, edges, name=f"random-tree({n})")


def random_regular_graph(n: int, degree: int, rng: RngLike = None) -> Topology:
    """A connected random ``degree``-regular graph on ``n`` nodes."""
    if degree < 2 or n <= degree or (n * degree) % 2 != 0:
        raise TopologyError(
            f"invalid random regular graph parameters: n={n}, degree={degree}"
        )
    generator = as_rng(rng)
    for _ in range(100):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, n, seed=seed)
        if nx.is_connected(graph):
            return topology_from_networkx(
                graph, name=f"random-regular({n},{degree})"
            )
    raise TopologyError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    )


# --------------------------------------------------------------------------- #
# Named factory
# --------------------------------------------------------------------------- #

#: Names accepted by :func:`make_graph`, mapping to generator callables that
#: take ``(n, rng)`` and return a topology of (approximately) ``n`` nodes.
GRAPH_FAMILIES: Tuple[str, ...] = (
    "path",
    "cycle",
    "clique",
    "star",
    "grid",
    "torus",
    "binary-tree",
    "hypercube",
    "erdos-renyi",
    "geometric",
    "random-tree",
    "barbell",
)


def make_graph(family: str, n: int, rng: RngLike = None) -> Topology:
    """Build a graph of (approximately) ``n`` nodes from a named family.

    Families whose natural parameters are not a node count (grids, trees,
    hypercubes, barbells) round ``n`` to the nearest admissible size; the
    returned topology's :attr:`~repro.graphs.topology.Topology.n` reports the
    actual size.
    """
    if family == "path":
        return path_graph(n)
    if family == "cycle":
        return cycle_graph(max(3, n))
    if family == "clique":
        return clique_graph(n)
    if family == "star":
        return star_graph(max(2, n))
    if family == "grid":
        side = max(2, int(round(math.sqrt(n))))
        return grid_graph(side, side)
    if family == "torus":
        side = max(3, int(round(math.sqrt(n))))
        return torus_graph(side, side)
    if family == "binary-tree":
        depth = max(1, int(round(math.log2(n + 1))) - 1)
        return binary_tree_graph(depth)
    if family == "hypercube":
        dimension = max(1, int(round(math.log2(n))))
        return hypercube_graph(dimension)
    if family == "erdos-renyi":
        return erdos_renyi_graph(n, rng=rng)
    if family == "geometric":
        return random_geometric_graph(n, rng=rng)
    if family == "random-tree":
        return random_tree_graph(n, rng=rng)
    if family == "barbell":
        clique_size = max(2, n // 4)
        path_length = max(1, n - 2 * clique_size + 1)
        return barbell_graph(clique_size, path_length)
    raise TopologyError(
        f"unknown graph family {family!r}; known families: {', '.join(GRAPH_FAMILIES)}"
    )
