"""Graph-theoretic property computations used by experiments and reports.

These helpers wrap the :class:`~repro.graphs.topology.Topology` distance
machinery and ``networkx`` with the small amount of glue needed by the
experiment harness: exact diameters, degree statistics, peripheral node
pairs (used to plant adversarial leaders at maximum distance), and summary
records suitable for inclusion in result tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import networkx as nx
import numpy as np

from repro.graphs.topology import Topology


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of a topology, as reported in experiment outputs."""

    name: str
    n: int
    num_edges: int
    diameter: int
    min_degree: int
    max_degree: int
    mean_degree: float
    is_tree: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view for JSON/CSV serialisation."""
        return {
            "name": self.name,
            "n": self.n,
            "num_edges": self.num_edges,
            "diameter": self.diameter,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": round(self.mean_degree, 3),
            "is_tree": self.is_tree,
        }


def exact_diameter(topology: Topology) -> int:
    """Compute the exact diameter, bypassing the topology's pruning heuristic.

    For very large graphs :meth:`Topology.diameter` uses a double-sweep
    heuristic which is exact on trees and the generator families used in the
    benchmarks, but may under-estimate on adversarial inputs; this function
    always runs full all-pairs BFS via ``networkx``.
    """
    if topology.n == 1:
        return 0
    return int(nx.diameter(topology.to_networkx()))


def degree_sequence(topology: Topology) -> np.ndarray:
    """Degrees of all nodes as an integer array indexed by node."""
    return np.array([topology.degree(node) for node in topology.nodes()], dtype=int)


def summarize(topology: Topology) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``topology``."""
    degrees = degree_sequence(topology)
    return GraphSummary(
        name=topology.name,
        n=topology.n,
        num_edges=topology.num_edges,
        diameter=topology.diameter(),
        min_degree=int(degrees.min()),
        max_degree=int(degrees.max()),
        mean_degree=float(degrees.mean()),
        is_tree=topology.num_edges == topology.n - 1,
    )


def peripheral_pair(topology: Topology) -> Tuple[int, int]:
    """Two nodes at (approximately) maximum distance from each other.

    Used by the lower-bound experiment (Section 5 of the paper) to place two
    leaders at the ends of a diameter-realising path.  The double-sweep pair
    is exact on trees and paths, which are the graphs that experiment uses.
    """
    if topology.n == 1:
        return (0, 0)
    first = int(np.argmax(topology.distances_from(0)))
    second = int(np.argmax(topology.distances_from(first)))
    return (first, second)


def distance_matrix(topology: Topology) -> np.ndarray:
    """All-pairs hop distances as an ``n × n`` integer array.

    Intended for small graphs only (analysis and tests); the memory cost is
    quadratic in ``n``.
    """
    n = topology.n
    matrix = np.zeros((n, n), dtype=int)
    for node in topology.nodes():
        matrix[node] = topology.distances_from(node).astype(int)
    return matrix


def is_bipartite(topology: Topology) -> bool:
    """Whether the graph is bipartite (relevant to wave-interference patterns)."""
    return bool(nx.is_bipartite(topology.to_networkx()))
