"""The :class:`Topology` abstraction used by every simulator in the library.

A topology is an undirected connected graph ``G = (V, E)`` with nodes labelled
``0 .. n-1``.  It stores the adjacency structure in three forms that different
parts of the library need:

* adjacency lists (for the reference simulator and analysis code),
* a ``scipy.sparse`` CSR adjacency matrix (for the vectorised engine),
* a ``networkx`` graph (for generators and graph-theoretic queries).

Distances and the diameter are computed lazily with breadth-first search and
cached, since the scaling experiments query them repeatedly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy import sparse

from repro.errors import TopologyError

Edge = Tuple[int, int]


class Topology:
    """An undirected, connected communication graph with integer node labels.

    Parameters
    ----------
    n:
        Number of nodes; nodes are labelled ``0 .. n-1``.
    edges:
        Iterable of undirected edges ``(u, v)``.  Self-loops are rejected and
        duplicate edges are collapsed.
    name:
        Optional human-readable name (e.g. ``"path(32)"``) used in reports.
    require_connected:
        If ``True`` (the default, matching the paper's assumption), raise
        :class:`TopologyError` when the graph is not connected.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        name: Optional[str] = None,
        require_connected: bool = True,
    ) -> None:
        if n < 1:
            raise TopologyError(f"a topology needs at least one node; got n={n}")
        self._n = int(n)
        self._name = name or f"graph(n={n})"

        unique_edges = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise TopologyError(f"self-loop on node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(
                    f"edge ({u}, {v}) references a node outside 0..{n - 1}"
                )
            unique_edges.add((min(u, v), max(u, v)))
        self._edges: Tuple[Edge, ...] = tuple(sorted(unique_edges))

        self._adjacency: List[List[int]] = [[] for _ in range(n)]
        for u, v in self._edges:
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
        for neighbours in self._adjacency:
            neighbours.sort()

        if require_connected and not self._is_connected():
            raise TopologyError(
                f"graph {self._name!r} with {n} nodes and {len(self._edges)} edges "
                "is not connected"
            )

        self._sparse: Optional[sparse.csr_matrix] = None
        self._nx: Optional[nx.Graph] = None
        self._distances: Dict[int, np.ndarray] = {}
        self._diameter: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def name(self) -> str:
        """Human-readable name of the topology."""
        return self._name

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All undirected edges, each as ``(min(u, v), max(u, v))``."""
        return self._edges

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def nodes(self) -> range:
        """The node labels ``0 .. n-1``."""
        return range(self._n)

    def neighbors(self, node: int) -> Sequence[int]:
        """The sorted neighbour list of ``node``."""
        return tuple(self._adjacency[node])

    def degree(self, node: int) -> int:
        """The degree of ``node``."""
        return len(self._adjacency[node])

    def adjacency_lists(self) -> Tuple[Tuple[int, ...], ...]:
        """All adjacency lists as immutable tuples, indexed by node."""
        return tuple(tuple(neigh) for neigh in self._adjacency)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge of the graph."""
        return v in self._adjacency[u]

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:
        return (
            f"Topology(name={self._name!r}, n={self._n}, edges={len(self._edges)})"
        )

    # ------------------------------------------------------------------ #
    # Derived structures
    # ------------------------------------------------------------------ #

    def sparse_adjacency(self) -> sparse.csr_matrix:
        """The ``n × n`` boolean adjacency matrix in CSR form (cached)."""
        if self._sparse is None:
            rows: List[int] = []
            cols: List[int] = []
            for u, v in self._edges:
                rows.extend((u, v))
                cols.extend((v, u))
            data = np.ones(len(rows), dtype=np.int8)
            self._sparse = sparse.csr_matrix(
                (data, (rows, cols)), shape=(self._n, self._n)
            )
        return self._sparse

    def to_networkx(self) -> nx.Graph:
        """A ``networkx`` view of the graph (cached)."""
        if self._nx is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(self._n))
            graph.add_edges_from(self._edges)
            self._nx = graph
        return self._nx

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #

    def distances_from(self, source: int) -> np.ndarray:
        """BFS distances from ``source`` to every node (cached per source)."""
        if source not in self._distances:
            self._distances[source] = self._bfs(source)
        return self._distances[source]

    def distance(self, u: int, v: int) -> int:
        """The hop distance between ``u`` and ``v``."""
        return int(self.distances_from(u)[v])

    def eccentricity(self, node: int) -> int:
        """The eccentricity of ``node`` (maximum distance to any other node)."""
        return int(self.distances_from(node).max())

    def diameter(self) -> int:
        """The diameter ``D`` of the graph (cached).

        For a single-node graph the diameter is defined as ``0``; the
        protocols that need a strictly positive ``D`` (such as the
        non-uniform BFW variant) clamp it to at least 1 themselves.
        """
        if self._diameter is None:
            if self._n == 1:
                self._diameter = 0
            else:
                self._diameter = max(
                    self.eccentricity(node) for node in self._peripheral_candidates()
                )
        return self._diameter

    def shortest_path(self, u: int, v: int) -> Tuple[int, ...]:
        """One shortest path from ``u`` to ``v`` as a tuple of nodes."""
        if u == v:
            return (u,)
        distances = self.distances_from(v)
        if not np.isfinite(distances[u]):
            raise TopologyError(f"no path between {u} and {v}")
        path = [u]
        current = u
        while current != v:
            current = min(
                self._adjacency[current], key=lambda w: distances[w]
            )
            path.append(current)
        return tuple(path)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _bfs(self, source: int) -> np.ndarray:
        distances = np.full(self._n, np.inf)
        distances[source] = 0
        frontier = [source]
        depth = 0
        while frontier:
            depth += 1
            next_frontier: List[int] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if not np.isfinite(distances[neighbour]):
                        distances[neighbour] = depth
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def _is_connected(self) -> bool:
        if self._n == 1:
            return True
        return bool(np.isfinite(self._bfs(0)).all())

    def _peripheral_candidates(self) -> Sequence[int]:
        """Nodes whose eccentricity is worth computing to find the diameter.

        Computing every eccentricity costs ``O(n · (n + m))``, which dominates
        large sweeps.  A double-BFS heuristic gives the exact diameter on
        trees and a lower bound in general; we use it to prune: we compute the
        eccentricity of the farthest node found by a double sweep plus every
        node (exact) only when the graph is small.
        """
        if self._n <= 512:
            return range(self._n)
        first = int(np.argmax(self.distances_from(0)))
        second = int(np.argmax(self.distances_from(first)))
        # Exact enough for the generator families used in the benchmarks
        # (paths, cycles, grids, trees, random graphs); for adversarial inputs
        # callers can always fall back to networkx.diameter.
        return (0, first, second)


def topology_from_networkx(graph: nx.Graph, name: Optional[str] = None) -> Topology:
    """Build a :class:`Topology` from a ``networkx`` graph.

    Node labels are remapped to ``0 .. n-1`` in sorted order of the original
    labels, so the result is deterministic for a given input graph.
    """
    nodes = sorted(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges()]
    return Topology(len(nodes), edges, name=name)
