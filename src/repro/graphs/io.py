"""Reading and writing topologies as plain-text edge lists.

The format is intentionally minimal so that graphs can be exchanged with
other tools and checked into test fixtures:

* lines starting with ``#`` are comments;
* the first non-comment line is ``n <number of nodes>``;
* every following non-comment line is an edge ``u v``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Tuple, Union

from repro.errors import TopologyError
from repro.graphs.topology import Topology

PathLike = Union[str, Path]


def write_edge_list(topology: Topology, path: PathLike) -> None:
    """Write ``topology`` to ``path`` in the edge-list format."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("w", encoding="utf-8") as handle:
        handle.write(dumps_edge_list(topology))


def read_edge_list(path: PathLike, name: str = "") -> Topology:
    """Read a topology from an edge-list file."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        return loads_edge_list(handle.read(), name=name or source.stem)


def dumps_edge_list(topology: Topology) -> str:
    """Serialise ``topology`` to an edge-list string."""
    buffer = io.StringIO()
    buffer.write(f"# topology: {topology.name}\n")
    buffer.write(f"n {topology.n}\n")
    for u, v in topology.edges:
        buffer.write(f"{u} {v}\n")
    return buffer.getvalue()


def loads_edge_list(text: str, name: str = "") -> Topology:
    """Parse a topology from an edge-list string."""
    n = None
    edges: List[Tuple[int, int]] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if n is None:
            if len(parts) != 2 or parts[0] != "n":
                raise TopologyError(
                    f"line {line_number}: expected header 'n <count>', got {raw_line!r}"
                )
            n = int(parts[1])
            continue
        if len(parts) != 2:
            raise TopologyError(
                f"line {line_number}: expected edge 'u v', got {raw_line!r}"
            )
        edges.append((int(parts[0]), int(parts[1])))
    if n is None:
        raise TopologyError("edge-list text contains no header line")
    return Topology(n, edges, name=name or f"edge-list({n})")
