"""Core protocol definitions: the paper's contribution (BFW) and variants."""

from repro.core.bfw import (
    DEFAULT_BEEP_PROBABILITY,
    BFWProtocol,
    NonUniformBFWProtocol,
)
from repro.core.protocol import (
    BeepingProtocol,
    MemoryProtocol,
    TransitionTable,
    bernoulli,
    deterministic,
    enumerate_reachable_states,
)
from repro.core.rng import RngLike, as_rng
from repro.core.registry import (
    ProtocolSpec,
    available_protocols,
    create_protocol,
    get_protocol_spec,
    register_protocol,
)
from repro.core.states import (
    BEEPING_STATES,
    FOLLOWER_STATES,
    FROZEN_STATES,
    LEADER_STATES,
    LISTENING_STATES,
    NUM_STATES,
    WAITING_STATES,
    Behaviour,
    State,
    state_from_short_name,
)
from repro.core.variants import (
    EagerEliminationBFWProtocol,
    NoFreezeBFWProtocol,
    NoRelayBFWProtocol,
)

__all__ = [
    "BEEPING_STATES",
    "BFWProtocol",
    "BeepingProtocol",
    "Behaviour",
    "DEFAULT_BEEP_PROBABILITY",
    "EagerEliminationBFWProtocol",
    "FOLLOWER_STATES",
    "FROZEN_STATES",
    "LEADER_STATES",
    "LISTENING_STATES",
    "MemoryProtocol",
    "NUM_STATES",
    "NoFreezeBFWProtocol",
    "NoRelayBFWProtocol",
    "NonUniformBFWProtocol",
    "ProtocolSpec",
    "RngLike",
    "State",
    "TransitionTable",
    "WAITING_STATES",
    "as_rng",
    "available_protocols",
    "bernoulli",
    "create_protocol",
    "deterministic",
    "enumerate_reachable_states",
    "get_protocol_spec",
    "register_protocol",
    "state_from_short_name",
]
