"""Protocol abstractions for weak communication models.

The paper defines a protocol as a probabilistic state machine
``M = (Qℓ, Qb, qs, δ⊥, δ⊤)`` where ``Qℓ`` and ``Qb`` are the listening and
beeping states, ``qs`` is the initial state, and ``δ⊥`` / ``δ⊤`` are the
transition kernels applied when a node hears silence / a beep (a node also
"hears" its own beep).

Two interfaces are provided:

* :class:`BeepingProtocol` — the constant-state probabilistic FSM of
  Section 1.1.  This is the interface implemented by BFW and its variants.
  States are hashable objects (typically members of an :class:`enum.IntEnum`),
  and the transition kernels are explicit, which lets tooling enumerate the
  state machine, verify it, and compile it into the vectorised engine.
* :class:`MemoryProtocol` — a more permissive interface for baseline
  algorithms that keep unbounded per-node memory (identifiers, counters,
  phase indices).  Such protocols still communicate only by beeps, but their
  per-node state is an arbitrary Python object and they may receive global
  knowledge (``n``, ``D``) at construction time, mirroring the "Knowledge"
  column of Table 1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, Mapping, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import ProtocolError

StateT = TypeVar("StateT", bound=Hashable)

#: A transition distribution: mapping from successor state to probability.
Distribution = Mapping[StateT, float]


@dataclass(frozen=True)
class TransitionTable(Generic[StateT]):
    """Explicit representation of the two transition kernels of a protocol.

    Attributes
    ----------
    silent:
        ``δ⊥`` — for each state, the distribution over successor states used
        when neither the node nor any neighbour beeped.
    heard:
        ``δ⊤`` — for each state, the distribution over successor states used
        when the node beeped or heard a beep.
    """

    silent: Mapping[StateT, Dict[StateT, float]]
    heard: Mapping[StateT, Dict[StateT, float]]

    def states(self) -> Tuple[StateT, ...]:
        """All states mentioned in either kernel, in deterministic order."""
        seen = []
        for kernel in (self.silent, self.heard):
            for state, dist in kernel.items():
                if state not in seen:
                    seen.append(state)
                for succ in dist:
                    if succ not in seen:
                        seen.append(succ)
        return tuple(seen)

    def validate(self) -> None:
        """Check that every row of both kernels is a probability distribution.

        Raises
        ------
        ProtocolError
            If any row has negative probabilities or does not sum to one
            (within a small numerical tolerance).
        """
        for label, kernel in (("silent", self.silent), ("heard", self.heard)):
            for state, dist in kernel.items():
                total = 0.0
                for succ, prob in dist.items():
                    if prob < 0.0:
                        raise ProtocolError(
                            f"negative probability {prob} for transition "
                            f"{state!r} -> {succ!r} in the {label} kernel"
                        )
                    total += prob
                if abs(total - 1.0) > 1e-9:
                    raise ProtocolError(
                        f"transition probabilities from state {state!r} in the "
                        f"{label} kernel sum to {total}, expected 1"
                    )


class BeepingProtocol(abc.ABC, Generic[StateT]):
    """A constant-state protocol for the beeping model (Section 1.1).

    Subclasses must provide the initial state, the classification of states
    into beeping / leader sets, and the probabilistic transition function.
    The :meth:`transition_table` method exposes the kernels explicitly so
    that the protocol can be model-checked and compiled into the vectorised
    engine.
    """

    #: Human-readable protocol name used by the registry and reports.
    name: str = "beeping-protocol"

    @property
    @abc.abstractmethod
    def initial_state(self) -> StateT:
        """The state ``qs`` in which every node starts."""

    @abc.abstractmethod
    def states(self) -> Sequence[StateT]:
        """All states of the protocol, in a deterministic order."""

    @abc.abstractmethod
    def is_beeping(self, state: StateT) -> bool:
        """Whether a node in ``state`` emits a beep this round."""

    @abc.abstractmethod
    def is_leader(self, state: StateT) -> bool:
        """Whether ``state`` belongs to the leader set ``L`` of Definition 1."""

    @abc.abstractmethod
    def transition_table(self) -> TransitionTable[StateT]:
        """The explicit kernels ``δ⊥`` and ``δ⊤``."""

    def transition(
        self, state: StateT, heard_beep: bool, rng: np.random.Generator
    ) -> StateT:
        """Sample the successor of ``state``.

        Parameters
        ----------
        state:
            The node's current state.
        heard_beep:
            ``True`` if the node beeped this round or at least one neighbour
            did (the ``δ⊤`` case), ``False`` otherwise (the ``δ⊥`` case).
        rng:
            Source of randomness for the probabilistic transitions.
        """
        table = self.transition_table()
        kernel = table.heard if heard_beep else table.silent
        try:
            dist = kernel[state]
        except KeyError:
            raise ProtocolError(
                f"protocol {self.name!r} has no "
                f"{'heard' if heard_beep else 'silent'} transition from {state!r}"
            ) from None
        return _sample(dist, rng)

    def num_states(self) -> int:
        """Number of memory states used by the protocol."""
        return len(self.states())

    def validate(self) -> None:
        """Check internal consistency of the protocol definition.

        Verifies that the kernels are stochastic, that every state has a
        ``δ⊤`` transition, that every listening state has a ``δ⊥`` transition,
        and that the initial state is a declared state.
        """
        table = self.transition_table()
        table.validate()
        states = list(self.states())
        if self.initial_state not in states:
            raise ProtocolError(
                f"initial state {self.initial_state!r} is not a declared state"
            )
        for state in states:
            if state not in table.heard:
                raise ProtocolError(f"state {state!r} has no δ⊤ transition")
            if not self.is_beeping(state) and state not in table.silent:
                raise ProtocolError(
                    f"listening state {state!r} has no δ⊥ transition"
                )

    def leader_states(self) -> Tuple[StateT, ...]:
        """The subset ``L`` of states interpreted as "being a leader"."""
        return tuple(s for s in self.states() if self.is_leader(s))

    def beeping_states(self) -> Tuple[StateT, ...]:
        """The subset ``Qb`` of beeping states."""
        return tuple(s for s in self.states() if self.is_beeping(s))

    def describe(self) -> str:
        """A multi-line human-readable description of the state machine."""
        table = self.transition_table()
        lines = [f"Protocol {self.name!r} with {self.num_states()} states"]
        lines.append(f"  initial state: {self.initial_state!r}")
        lines.append(f"  beeping states: {list(self.beeping_states())!r}")
        lines.append(f"  leader states: {list(self.leader_states())!r}")
        for label, kernel in (("δ⊥ (silent)", table.silent), ("δ⊤ (heard)", table.heard)):
            lines.append(f"  {label}:")
            for state, dist in kernel.items():
                entries = ", ".join(f"{succ!r}: {p:g}" for succ, p in dist.items())
                lines.append(f"    {state!r} -> {{{entries}}}")
        return "\n".join(lines)


class MemoryProtocol(abc.ABC):
    """A beeping-model algorithm with unbounded per-node memory.

    Baseline algorithms from Table 1 (ID broadcast, pipelined elections,
    D-aware epoch protocols) keep counters and identifiers that grow with
    ``n`` or ``D``.  They therefore do not fit the constant-state FSM
    interface; instead, each node carries an arbitrary Python object as its
    memory and the protocol mutates it round by round.

    The simulator treats such protocols uniformly: each round it collects the
    set of beeping nodes from :meth:`wants_to_beep`, computes who heard a
    beep, and calls :meth:`update` for every node.
    """

    #: Human-readable protocol name used by the registry and reports.
    name: str = "memory-protocol"

    #: Whether the algorithm requires unique node identifiers (Table 1 column).
    requires_unique_ids: bool = False

    #: Knowledge required by the algorithm: subset of {"n", "D"} (Table 1).
    required_knowledge: Tuple[str, ...] = ()

    @abc.abstractmethod
    def create_memory(self, node: int, n: int, rng: np.random.Generator) -> object:
        """Create the initial memory object for ``node`` in a graph of ``n`` nodes."""

    @abc.abstractmethod
    def wants_to_beep(self, memory: object, round_index: int) -> bool:
        """Whether the node beeps in ``round_index`` given its current memory."""

    @abc.abstractmethod
    def update(
        self,
        memory: object,
        heard_beep: bool,
        round_index: int,
        rng: np.random.Generator,
    ) -> object:
        """Return the node's memory for the next round."""

    @abc.abstractmethod
    def is_leader(self, memory: object) -> bool:
        """Whether the node currently considers itself (a candidate) leader."""

    def has_terminated(self, memory: object) -> bool:
        """Whether the node has irrevocably committed to its final role.

        Protocols without termination detection (such as BFW) never return
        ``True``; Table-1 baselines with termination detection override this.
        """
        return False


def _sample(distribution: Distribution, rng: np.random.Generator) -> StateT:
    """Sample a successor state from ``distribution`` using ``rng``."""
    items = list(distribution.items())
    if len(items) == 1:
        return items[0][0]
    probabilities = np.array([p for _, p in items], dtype=float)
    index = rng.choice(len(items), p=probabilities / probabilities.sum())
    return items[index][0]


def deterministic(successor: StateT) -> Dict[StateT, float]:
    """Build a point-mass distribution on ``successor`` (helper for tables)."""
    return {successor: 1.0}


def bernoulli(
    on_success: StateT, on_failure: StateT, probability: float
) -> Dict[StateT, float]:
    """Build a two-outcome distribution used for coin-toss transitions."""
    if not 0.0 <= probability <= 1.0:
        raise ProtocolError(f"probability {probability} outside [0, 1]")
    if probability == 1.0:
        return {on_success: 1.0}
    if probability == 0.0:
        return {on_failure: 1.0}
    return {on_success: probability, on_failure: 1.0 - probability}


def enumerate_reachable_states(
    protocol: BeepingProtocol[StateT],
) -> Tuple[StateT, ...]:
    """Return all states reachable from the initial state under either kernel.

    Useful to check that a protocol does not declare unreachable states and
    that its reachable state count matches the paper's headline constant.
    """
    table = protocol.transition_table()
    frontier = [protocol.initial_state]
    reachable = []
    while frontier:
        state = frontier.pop()
        if state in reachable:
            continue
        reachable.append(state)
        for kernel in (table.silent, table.heard):
            for succ in kernel.get(state, {}):
                if succ not in reachable:
                    frontier.append(succ)
    order = {s: i for i, s in enumerate(protocol.states())}
    return tuple(sorted(reachable, key=lambda s: order.get(s, len(order))))
