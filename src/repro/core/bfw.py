"""The BFW protocol of the paper (Figure 1).

BFW ("Beep–Frozen–Waiting") is a six-state uniform protocol that solves
eventual leader election in the beeping model on any connected graph:

* Every node starts as a leader, in state ``W•``.
* A leader in ``W•`` that hears nothing beeps in the next round with
  probability ``p`` (transitioning to ``B•``); otherwise it stays in ``W•``.
* A leader in ``W•`` that hears a beep is *eliminated*: it transitions to
  ``B◦`` (it relays the beep in the next round as a non-leader).
* A non-leader in ``W◦`` relays any beep it hears (``W◦ → B◦``) and otherwise
  stays silent.
* After beeping, any node becomes Frozen for exactly one round
  (``B → F → W``), during which it neither beeps nor reacts to beeps.

Theorem 2 of the paper shows that for any constant ``p ∈ (0, 1)`` the system
converges to a unique leader almost surely, and within ``O(D² log n)`` rounds
with high probability.  Theorem 3 shows that choosing ``p = 1/(D + 1)``
(which requires knowing the diameter ``D``) improves this to ``O(D log n)``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.protocol import (
    BeepingProtocol,
    TransitionTable,
    bernoulli,
    deterministic,
)
from repro.core.states import State
from repro.errors import ProtocolError

#: Default beeping probability suggested by the paper ("say 1/2").
DEFAULT_BEEP_PROBABILITY = 0.5


class BFWProtocol(BeepingProtocol[State]):
    """The six-state BFW protocol with a constant beep probability ``p``.

    Parameters
    ----------
    beep_probability:
        The probability ``p`` with which a waiting leader that hears nothing
        beeps in the next round.  The paper requires ``p ∈ (0, 1)`` and fixed
        with respect to ``n`` for the uniform guarantee of Theorem 2.

    Examples
    --------
    >>> protocol = BFWProtocol()
    >>> protocol.initial_state
    <State.W_LEADER: 0>
    >>> protocol.num_states()
    6
    """

    name = "bfw"

    def __init__(self, beep_probability: float = DEFAULT_BEEP_PROBABILITY) -> None:
        if not 0.0 < beep_probability < 1.0:
            raise ProtocolError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._p = float(beep_probability)

    @property
    def beep_probability(self) -> float:
        """The parameter ``p`` of the protocol."""
        return self._p

    @property
    def initial_state(self) -> State:
        return State.W_LEADER

    def states(self) -> Sequence[State]:
        return tuple(State)

    def is_beeping(self, state: State) -> bool:
        return state.is_beeping

    def is_leader(self, state: State) -> bool:
        return state.is_leader

    def transition_table(self) -> TransitionTable[State]:
        """The kernels of Figure 1.

        ``δ⊥`` (silent) is only defined for listening states: beeping states
        always hear their own beep, so ``δ⊤`` systematically applies to them.
        For completeness (and so that the generic simulator never hits a
        missing entry), we also include the ``B`` rows in the silent kernel;
        they can never be used because a beeping node always triggers ``δ⊤``.
        """
        p = self._p
        silent: Dict[State, Dict[State, float]] = {
            State.W_LEADER: bernoulli(State.B_LEADER, State.W_LEADER, p),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.W_FOLLOWER),
            State.F_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        heard: Dict[State, Dict[State, float]] = {
            State.W_LEADER: deterministic(State.B_FOLLOWER),
            State.B_LEADER: deterministic(State.F_LEADER),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.B_FOLLOWER),
            State.B_FOLLOWER: deterministic(State.F_FOLLOWER),
            State.F_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        return TransitionTable(silent=silent, heard=heard)

    def __repr__(self) -> str:
        return f"BFWProtocol(beep_probability={self._p!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BFWProtocol):
            return NotImplemented
        return type(self) is type(other) and self._p == other._p

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._p))


class NonUniformBFWProtocol(BFWProtocol):
    """BFW with ``p = 1/(D + 1)`` as in Theorem 3.

    This variant is *non-uniform*: it requires (an approximation of) the
    network diameter ``D`` at construction time, in exchange for an improved
    ``O(D log n)`` convergence bound.

    Parameters
    ----------
    diameter:
        The diameter ``D`` of the communication graph (or a constant-factor
        approximation of it; the paper notes the proof generalises).
    scale:
        Optional multiplicative factor applied to the diameter before
        computing ``p = 1 / (scale * D + 1)``.  ``scale = 1`` reproduces the
        exact value used in Theorem 3.
    """

    name = "bfw-nonuniform"

    def __init__(self, diameter: int, scale: float = 1.0) -> None:
        if diameter < 1:
            raise ProtocolError(f"diameter must be at least 1; got {diameter}")
        if scale <= 0:
            raise ProtocolError(f"scale must be positive; got {scale}")
        self._diameter = int(diameter)
        self._scale = float(scale)
        super().__init__(beep_probability=1.0 / (self._scale * self._diameter + 1.0))

    @property
    def diameter(self) -> int:
        """The diameter value supplied to the protocol."""
        return self._diameter

    @property
    def scale(self) -> float:
        """The approximation factor applied to the diameter."""
        return self._scale

    def __repr__(self) -> str:
        return (
            f"NonUniformBFWProtocol(diameter={self._diameter!r}, scale={self._scale!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NonUniformBFWProtocol):
            return NotImplemented
        return self._diameter == other._diameter and self._scale == other._scale

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._diameter, self._scale))
