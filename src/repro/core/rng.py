"""The one shared RNG-normalisation helper.

Almost every randomised component of the library accepts the same loose
``rng`` argument — an integer seed, an existing :class:`numpy.random.Generator`
to be used as-is, or ``None`` for OS entropy — and historically each module
carried its own private ``_as_rng`` copy of the normalisation.  This module
owns the single canonical version; everything (simulators, engines, graph
generators, adversaries, schedules, statistics) imports it from here.

It lives in :mod:`repro.core` because the core package only depends on
:mod:`repro.errors`, so any other package can import it without creating an
import cycle.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: What callers may pass wherever a generator is needed: an integer seed, a
#: prebuilt generator (used as-is), or ``None`` (OS entropy).
RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Normalise a seed / generator / ``None`` into a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged (its stream keeps advancing
    in place); anything else is handed to :func:`numpy.random.default_rng`.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
