"""Ablation variants of the BFW protocol.

The paper motivates each ingredient of BFW implicitly through its analysis:

* the **Frozen** state is what prevents a beep wave from bouncing back and
  forth between two adjacent nodes forever and, more importantly, it is what
  makes the flow argument (Section 3) work so that a leader can never be
  eliminated by its own wave;
* the **relaying** rule (``W◦ → B◦`` on hearing a beep) is what turns a
  single beep into a wave that travels across the graph and eliminates
  remote leaders.

The ablation variants below remove one ingredient at a time.  They are used
by the ablation benchmark (experiment E8 in DESIGN.md) to demonstrate
empirically that the full six-state design is necessary: the ablated
protocols either deadlock into multi-leader configurations, eliminate every
leader, or fail to make progress on simple graphs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.protocol import (
    BeepingProtocol,
    TransitionTable,
    bernoulli,
    deterministic,
)
from repro.core.states import State
from repro.errors import ProtocolError


class NoFreezeBFWProtocol(BeepingProtocol[State]):
    """BFW without the Frozen state (four effective states).

    After beeping, a node returns directly to Waiting instead of spending one
    round Frozen.  Without the refractory round, two adjacent beeping nodes
    re-trigger each other indefinitely and, crucially, a wave can travel back
    towards its originating leader and eliminate it — the property that
    Lemma 9 rules out for the real protocol no longer holds.  The state
    machine still uses the :class:`~repro.core.states.State` enumeration for
    compatibility with the rest of the library, but the two Frozen states are
    unreachable.
    """

    name = "bfw-no-freeze"

    def __init__(self, beep_probability: float = 0.5) -> None:
        if not 0.0 < beep_probability < 1.0:
            raise ProtocolError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._p = float(beep_probability)

    @property
    def beep_probability(self) -> float:
        """The probability with which a silent waiting leader beeps."""
        return self._p

    @property
    def initial_state(self) -> State:
        return State.W_LEADER

    def states(self) -> Sequence[State]:
        return (
            State.W_LEADER,
            State.B_LEADER,
            State.W_FOLLOWER,
            State.B_FOLLOWER,
        )

    def is_beeping(self, state: State) -> bool:
        return state.is_beeping

    def is_leader(self, state: State) -> bool:
        return state.is_leader

    def transition_table(self) -> TransitionTable[State]:
        p = self._p
        silent: Dict[State, Dict[State, float]] = {
            State.W_LEADER: bernoulli(State.B_LEADER, State.W_LEADER, p),
            State.W_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        heard: Dict[State, Dict[State, float]] = {
            State.W_LEADER: deterministic(State.B_FOLLOWER),
            State.B_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.B_FOLLOWER),
            State.B_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        return TransitionTable(silent=silent, heard=heard)

    def __repr__(self) -> str:
        return f"NoFreezeBFWProtocol(beep_probability={self._p!r})"


class NoRelayBFWProtocol(BeepingProtocol[State]):
    """BFW without the wave-relaying rule.

    Non-leader nodes never beep: a leader's beep only reaches its direct
    neighbours.  On graphs of diameter larger than two, distant leaders can
    never eliminate each other, so the protocol stalls in a multi-leader
    configuration — demonstrating that beep waves are what give BFW its
    global reach.
    """

    name = "bfw-no-relay"

    def __init__(self, beep_probability: float = 0.5) -> None:
        if not 0.0 < beep_probability < 1.0:
            raise ProtocolError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._p = float(beep_probability)

    @property
    def beep_probability(self) -> float:
        """The probability with which a silent waiting leader beeps."""
        return self._p

    @property
    def initial_state(self) -> State:
        return State.W_LEADER

    def states(self) -> Sequence[State]:
        return (
            State.W_LEADER,
            State.B_LEADER,
            State.F_LEADER,
            State.W_FOLLOWER,
        )

    def is_beeping(self, state: State) -> bool:
        return state.is_beeping

    def is_leader(self, state: State) -> bool:
        return state.is_leader

    def transition_table(self) -> TransitionTable[State]:
        p = self._p
        silent: Dict[State, Dict[State, float]] = {
            State.W_LEADER: bernoulli(State.B_LEADER, State.W_LEADER, p),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        heard: Dict[State, Dict[State, float]] = {
            State.W_LEADER: deterministic(State.W_FOLLOWER),
            State.B_LEADER: deterministic(State.F_LEADER),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        return TransitionTable(silent=silent, heard=heard)

    def __repr__(self) -> str:
        return f"NoRelayBFWProtocol(beep_probability={self._p!r})"


class EagerEliminationBFWProtocol(BeepingProtocol[State]):
    """BFW where eliminated leaders stop relaying the eliminating wave.

    Instead of transitioning to ``B◦`` when eliminated (and therefore
    re-emitting the beep), a waiting leader that hears a beep transitions
    directly to ``W◦``.  The wave dies at the first leader it reaches, which
    slows elimination down considerably on long paths; the ablation benchmark
    quantifies the slowdown.  All deterministic flow properties of Section 3
    continue to hold for this variant, which makes it a useful negative
    control for the flow test-suite as well.
    """

    name = "bfw-eager-elimination"

    def __init__(self, beep_probability: float = 0.5) -> None:
        if not 0.0 < beep_probability < 1.0:
            raise ProtocolError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._p = float(beep_probability)

    @property
    def beep_probability(self) -> float:
        """The probability with which a silent waiting leader beeps."""
        return self._p

    @property
    def initial_state(self) -> State:
        return State.W_LEADER

    def states(self) -> Sequence[State]:
        return tuple(State)

    def is_beeping(self, state: State) -> bool:
        return state.is_beeping

    def is_leader(self, state: State) -> bool:
        return state.is_leader

    def transition_table(self) -> TransitionTable[State]:
        p = self._p
        silent: Dict[State, Dict[State, float]] = {
            State.W_LEADER: bernoulli(State.B_LEADER, State.W_LEADER, p),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.W_FOLLOWER),
            State.F_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        heard: Dict[State, Dict[State, float]] = {
            State.W_LEADER: deterministic(State.W_FOLLOWER),
            State.B_LEADER: deterministic(State.F_LEADER),
            State.F_LEADER: deterministic(State.W_LEADER),
            State.W_FOLLOWER: deterministic(State.B_FOLLOWER),
            State.B_FOLLOWER: deterministic(State.F_FOLLOWER),
            State.F_FOLLOWER: deterministic(State.W_FOLLOWER),
        }
        return TransitionTable(silent=silent, heard=heard)

    def __repr__(self) -> str:
        return f"EagerEliminationBFWProtocol(beep_probability={self._p!r})"
