"""State definitions for the BFW protocol (Figure 1 of the paper).

The protocol operates on exactly six states.  Three of them are *leader*
states and three are *non-leader* states; within each role the node is either
Waiting (listening and reacting to beeps), Beeping (emitting a beep this
round) or Frozen (listening but ignoring its environment for one round).

The integer values are chosen so that vectorised code can test role and
behaviour with cheap comparisons:

* values ``0..2`` are leader states, ``3..5`` are non-leader states;
* ``value % 3`` gives the behaviour: ``0`` = Waiting, ``1`` = Beeping,
  ``2`` = Frozen.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class State(enum.IntEnum):
    """The six states of the BFW protocol.

    Names follow the paper: ``W``/``B``/``F`` for Waiting / Beeping / Frozen,
    with the ``_LEADER`` suffix standing for the filled-bullet states
    (``W•``, ``B•``, ``F•``) and the plain names for the non-leader states
    (``W◦``, ``B◦``, ``F◦``).
    """

    W_LEADER = 0
    B_LEADER = 1
    F_LEADER = 2
    W_FOLLOWER = 3
    B_FOLLOWER = 4
    F_FOLLOWER = 5

    @property
    def is_leader(self) -> bool:
        """Whether this state belongs to the leader set ``{W•, B•, F•}``."""
        return self.value < 3

    @property
    def is_beeping(self) -> bool:
        """Whether a node in this state emits a beep (``Qb = {B•, B◦}``)."""
        return self.value % 3 == 1

    @property
    def is_listening(self) -> bool:
        """Whether this state belongs to ``Qℓ`` (the complement of ``Qb``)."""
        return not self.is_beeping

    @property
    def is_waiting(self) -> bool:
        """Whether this is a Waiting state (``W•`` or ``W◦``)."""
        return self.value % 3 == 0

    @property
    def is_frozen(self) -> bool:
        """Whether this is a Frozen state (``F•`` or ``F◦``)."""
        return self.value % 3 == 2

    @property
    def behaviour(self) -> "Behaviour":
        """The behaviour component (Waiting / Beeping / Frozen) of the state."""
        return Behaviour(self.value % 3)

    @property
    def short_name(self) -> str:
        """Compact display name matching the paper's notation (ASCII)."""
        letter = "WBF"[self.value % 3]
        marker = "*" if self.is_leader else "o"
        return f"{letter}{marker}"

    def with_role(self, leader: bool) -> "State":
        """Return the state with the same behaviour but the given role."""
        return State(self.value % 3 + (0 if leader else 3))


class Behaviour(enum.IntEnum):
    """The behaviour component of a BFW state, independent of the role."""

    WAITING = 0
    BEEPING = 1
    FROZEN = 2


#: The set of leader states ``{W•, B•, F•}`` (the set ``L`` of Definition 1).
LEADER_STATES: FrozenSet[State] = frozenset(
    {State.W_LEADER, State.B_LEADER, State.F_LEADER}
)

#: The set of non-leader states ``{W◦, B◦, F◦}``.
FOLLOWER_STATES: FrozenSet[State] = frozenset(
    {State.W_FOLLOWER, State.B_FOLLOWER, State.F_FOLLOWER}
)

#: The set of beeping states ``Qb = {B•, B◦}``.
BEEPING_STATES: FrozenSet[State] = frozenset({State.B_LEADER, State.B_FOLLOWER})

#: The set of listening states ``Qℓ``.
LISTENING_STATES: FrozenSet[State] = frozenset(set(State) - BEEPING_STATES)

#: The set of waiting states ``{W•, W◦}``.
WAITING_STATES: FrozenSet[State] = frozenset({State.W_LEADER, State.W_FOLLOWER})

#: The set of frozen states ``{F•, F◦}``.
FROZEN_STATES: FrozenSet[State] = frozenset({State.F_LEADER, State.F_FOLLOWER})

#: Number of states used by the protocol; the paper's headline constant.
NUM_STATES: int = len(State)


def state_from_short_name(name: str) -> State:
    """Parse a compact state name such as ``"W*"`` or ``"Bo"``.

    Parameters
    ----------
    name:
        Two-character string: a letter in ``{W, B, F}`` followed by ``*``
        (leader) or ``o`` (non-leader).  Case-insensitive.

    Raises
    ------
    ValueError
        If the string does not denote a valid state.
    """
    text = name.strip()
    if len(text) != 2:
        raise ValueError(f"invalid state name: {name!r}")
    letter, marker = text[0].upper(), text[1]
    try:
        behaviour = "WBF".index(letter)
    except ValueError:
        raise ValueError(f"invalid state letter in {name!r}") from None
    if marker == "*":
        offset = 0
    elif marker in ("o", "O", "°"):
        offset = 3
    else:
        raise ValueError(f"invalid role marker in {name!r}")
    return State(behaviour + offset)
