"""A small registry mapping protocol names to factories.

The registry is what the CLI and the experiment harness use to instantiate
protocols from configuration dictionaries: each entry exposes the
construction parameters it accepts, whether it is uniform (independent of the
graph), and how to build it given the graph's ``n`` and ``D`` when needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.bfw import BFWProtocol, NonUniformBFWProtocol
from repro.core.variants import (
    EagerEliminationBFWProtocol,
    NoFreezeBFWProtocol,
    NoRelayBFWProtocol,
)
from repro.errors import ConfigurationError

#: A factory receives keyword parameters (already merged with graph knowledge
#: such as ``diameter`` when the protocol requires it) and returns a protocol.
ProtocolFactory = Callable[..., object]


@dataclass(frozen=True)
class ProtocolSpec:
    """Metadata describing a registered protocol.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        Callable constructing the protocol instance.
    uniform:
        Whether the protocol is uniform in the paper's sense (independent of
        ``n``, ``D`` and the topology).
    needs_diameter:
        Whether the factory expects a ``diameter`` keyword argument.
    needs_size:
        Whether the factory expects an ``n`` keyword argument.
    description:
        One-line human-readable summary used by ``repro list-protocols``.
    defaults:
        Default keyword arguments applied when the caller does not override
        them.
    """

    name: str
    factory: ProtocolFactory
    uniform: bool
    needs_diameter: bool = False
    needs_size: bool = False
    description: str = ""
    defaults: Mapping[str, object] = field(default_factory=dict)


_REGISTRY: Dict[str, ProtocolSpec] = {}


def register_protocol(spec: ProtocolSpec) -> None:
    """Add ``spec`` to the registry, replacing any same-named entry."""
    _REGISTRY[spec.name] = spec


def get_protocol_spec(name: str) -> ProtocolSpec:
    """Look up a protocol spec by name.

    Raises
    ------
    ConfigurationError
        If no protocol with that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown protocol {name!r}; known protocols: {known}"
        ) from None


def available_protocols() -> Tuple[str, ...]:
    """Names of all registered protocols, sorted."""
    return tuple(sorted(_REGISTRY))


def create_protocol(
    name: str,
    *,
    diameter: Optional[int] = None,
    n: Optional[int] = None,
    **params: object,
) -> object:
    """Instantiate a registered protocol.

    Parameters
    ----------
    name:
        Registry key of the protocol.
    diameter, n:
        Graph knowledge, forwarded to the factory only when the spec declares
        it is needed.  Passing knowledge that the protocol does not need is
        harmless (it is ignored), which keeps experiment code simple.
    **params:
        Additional construction parameters (for example
        ``beep_probability=0.25``); they override the spec defaults.
    """
    spec = get_protocol_spec(name)
    kwargs: Dict[str, object] = dict(spec.defaults)
    kwargs.update(params)
    if spec.needs_diameter:
        if diameter is None:
            raise ConfigurationError(
                f"protocol {name!r} requires the graph diameter, but none was given"
            )
        kwargs["diameter"] = diameter
    if spec.needs_size:
        if n is None:
            raise ConfigurationError(
                f"protocol {name!r} requires the graph size n, but none was given"
            )
        kwargs["n"] = n
    return spec.factory(**kwargs)


def _register_builtin_protocols() -> None:
    """Register the protocols shipped with the library."""
    register_protocol(
        ProtocolSpec(
            name="bfw",
            factory=BFWProtocol,
            uniform=True,
            description="Six-state uniform BFW protocol (Theorem 2), p constant.",
            defaults={"beep_probability": 0.5},
        )
    )
    register_protocol(
        ProtocolSpec(
            name="bfw-nonuniform",
            factory=NonUniformBFWProtocol,
            uniform=False,
            needs_diameter=True,
            description="BFW with p = 1/(D+1) (Theorem 3); requires the diameter.",
        )
    )
    register_protocol(
        ProtocolSpec(
            name="bfw-no-freeze",
            factory=NoFreezeBFWProtocol,
            uniform=True,
            description="Ablation: BFW without the Frozen state.",
            defaults={"beep_probability": 0.5},
        )
    )
    register_protocol(
        ProtocolSpec(
            name="bfw-no-relay",
            factory=NoRelayBFWProtocol,
            uniform=True,
            description="Ablation: BFW without beep-wave relaying.",
            defaults={"beep_probability": 0.5},
        )
    )
    register_protocol(
        ProtocolSpec(
            name="bfw-eager-elimination",
            factory=EagerEliminationBFWProtocol,
            uniform=True,
            description="Ablation: eliminated leaders do not relay the wave.",
            defaults={"beep_probability": 0.5},
        )
    )


_register_builtin_protocols()
