"""repro — reproduction of "Minimalist Leader Election Under Weak Communication".

The package implements the BFW leader-election protocol for the beeping
model, the simulators it runs on (beeping model, stone-age model), the
analysis machinery of the paper (flow, Ohm's law, invariants), baseline
protocols for the Table-1 comparison, and the experiment harness that
regenerates the paper's tables and figures.

Quickstart
----------
>>> from repro import BFWProtocol, run_bfw
>>> from repro.graphs import cycle_graph
>>> result = run_bfw(cycle_graph(32), BFWProtocol(beep_probability=0.5), rng=0)
>>> result.converged, result.final_leader_count
(True, 1)
"""

from repro._version import __version__
from repro.batch import (
    BatchedEngine,
    BatchObserver,
    BatchResult,
    BatchTrace,
    BatchTraceRecorder,
    LeaderExtinctionObserver,
    ObserverSpec,
    run_batch,
)
from repro.beeping import (
    ExecutionTrace,
    MemorySimulator,
    SimulationResult,
    Simulator,
    VectorizedEngine,
    run_bfw,
)
from repro.core import (
    BFWProtocol,
    BeepingProtocol,
    MemoryProtocol,
    NonUniformBFWProtocol,
    State,
    available_protocols,
    create_protocol,
)
from repro.dynamics import (
    EdgeChurnSchedule,
    ScheduleSpec,
    StaticSchedule,
    TopologySchedule,
    build_schedule,
)
from repro.exec import (
    BatchedBackend,
    ExecutionBackend,
    ExecutionCell,
    ProcessBackend,
    SequentialBackend,
    resolve_backend,
)
from repro.graphs import Topology, make_graph

__all__ = [
    "BFWProtocol",
    "BatchObserver",
    "BatchResult",
    "BatchTrace",
    "BatchTraceRecorder",
    "BatchedBackend",
    "BatchedEngine",
    "BeepingProtocol",
    "EdgeChurnSchedule",
    "ExecutionBackend",
    "ExecutionCell",
    "ExecutionTrace",
    "LeaderExtinctionObserver",
    "MemoryProtocol",
    "MemorySimulator",
    "NonUniformBFWProtocol",
    "ObserverSpec",
    "ProcessBackend",
    "ScheduleSpec",
    "SequentialBackend",
    "SimulationResult",
    "Simulator",
    "State",
    "StaticSchedule",
    "Topology",
    "TopologySchedule",
    "VectorizedEngine",
    "__version__",
    "available_protocols",
    "build_schedule",
    "create_protocol",
    "make_graph",
    "resolve_backend",
    "run_batch",
    "run_bfw",
]
