"""Network configurations: the state of every node at one instant.

A :class:`Configuration` couples a topology with the per-node protocol states
of a single round.  It provides the queries the simulator and the analysis
layer need each round — who is beeping, who is a leader, and who hears a
beep — in both scalar and vectorised form.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.protocol import BeepingProtocol
from repro.core.states import State
from repro.errors import SimulationError
from repro.graphs.topology import Topology


class Configuration:
    """The per-node states of one round of a finite-state beeping protocol.

    Parameters
    ----------
    topology:
        The communication graph.
    protocol:
        The protocol whose states the configuration holds; used to classify
        states into beeping / leader sets.
    states:
        Either a mapping from node to state, or a sequence of states indexed
        by node.  Defaults to every node being in the protocol's initial
        state, which is the paper's initial condition (Eq. (2)).
    """

    def __init__(
        self,
        topology: Topology,
        protocol: BeepingProtocol,
        states: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self._topology = topology
        self._protocol = protocol
        if states is None:
            self._states: List[Hashable] = [protocol.initial_state] * topology.n
        else:
            if isinstance(states, Mapping):
                self._states = [
                    states.get(node, protocol.initial_state)
                    for node in topology.nodes()
                ]
            else:
                self._states = list(states)
            if len(self._states) != topology.n:
                raise SimulationError(
                    f"configuration has {len(self._states)} states for a graph of "
                    f"{topology.n} nodes"
                )
        valid = set(protocol.states())
        for node, state in enumerate(self._states):
            if state not in valid:
                raise SimulationError(
                    f"node {node} is in state {state!r}, which does not belong to "
                    f"protocol {protocol.name!r}"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> BeepingProtocol:
        """The protocol whose states this configuration holds."""
        return self._protocol

    def state_of(self, node: int) -> Hashable:
        """The state of ``node``."""
        return self._states[node]

    def states(self) -> Tuple[Hashable, ...]:
        """All node states, indexed by node."""
        return tuple(self._states)

    def state_values(self) -> np.ndarray:
        """Integer values of all states (requires integer-valued states)."""
        return np.array([int(s) for s in self._states], dtype=np.int8)

    # ------------------------------------------------------------------ #
    # Round semantics
    # ------------------------------------------------------------------ #

    def is_beeping(self, node: int) -> bool:
        """Whether ``node`` beeps in this round."""
        return self._protocol.is_beeping(self._states[node])

    def is_leader(self, node: int) -> bool:
        """Whether ``node`` is in a leader state in this round."""
        return self._protocol.is_leader(self._states[node])

    def beeping_nodes(self) -> Tuple[int, ...]:
        """The set ``B_t`` of beeping nodes."""
        return tuple(
            node for node in self._topology.nodes() if self.is_beeping(node)
        )

    def leaders(self) -> Tuple[int, ...]:
        """The nodes currently in a leader state."""
        return tuple(node for node in self._topology.nodes() if self.is_leader(node))

    def leader_count(self) -> int:
        """Number of leaders in this configuration."""
        return sum(1 for node in self._topology.nodes() if self.is_leader(node))

    def hears_beep(self, node: int) -> bool:
        """Whether ``node`` triggers the ``δ⊤`` kernel this round.

        Per the paper's semantics, a node hears a beep if it beeps itself or
        if at least one of its neighbours beeps.
        """
        if self.is_beeping(node):
            return True
        return any(
            self.is_beeping(neighbour)
            for neighbour in self._topology.neighbors(node)
        )

    def heard_vector(self) -> np.ndarray:
        """Boolean vector: ``heard[u]`` is ``True`` iff ``u`` triggers ``δ⊤``."""
        beeping = np.array(
            [self.is_beeping(node) for node in self._topology.nodes()], dtype=bool
        )
        if not beeping.any():
            return beeping
        adjacency = self._topology.sparse_adjacency()
        neighbour_beeps = adjacency.dot(beeping.astype(np.int32)) > 0
        return beeping | neighbour_beeps

    # ------------------------------------------------------------------ #
    # Derived configurations
    # ------------------------------------------------------------------ #

    def replace(self, changes: Mapping[int, Hashable]) -> "Configuration":
        """A copy of this configuration with some node states replaced."""
        states = list(self._states)
        for node, state in changes.items():
            states[node] = state
        return Configuration(self._topology, self._protocol, states)

    def counts_by_state(self) -> Dict[Hashable, int]:
        """How many nodes are in each state."""
        counts: Dict[Hashable, int] = {}
        for state in self._states:
            counts[state] = counts.get(state, 0) + 1
        return counts

    def __repr__(self) -> str:
        counts = self.counts_by_state()
        summary = ", ".join(
            f"{getattr(state, 'short_name', state)}: {count}"
            for state, count in sorted(counts.items(), key=lambda kv: str(kv[0]))
        )
        return (
            f"Configuration(n={self._topology.n}, leaders={self.leader_count()}, "
            f"states={{{summary}}})"
        )


def all_waiting_leaders(topology: Topology, protocol: BeepingProtocol) -> Configuration:
    """The paper's initial configuration: every node in the initial state ``W•``."""
    return Configuration(topology, protocol)


def single_leader_configuration(
    topology: Topology, protocol: BeepingProtocol, leader: int
) -> Configuration:
    """A configuration where only ``leader`` starts as a leader.

    All other nodes start in the non-leader waiting state.  Requires the
    protocol's states to be :class:`~repro.core.states.State` members (true
    for the BFW family).
    """
    states = [State.W_FOLLOWER] * topology.n
    states[leader] = State.W_LEADER
    return Configuration(topology, protocol, states)
