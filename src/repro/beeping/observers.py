"""Observers: pluggable per-round hooks for the reference simulator.

Observers let callers record traces, check invariants on-line, collect
statistics or stop the simulation early without modifying the simulator
itself.  They receive immutable snapshots each round, so a misbehaving
observer cannot corrupt an execution.

Since the batched observation layer landed, the concrete observers here are
thin ``R = 1`` adapters over their batched counterparts in
:mod:`repro.batch.observers`: the snapshot hooks reshape each ``(n,)`` view
into a one-replica ``(1, n)`` batch and forward it, so the reference
:class:`~repro.beeping.simulator.Simulator`, the vectorised engines and the
batched engines all drive one observation code path.  The single-run API
(``counts`` lists, ``trace()``, ``should_stop``) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.batch.observers import (
    BatchBeepCountTracker,
    BatchLeaderCountTracker,
    BatchObserver,
    BatchRunInfo,
    BatchSingleLeaderStopper,
    BatchStateHistogramTracker,
    BatchTraceRecorder,
)
from repro.beeping.trace import ExecutionTrace, TraceBuilder  # noqa: F401  (re-export)
from repro.errors import SimulationError


@dataclass(frozen=True)
class RoundSnapshot:
    """What an observer sees at the end of a round.

    Attributes
    ----------
    round_index:
        Index of the configuration being reported; index 0 is the initial
        configuration, reported before any transition happens.
    state_values:
        Integer state values of every node in that round.
    beeping:
        Boolean mask of beeping nodes in that round.
    leaders:
        Boolean mask of nodes in a leader state in that round.
    heard:
        Boolean mask of nodes that triggered ``δ⊤`` in that round (i.e. beeped
        or heard a beep); what the *next* transition of each node will use.
    """

    round_index: int
    state_values: np.ndarray
    beeping: np.ndarray
    leaders: np.ndarray
    heard: np.ndarray

    @property
    def leader_count(self) -> int:
        """Number of leaders in this round."""
        return int(self.leaders.sum())

    @property
    def beep_count(self) -> int:
        """Number of beeping nodes in this round."""
        return int(self.beeping.sum())


class Observer:
    """Base class for simulation observers; every hook is optional."""

    def on_start(self, n: int, protocol_name: str, topology_name: str) -> None:
        """Called once before the first round."""

    def on_round(self, snapshot: RoundSnapshot) -> None:
        """Called for round 0 (initial configuration) and after every transition."""

    def on_finish(self, final_snapshot: RoundSnapshot) -> None:
        """Called once after the last round."""

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        """Return ``True`` to stop the simulation after this round."""
        return False


class BatchObserverAdapter(Observer):
    """Drive any :class:`~repro.batch.observers.BatchObserver` from snapshots.

    The adapter is the single-run face of the batched observation layer:
    each snapshot becomes a one-replica ``(1, n)`` round report, so the same
    observer logic serves the reference simulator and the batched engines.

    Parameters
    ----------
    batch_observer:
        The wrapped batched observer.
    beeping_values, leader_values, seed:
        Run metadata forwarded in the :class:`BatchRunInfo` (the single-run
        ``on_start`` hook does not carry it).
    requires_start:
        When ``True``, reporting a round before ``on_start`` raises
        :class:`SimulationError` (the historical contract of the trackers
        that need ``n`` up front); otherwise the adapter starts itself from
        the first snapshot.
    """

    def __init__(
        self,
        batch_observer: BatchObserver,
        beeping_values: Sequence[int] = (),
        leader_values: Sequence[int] = (),
        seed: Optional[int] = None,
        requires_start: bool = False,
    ) -> None:
        self._batch = batch_observer
        self._beeping_values = tuple(int(v) for v in beeping_values)
        self._leader_values = tuple(int(v) for v in leader_values)
        self._seed = seed
        self._requires_start = requires_start
        self._started = False
        self._protocol_name = ""
        self._topology_name = ""
        self._active = np.ones(1, dtype=bool)

    @property
    def batch_observer(self) -> BatchObserver:
        """The wrapped batched observer."""
        return self._batch

    def _start(self, n: int) -> None:
        self._batch.on_start(
            BatchRunInfo(
                num_replicas=1,
                n=n,
                protocol_name=self._protocol_name,
                topology_name=self._topology_name,
                beeping_values=self._beeping_values,
                leader_values=self._leader_values,
                seeds=(self._seed,),
            )
        )
        self._started = True

    def on_start(self, n: int, protocol_name: str, topology_name: str) -> None:
        self._protocol_name = protocol_name
        self._topology_name = topology_name
        self._start(n)

    def on_round(self, snapshot: RoundSnapshot) -> None:
        if not self._started:
            if self._requires_start:
                raise SimulationError(
                    f"{type(self).__name__}.on_round called before on_start"
                )
            self._start(int(snapshot.state_values.shape[0]))
        self._batch.on_round(
            snapshot.round_index,
            snapshot.state_values.reshape(1, -1),
            snapshot.beeping.reshape(1, -1),
            snapshot.leaders.reshape(1, -1),
            self._active,
        )

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        mask = self._batch.should_retire(
            snapshot.round_index, snapshot.leaders.reshape(1, -1), self._active
        )
        return bool(mask is not None and mask[0])

    def on_finish(self, final_snapshot: RoundSnapshot) -> None:
        if self._started:
            self._batch.on_finish(
                np.array([final_snapshot.round_index], dtype=np.int64)
            )


class TraceRecorder(BatchObserverAdapter):
    """Record the full execution trace.

    Parameters
    ----------
    beeping_values, leader_values:
        The state values classified as beeping / leader, used to interpret
        the stored integer states later.
    """

    def __init__(
        self,
        beeping_values: Sequence[int],
        leader_values: Sequence[int],
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            BatchTraceRecorder(),
            beeping_values=beeping_values,
            leader_values=leader_values,
            seed=seed,
            requires_start=True,
        )

    def trace(self) -> ExecutionTrace:
        """The recorded trace; only valid after the simulation has run."""
        recorder: BatchTraceRecorder = self.batch_observer  # type: ignore[assignment]
        return recorder.trace().replica(0)


class LeaderCountTracker(BatchObserverAdapter):
    """Track the number of leaders over time and the convergence round."""

    def __init__(self) -> None:
        super().__init__(BatchLeaderCountTracker())

    @property
    def _tracker(self) -> BatchLeaderCountTracker:
        return self.batch_observer  # type: ignore[return-value]

    @property
    def counts(self) -> List[int]:
        """Leader count of every observed round, in order."""
        return [int(row[0]) for row in self._tracker.history]

    @property
    def convergence_round(self) -> Optional[int]:
        """First round from which the configuration has had exactly one leader."""
        firsts = self._tracker.convergence_round
        if firsts is None or int(firsts[0]) < 0:
            return None
        return int(firsts[0])

    @property
    def final_count(self) -> Optional[int]:
        """The leader count in the last observed round."""
        history = self._tracker.history
        return int(history[-1][0]) if history else None


class SingleLeaderStopper(BatchObserverAdapter):
    """Stop the simulation once a single-leader configuration persists.

    For BFW the leader count is non-increasing, so ``patience=0`` (stop as
    soon as one leader remains) is exact.  Baselines whose candidate sets can
    fluctuate should use a positive patience window.
    """

    def __init__(self, patience: int = 0) -> None:
        super().__init__(BatchSingleLeaderStopper(patience=patience))


class BeepCountTracker(BatchObserverAdapter):
    """Track ``N^beep_t(u)`` for every node, on-line."""

    def __init__(self) -> None:
        super().__init__(
            BatchBeepCountTracker(keep_history=True), requires_start=True
        )

    @property
    def _tracker(self) -> BatchBeepCountTracker:
        return self.batch_observer  # type: ignore[return-value]

    @property
    def history(self) -> List[np.ndarray]:
        """Cumulative ``N^beep`` vector after each observed round."""
        return [row[0] for row in self._tracker.history]

    @property
    def counts(self) -> np.ndarray:
        """Current ``N^beep`` vector."""
        return self._tracker.counts[0]


class CallbackObserver(Observer):
    """Adapter turning a plain callable into an observer."""

    def __init__(
        self,
        on_round: Optional[Callable[[RoundSnapshot], None]] = None,
        should_stop: Optional[Callable[[RoundSnapshot], bool]] = None,
    ) -> None:
        self._on_round = on_round
        self._should_stop = should_stop

    def on_round(self, snapshot: RoundSnapshot) -> None:
        if self._on_round is not None:
            self._on_round(snapshot)

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        if self._should_stop is not None:
            return bool(self._should_stop(snapshot))
        return False


class StateHistogramTracker(BatchObserverAdapter):
    """Track how many nodes are in each state value, per round."""

    def __init__(self) -> None:
        super().__init__(BatchStateHistogramTracker())

    @property
    def histograms(self) -> List[Dict[int, int]]:
        """One ``{state value: node count}`` dictionary per observed round."""
        tracker: BatchStateHistogramTracker = self.batch_observer  # type: ignore[assignment]
        return [row[0] for row in tracker.histograms]
