"""Observers: pluggable per-round hooks for the reference simulator.

Observers let callers record traces, check invariants on-line, collect
statistics or stop the simulation early without modifying the simulator
itself.  They receive immutable snapshots each round, so a misbehaving
observer cannot corrupt an execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.beeping.trace import ExecutionTrace, TraceBuilder
from repro.errors import SimulationError


@dataclass(frozen=True)
class RoundSnapshot:
    """What an observer sees at the end of a round.

    Attributes
    ----------
    round_index:
        Index of the configuration being reported; index 0 is the initial
        configuration, reported before any transition happens.
    state_values:
        Integer state values of every node in that round.
    beeping:
        Boolean mask of beeping nodes in that round.
    leaders:
        Boolean mask of nodes in a leader state in that round.
    heard:
        Boolean mask of nodes that triggered ``δ⊤`` in that round (i.e. beeped
        or heard a beep); what the *next* transition of each node will use.
    """

    round_index: int
    state_values: np.ndarray
    beeping: np.ndarray
    leaders: np.ndarray
    heard: np.ndarray

    @property
    def leader_count(self) -> int:
        """Number of leaders in this round."""
        return int(self.leaders.sum())

    @property
    def beep_count(self) -> int:
        """Number of beeping nodes in this round."""
        return int(self.beeping.sum())


class Observer:
    """Base class for simulation observers; every hook is optional."""

    def on_start(self, n: int, protocol_name: str, topology_name: str) -> None:
        """Called once before the first round."""

    def on_round(self, snapshot: RoundSnapshot) -> None:
        """Called for round 0 (initial configuration) and after every transition."""

    def on_finish(self, final_snapshot: RoundSnapshot) -> None:
        """Called once after the last round."""

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        """Return ``True`` to stop the simulation after this round."""
        return False


class TraceRecorder(Observer):
    """Record the full execution trace.

    Parameters
    ----------
    beeping_values, leader_values:
        The state values classified as beeping / leader, used to interpret
        the stored integer states later.
    """

    def __init__(
        self,
        beeping_values: Sequence[int],
        leader_values: Sequence[int],
        seed: Optional[int] = None,
    ) -> None:
        self._beeping_values = tuple(beeping_values)
        self._leader_values = tuple(leader_values)
        self._seed = seed
        self._builder: Optional[TraceBuilder] = None
        self._protocol_name = ""
        self._topology_name = ""

    def on_start(self, n: int, protocol_name: str, topology_name: str) -> None:
        self._protocol_name = protocol_name
        self._topology_name = topology_name
        self._builder = TraceBuilder(
            beeping_values=self._beeping_values,
            leader_values=self._leader_values,
            protocol_name=protocol_name,
            topology_name=topology_name,
            seed=self._seed,
        )

    def on_round(self, snapshot: RoundSnapshot) -> None:
        if self._builder is None:
            raise SimulationError("TraceRecorder.on_round called before on_start")
        self._builder.record(snapshot.state_values)

    def trace(self) -> ExecutionTrace:
        """The recorded trace; only valid after the simulation has run."""
        if self._builder is None or len(self._builder) == 0:
            raise SimulationError("no trace has been recorded yet")
        return self._builder.build()


class LeaderCountTracker(Observer):
    """Track the number of leaders over time and the convergence round."""

    def __init__(self) -> None:
        self.counts: List[int] = []
        self._first_single: Optional[int] = None

    def on_round(self, snapshot: RoundSnapshot) -> None:
        count = snapshot.leader_count
        self.counts.append(count)
        if count == 1 and self._first_single is None:
            self._first_single = snapshot.round_index
        elif count != 1:
            self._first_single = None

    @property
    def convergence_round(self) -> Optional[int]:
        """First round from which the configuration has had exactly one leader."""
        return self._first_single

    @property
    def final_count(self) -> Optional[int]:
        """The leader count in the last observed round."""
        return self.counts[-1] if self.counts else None


class SingleLeaderStopper(Observer):
    """Stop the simulation once a single-leader configuration persists.

    For BFW the leader count is non-increasing, so ``patience=0`` (stop as
    soon as one leader remains) is exact.  Baselines whose candidate sets can
    fluctuate should use a positive patience window.
    """

    def __init__(self, patience: int = 0) -> None:
        if patience < 0:
            raise SimulationError(f"patience must be non-negative; got {patience}")
        self._patience = patience
        self._consecutive = 0

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        if snapshot.leader_count == 1:
            self._consecutive += 1
        else:
            self._consecutive = 0
        return self._consecutive > self._patience


class BeepCountTracker(Observer):
    """Track ``N^beep_t(u)`` for every node, on-line."""

    def __init__(self) -> None:
        self._counts: Optional[np.ndarray] = None
        self.history: List[np.ndarray] = []

    def on_start(self, n: int, protocol_name: str, topology_name: str) -> None:
        self._counts = np.zeros(n, dtype=np.int64)
        self.history = []

    def on_round(self, snapshot: RoundSnapshot) -> None:
        if self._counts is None:
            raise SimulationError("BeepCountTracker.on_round called before on_start")
        self._counts += snapshot.beeping.astype(np.int64)
        self.history.append(self._counts.copy())

    @property
    def counts(self) -> np.ndarray:
        """Current ``N^beep`` vector."""
        if self._counts is None:
            raise SimulationError("no rounds observed yet")
        return self._counts.copy()


class CallbackObserver(Observer):
    """Adapter turning a plain callable into an observer."""

    def __init__(
        self,
        on_round: Optional[Callable[[RoundSnapshot], None]] = None,
        should_stop: Optional[Callable[[RoundSnapshot], bool]] = None,
    ) -> None:
        self._on_round = on_round
        self._should_stop = should_stop

    def on_round(self, snapshot: RoundSnapshot) -> None:
        if self._on_round is not None:
            self._on_round(snapshot)

    def should_stop(self, snapshot: RoundSnapshot) -> bool:
        if self._should_stop is not None:
            return bool(self._should_stop(snapshot))
        return False


class StateHistogramTracker(Observer):
    """Track how many nodes are in each state value, per round."""

    def __init__(self) -> None:
        self.histograms: List[Dict[int, int]] = []

    def on_round(self, snapshot: RoundSnapshot) -> None:
        values, counts = np.unique(snapshot.state_values, return_counts=True)
        self.histograms.append(
            {int(v): int(c) for v, c in zip(values, counts)}
        )
