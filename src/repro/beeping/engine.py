"""A vectorised engine for constant-state beeping protocols.

The reference :class:`~repro.beeping.simulator.Simulator` applies transition
kernels node by node in Python, which is convenient for auditing but too slow
for the scaling experiments (paths with hundreds of nodes simulated for tens
of thousands of rounds, dozens of seeds).  This engine compiles a protocol's
transition table into dense numpy lookup arrays and advances all nodes of a
round with a handful of array operations:

* the beeping mask is a vectorised membership test on the state vector;
* "who hears a beep" is one sparse matrix–vector product with the adjacency
  matrix;
* the transition is a gather from the compiled lookup tables, with a single
  vector of uniform random numbers resolving every probabilistic transition
  of the round.

The engine supports any protocol whose states are integer-valued and whose
transition rows have at most two outcomes — which covers BFW, its ablation
variants, and any similar coin-toss protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.observers import (
    BatchBeepCountTracker,
    BatchObserver,
    BatchRunInfo,
    BatchTraceRecorder,
    ObserverPipeline,
)
from repro.beeping.simulator import SimulationResult, default_round_budget
from repro.beeping.trace import ExecutionTrace
from repro.core.protocol import BeepingProtocol
from repro.core.rng import RngLike, as_rng
from repro.dynamics.schedules import TopologySchedule
from repro.errors import ConfigurationError, ProtocolError, SimulationError
from repro.graphs.topology import Topology


def check_schedule(
    topology: Topology, schedule: Optional[TopologySchedule]
) -> Optional[TopologySchedule]:
    """Validate a topology schedule against an engine's base graph.

    Shared by both engines: the schedule must be a
    :class:`~repro.dynamics.schedules.TopologySchedule` defined for the same
    node count (nodes are the protocol's agents — only edges may change).
    """
    if schedule is None:
        return None
    if not isinstance(schedule, TopologySchedule):
        raise ConfigurationError(
            f"schedule must be a TopologySchedule (see repro.dynamics); "
            f"got {type(schedule).__name__}"
        )
    if schedule.n != topology.n:
        raise ConfigurationError(
            f"schedule is defined for n={schedule.n} nodes but the engine's "
            f"graph {topology.name} has n={topology.n}"
        )
    return schedule


@dataclass(frozen=True)
class CompiledProtocol:
    """Dense lookup-table representation of a two-outcome beeping protocol.

    Attributes
    ----------
    num_states:
        Number of compiled state slots (``max state value + 1``).
    initial_state:
        Integer value of the initial state.
    is_beeping:
        Boolean array indexed by state value.
    is_leader:
        Boolean array indexed by state value.
    succ_primary, succ_secondary, primary_probability:
        Arrays of shape ``(num_states, 2)``; the second axis is indexed by the
        "heard a beep" flag (0 = silent / ``δ⊥``, 1 = heard / ``δ⊤``).  A
        transition goes to ``succ_primary`` with ``primary_probability`` and
        to ``succ_secondary`` otherwise.
    """

    num_states: int
    initial_state: int
    is_beeping: np.ndarray
    is_leader: np.ndarray
    succ_primary: np.ndarray
    succ_secondary: np.ndarray
    primary_probability: np.ndarray
    protocol_name: str = ""

    @property
    def beeping_values(self) -> Tuple[int, ...]:
        """Integer state values classified as beeping."""
        return tuple(int(v) for v in np.flatnonzero(self.is_beeping))

    @property
    def leader_values(self) -> Tuple[int, ...]:
        """Integer state values classified as leader states."""
        return tuple(int(v) for v in np.flatnonzero(self.is_leader))


def compile_protocol(protocol: BeepingProtocol) -> CompiledProtocol:
    """Compile ``protocol`` into dense lookup tables.

    Raises
    ------
    ProtocolError
        If the protocol's states are not integer-valued, or if some transition
        row has more than two outcomes (such protocols must use the reference
        simulator instead).
    """
    protocol.validate()
    states = list(protocol.states())
    try:
        values = [int(s) for s in states]
    except (TypeError, ValueError):
        raise ProtocolError(
            f"protocol {protocol.name!r} has non-integer states and cannot be "
            "compiled for the vectorised engine"
        ) from None
    if any(v < 0 for v in values):
        raise ProtocolError("state values must be non-negative for compilation")

    num_states = max(values) + 1
    is_beeping = np.zeros(num_states, dtype=bool)
    is_leader = np.zeros(num_states, dtype=bool)
    for state, value in zip(states, values):
        is_beeping[value] = protocol.is_beeping(state)
        is_leader[value] = protocol.is_leader(state)

    succ_primary = np.zeros((num_states, 2), dtype=np.int8)
    succ_secondary = np.zeros((num_states, 2), dtype=np.int8)
    primary_probability = np.ones((num_states, 2), dtype=float)
    # Unused slots self-loop, so a stray state value cannot escape its slot.
    for value in range(num_states):
        succ_primary[value, :] = value
        succ_secondary[value, :] = value

    table = protocol.transition_table()
    for heard_index, kernel in ((0, table.silent), (1, table.heard)):
        for state, distribution in kernel.items():
            value = int(state)
            outcomes = sorted(distribution.items(), key=lambda kv: -kv[1])
            if len(outcomes) > 2:
                raise ProtocolError(
                    f"state {state!r} of protocol {protocol.name!r} has "
                    f"{len(outcomes)} outcomes; the vectorised engine supports "
                    "at most two"
                )
            primary_state, primary_prob = outcomes[0]
            secondary_state = outcomes[1][0] if len(outcomes) == 2 else primary_state
            succ_primary[value, heard_index] = int(primary_state)
            succ_secondary[value, heard_index] = int(secondary_state)
            primary_probability[value, heard_index] = float(primary_prob)

    return CompiledProtocol(
        num_states=num_states,
        initial_state=int(protocol.initial_state),
        is_beeping=is_beeping,
        is_leader=is_leader,
        succ_primary=succ_primary,
        succ_secondary=succ_secondary,
        primary_probability=primary_probability,
        protocol_name=protocol.name,
    )


class VectorizedEngine:
    """Fast simulator for compiled constant-state protocols.

    Parameters
    ----------
    topology:
        The communication graph (the initial graph when a schedule is set).
    protocol:
        The protocol to execute; compiled once at construction time.
    schedule:
        Optional :class:`~repro.dynamics.schedules.TopologySchedule`: the
        graph used in round ``r`` is ``schedule.topology_at(r)`` instead of
        the static topology.  A static schedule reproduces the scheduleless
        run bit for bit (same arithmetic, same RNG stream).
    """

    def __init__(
        self,
        topology: Topology,
        protocol: BeepingProtocol,
        schedule: Optional[TopologySchedule] = None,
    ) -> None:
        self._topology = topology
        self._protocol = protocol
        self._compiled = compile_protocol(protocol)
        self._adjacency = topology.sparse_adjacency()
        schedule = check_schedule(topology, schedule)
        if schedule is not None and schedule.is_static:
            # The identity schedule *is* today's fast path: adopt its (only)
            # graph up front and skip the per-round dispatch entirely, so
            # bit-identity with a scheduleless run holds by construction.
            self._adjacency = schedule.topology_at(0).sparse_adjacency()
            schedule = None
        self._schedule = schedule

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> BeepingProtocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def compiled(self) -> CompiledProtocol:
        """The compiled lookup tables."""
        return self._compiled

    @property
    def schedule(self) -> Optional[TopologySchedule]:
        """The topology schedule, or ``None`` for a static graph."""
        return self._schedule

    def run(
        self,
        max_rounds: Optional[int] = None,
        rng: RngLike = None,
        initial_states: Optional[Sequence[int]] = None,
        record_trace: bool = False,
        record_beep_counts: bool = False,
        stop_at_single_leader: bool = True,
        observers: Sequence[BatchObserver] = (),
    ) -> SimulationResult:
        """Execute the protocol and return a :class:`SimulationResult`.

        Parameters
        ----------
        max_rounds:
            Round budget; defaults to :func:`default_round_budget`.
        rng:
            Seed or generator driving all probabilistic transitions.
        initial_states:
            Integer state values per node; defaults to every node in the
            protocol's initial state.
        record_trace:
            Whether to store and return the full state history.
        record_beep_counts:
            Whether to accumulate ``N^beep`` per node (available through
            :attr:`last_beep_counts` after the run).
        stop_at_single_leader:
            Stop as soon as the leader count reaches one.
        observers:
            :class:`~repro.batch.observers.BatchObserver` instances driven
            with one-replica ``(1, n)`` round reports — the same hooks the
            batched engine drives for whole batches.  An observer's retire
            request stops the run like ``stop_at_single_leader`` does.
        """
        run_started = time.perf_counter()
        seed_value = rng if isinstance(rng, int) else None
        generator = as_rng(rng)
        if max_rounds is None:
            max_rounds = default_round_budget(self._topology)
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0; got {max_rounds}")

        n = self._topology.n
        compiled = self._compiled
        if initial_states is None:
            states = np.full(n, compiled.initial_state, dtype=np.int8)
        else:
            states = np.asarray(initial_states, dtype=np.int8).copy()
            if states.shape != (n,):
                raise SimulationError(
                    f"initial_states has shape {states.shape}; expected ({n},)"
                )
            if (states < 0).any() or (states >= compiled.num_states).any():
                raise SimulationError("initial_states contains invalid state values")

        # The trace / beep-count flags ride the same observation layer as
        # caller-supplied observers: one code path from here to the batched
        # engines (and byte-identical output to the historical inline paths).
        attached: List[BatchObserver] = list(observers)
        recorder: Optional[BatchTraceRecorder] = None
        beep_tracker: Optional[BatchBeepCountTracker] = None
        if record_trace:
            recorder = BatchTraceRecorder()
            attached.append(recorder)
        if record_beep_counts:
            beep_tracker = BatchBeepCountTracker()
            attached.append(beep_tracker)
        pipeline: Optional[ObserverPipeline] = None
        active_one = np.ones(1, dtype=bool)
        if attached:
            pipeline = ObserverPipeline(
                attached,
                BatchRunInfo(
                    num_replicas=1,
                    n=n,
                    protocol_name=compiled.protocol_name,
                    topology_name=self._topology.name,
                    beeping_values=compiled.beeping_values,
                    leader_values=compiled.leader_values,
                    seeds=(seed_value,),
                ),
            )

        def observe(round_index: int) -> bool:
            """Report one round to the pipeline; True = retire requested."""
            if pipeline is None:
                return False
            mask = pipeline.observe_round(
                round_index,
                states.reshape(1, -1),
                compiled.is_beeping[states].reshape(1, -1),
                compiled.is_leader[states].reshape(1, -1),
                active_one,
            )
            return bool(mask is not None and mask[0])

        leader_counts: List[int] = []

        leaders = compiled.is_leader[states]
        leader_count = int(leaders.sum())
        leader_counts.append(leader_count)
        stop_requested = observe(0)

        convergence_round: Optional[int] = 0 if leader_count == 1 else None
        rounds_executed = 0

        # In-flight heartbeat: looked up once per run; None costs a single
        # is-not-None check per round and beats never touch `generator`, so
        # records stay byte-identical with heartbeats on or off.
        from repro.telemetry.heartbeat import current_heartbeat

        heartbeat = current_heartbeat()

        schedule = self._schedule
        if schedule is not None:
            schedule.begin_run()
        adjacency = self._adjacency

        while rounds_executed < max_rounds:
            if stop_requested or (stop_at_single_leader and leader_count == 1):
                break
            if schedule is not None:
                topology = schedule.topology_at(rounds_executed + 1, states=states)
                if topology.n != n:
                    raise ConfigurationError(
                        f"schedule changed the node count to {topology.n} in "
                        f"round {rounds_executed + 1}; expected {n}"
                    )
                adjacency = topology.sparse_adjacency()
            beeping = compiled.is_beeping[states]
            if beeping.any():
                heard = beeping | (
                    adjacency.dot(beeping.astype(np.int32)) > 0
                )
            else:
                heard = beeping
            heard_index = heard.astype(np.int8)

            primary = compiled.succ_primary[states, heard_index]
            secondary = compiled.succ_secondary[states, heard_index]
            probability = compiled.primary_probability[states, heard_index]
            uniforms = generator.random(n)
            states = np.where(uniforms < probability, primary, secondary).astype(
                np.int8
            )
            rounds_executed += 1

            leader_count = int(compiled.is_leader[states].sum())
            leader_counts.append(leader_count)
            stop_requested = observe(rounds_executed) or stop_requested
            if leader_count == 1 and convergence_round is None:
                convergence_round = rounds_executed
            elif leader_count != 1:
                convergence_round = None
            if heartbeat is not None and heartbeat.due(rounds_executed):
                heartbeat.beat(
                    engine="vectorized",
                    round_index=rounds_executed,
                    replicas=1,
                    active=1,
                    converged=int(leader_count == 1),
                    leaderless=int(leader_count == 0),
                    rounds_advanced=rounds_executed,
                )

        self.last_states = states.copy()
        if pipeline is not None:
            pipeline.finish(np.array([rounds_executed], dtype=np.int64))
        self.last_beep_counts = (
            beep_tracker.counts[0] if beep_tracker is not None else None
        )

        trace: Optional[ExecutionTrace] = None
        if recorder is not None:
            trace = recorder.trace().replica(0)

        converged = convergence_round is not None and leader_counts[-1] == 1

        # One telemetry sample per run (a no-op unless a MetricsRegistry is
        # installed); imported lazily to keep the engine importable without
        # pulling the telemetry stack.
        from repro.telemetry.metrics import sample_engine_run

        cache_stats = (
            self._schedule.cache_stats() if self._schedule is not None else None
        )
        sample_engine_run(
            "vectorized",
            rounds_advanced=rounds_executed,
            replicas=1,
            wall_seconds=time.perf_counter() - run_started,
            replicas_converged=int(converged),
            replicas_leaderless=int(leader_counts[-1] == 0),
            cache_stats=cache_stats,
        )
        return SimulationResult(
            converged=converged,
            convergence_round=convergence_round if converged else None,
            rounds_executed=rounds_executed,
            final_leader_count=leader_counts[-1],
            leader_counts=tuple(leader_counts),
            protocol_name=compiled.protocol_name,
            topology_name=self._topology.name,
            seed=seed_value,
            trace=trace,
        )


def run_bfw(
    topology: Topology,
    protocol: Optional[BeepingProtocol] = None,
    max_rounds: Optional[int] = None,
    rng: RngLike = None,
    record_trace: bool = False,
) -> SimulationResult:
    """Convenience wrapper: run BFW (or a given protocol) with the fast engine.

    Examples
    --------
    >>> from repro.graphs import path_graph
    >>> result = run_bfw(path_graph(16), rng=7)
    >>> result.converged
    True
    >>> result.final_leader_count
    1
    """
    from repro.core.bfw import BFWProtocol

    engine = VectorizedEngine(topology, protocol or BFWProtocol())
    return engine.run(max_rounds=max_rounds, rng=rng, record_trace=record_trace)
