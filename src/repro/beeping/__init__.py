"""Beeping-model simulators: reference simulator, vectorised engine, traces."""

from repro.beeping.adversary import (
    all_leaders_initial_states,
    leaderless_wave_on_cycle_states,
    planted_leaders_initial_states,
    random_unrestricted_states,
    random_valid_initial_states,
    satisfies_initial_condition,
    two_leaders_at_diameter_states,
)
from repro.beeping.engine import (
    CompiledProtocol,
    VectorizedEngine,
    compile_protocol,
    run_bfw,
)
from repro.beeping.network import (
    Configuration,
    all_waiting_leaders,
    single_leader_configuration,
)
from repro.beeping.observers import (
    BeepCountTracker,
    CallbackObserver,
    LeaderCountTracker,
    Observer,
    RoundSnapshot,
    SingleLeaderStopper,
    StateHistogramTracker,
    TraceRecorder,
)
from repro.beeping.simulator import (
    MemorySimulator,
    SimulationResult,
    Simulator,
    default_round_budget,
)
from repro.beeping.trace import ExecutionTrace, TraceBuilder

__all__ = [
    "BeepCountTracker",
    "CallbackObserver",
    "CompiledProtocol",
    "Configuration",
    "ExecutionTrace",
    "LeaderCountTracker",
    "MemorySimulator",
    "Observer",
    "RoundSnapshot",
    "SimulationResult",
    "Simulator",
    "SingleLeaderStopper",
    "StateHistogramTracker",
    "TraceBuilder",
    "TraceRecorder",
    "VectorizedEngine",
    "all_leaders_initial_states",
    "all_waiting_leaders",
    "compile_protocol",
    "default_round_budget",
    "leaderless_wave_on_cycle_states",
    "planted_leaders_initial_states",
    "random_unrestricted_states",
    "random_valid_initial_states",
    "run_bfw",
    "satisfies_initial_condition",
    "single_leader_configuration",
    "two_leaders_at_diameter_states",
]
