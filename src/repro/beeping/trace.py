"""Execution traces: the full per-round history of a simulation.

A trace records, for every executed round, the state of every node and the
set of nodes that beeped.  Traces are what the analysis layer consumes to
verify the deterministic properties of Section 3 (flow conservation, Ohm's
law, Claim 6) and to extract beep waves for visualisation.

For the constant-state protocols the states are stored as a compact
``(rounds + 1) × n`` integer array; row ``t`` is the configuration *in round
t*, with row ``0`` being the initial configuration.  The convention matches
the paper: a node "beeps in round t" if its state in round ``t`` belongs to
``Qb``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.states import State
from repro.errors import TraceError


@dataclass
class ExecutionTrace:
    """Complete state history of a finite-state-protocol execution.

    Attributes
    ----------
    states:
        Integer array of shape ``(rounds + 1, n)``; ``states[t, u]`` is the
        state value of node ``u`` in round ``t``.
    beeping_values:
        The set of state values that count as beeping for the protocol that
        produced the trace.
    leader_values:
        The set of state values that count as being a leader.
    protocol_name, topology_name:
        Provenance metadata.
    seed:
        The seed used to drive the execution, if known.
    """

    states: np.ndarray
    beeping_values: Tuple[int, ...]
    leader_values: Tuple[int, ...]
    protocol_name: str = ""
    topology_name: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.states = np.asarray(self.states, dtype=np.int8)
        if self.states.ndim != 2:
            raise TraceError(
                f"trace states must be a 2-D array; got shape {self.states.shape}"
            )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def num_rounds(self) -> int:
        """Number of executed rounds (the trace also stores round 0)."""
        return self.states.shape[0] - 1

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.states.shape[1]

    def rounds(self) -> range:
        """The recorded round indices ``0 .. num_rounds``."""
        return range(self.states.shape[0])

    # ------------------------------------------------------------------ #
    # Per-round queries
    # ------------------------------------------------------------------ #

    def state_of(self, node: int, round_index: int) -> int:
        """The raw state value of ``node`` in ``round_index``."""
        self._check_round(round_index)
        return int(self.states[round_index, node])

    def bfw_state_of(self, node: int, round_index: int) -> State:
        """The state of ``node`` as a :class:`~repro.core.states.State` member."""
        return State(self.state_of(node, round_index))

    def beeping_mask(self, round_index: int) -> np.ndarray:
        """Boolean mask of the nodes beeping in ``round_index`` (the set ``B_t``)."""
        self._check_round(round_index)
        row = self.states[round_index]
        mask = np.zeros(self.n, dtype=bool)
        for value in self.beeping_values:
            mask |= row == value
        return mask

    def leader_mask(self, round_index: int) -> np.ndarray:
        """Boolean mask of the nodes in a leader state in ``round_index``."""
        self._check_round(round_index)
        row = self.states[round_index]
        mask = np.zeros(self.n, dtype=bool)
        for value in self.leader_values:
            mask |= row == value
        return mask

    def beeping_nodes(self, round_index: int) -> Tuple[int, ...]:
        """The nodes beeping in ``round_index``, sorted."""
        return tuple(int(i) for i in np.flatnonzero(self.beeping_mask(round_index)))

    def leaders(self, round_index: int) -> Tuple[int, ...]:
        """The nodes in a leader state in ``round_index``, sorted."""
        return tuple(int(i) for i in np.flatnonzero(self.leader_mask(round_index)))

    def leader_count(self, round_index: int) -> int:
        """Number of leaders in ``round_index``."""
        return int(self.leader_mask(round_index).sum())

    def leader_counts(self) -> np.ndarray:
        """Leader count for every recorded round, as an integer array."""
        counts = np.zeros(self.states.shape[0], dtype=int)
        for round_index in self.rounds():
            counts[round_index] = self.leader_count(round_index)
        return counts

    # ------------------------------------------------------------------ #
    # Cumulative quantities
    # ------------------------------------------------------------------ #

    def beep_counts(self, round_index: Optional[int] = None) -> np.ndarray:
        """``N^beep_t(u)`` for every node ``u``: beeps emitted up to round ``t`` included.

        The paper counts rounds ``s ≤ t``; round 0 never contains beeps under
        the paper's initial condition Eq. (2), but adversarial initial
        configurations may beep in round 0 and those beeps are counted too.
        """
        if round_index is None:
            round_index = self.num_rounds
        self._check_round(round_index)
        counts = np.zeros(self.n, dtype=int)
        for t in range(round_index + 1):
            counts += self.beeping_mask(t)
        return counts

    def beep_count_of(self, node: int, round_index: int) -> int:
        """``N^beep_t(node)`` for a single node."""
        self._check_round(round_index)
        count = 0
        for t in range(round_index + 1):
            if self.states[t, node] in self.beeping_values:
                count += 1
        return count

    def convergence_round(self) -> Optional[int]:
        """First recorded round from which exactly one leader remains.

        Returns ``None`` if the trace never reaches (or does not end in) a
        single-leader configuration.  Because leader states can only be left
        and never re-entered under BFW, reaching a single leader is stable;
        for arbitrary traces we additionally require that every later
        recorded round also has exactly one leader.
        """
        counts = self.leader_counts()
        if counts[-1] != 1:
            return None
        single = counts == 1
        # Last index where the configuration was NOT single-leader.
        not_single = np.flatnonzero(~single)
        if len(not_single) == 0:
            return 0
        first_stable = int(not_single[-1]) + 1
        return first_stable if first_stable <= self.num_rounds else None

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary view suitable for JSON serialisation."""
        return {
            "states": self.states.tolist(),
            "beeping_values": list(self.beeping_values),
            "leader_values": list(self.leader_values),
            "protocol_name": self.protocol_name,
            "topology_name": self.topology_name,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExecutionTrace":
        """Inverse of :meth:`as_dict`."""
        return cls(
            states=np.asarray(payload["states"], dtype=np.int8),
            beeping_values=tuple(payload["beeping_values"]),
            leader_values=tuple(payload["leader_values"]),
            protocol_name=str(payload.get("protocol_name", "")),
            topology_name=str(payload.get("topology_name", "")),
            seed=payload.get("seed"),
        )

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _check_round(self, round_index: int) -> None:
        if not 0 <= round_index < self.states.shape[0]:
            raise TraceError(
                f"round {round_index} outside recorded range 0..{self.num_rounds}"
            )


class TraceBuilder:
    """Incrementally build an :class:`ExecutionTrace` during a simulation."""

    def __init__(
        self,
        beeping_values: Iterable[int],
        leader_values: Iterable[int],
        protocol_name: str = "",
        topology_name: str = "",
        seed: Optional[int] = None,
    ) -> None:
        self._rows: List[np.ndarray] = []
        self._beeping_values = tuple(int(v) for v in beeping_values)
        self._leader_values = tuple(int(v) for v in leader_values)
        self._protocol_name = protocol_name
        self._topology_name = topology_name
        self._seed = seed

    def record(self, states: Sequence[int]) -> None:
        """Append the configuration of one round."""
        self._rows.append(np.asarray(states, dtype=np.int8).copy())

    def __len__(self) -> int:
        return len(self._rows)

    def build(self) -> ExecutionTrace:
        """Finalise the trace.

        Raises
        ------
        TraceError
            If no round was recorded.
        """
        if not self._rows:
            raise TraceError("cannot build a trace with no recorded rounds")
        return ExecutionTrace(
            states=np.vstack(self._rows),
            beeping_values=self._beeping_values,
            leader_values=self._leader_values,
            protocol_name=self._protocol_name,
            topology_name=self._topology_name,
            seed=self._seed,
        )
