"""The reference simulator for the synchronous beeping model.

Two simulators are provided:

* :class:`Simulator` runs constant-state protocols
  (:class:`~repro.core.protocol.BeepingProtocol`, e.g. BFW) by literally
  applying the probabilistic transition kernels node by node.  It is the
  easy-to-audit reference implementation that the test suite checks the
  vectorised engine against.
* :class:`MemorySimulator` runs baseline algorithms with unbounded per-node
  memory (:class:`~repro.core.protocol.MemoryProtocol`).

Both enforce the paper's communication semantics: in each round every node
either beeps or listens, and a listening node hears a beep if and only if at
least one of its neighbours beeps (a beeping node is also treated as hearing
a beep, which is how the paper applies ``δ⊤`` to beeping states).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.batch.observers import (
    BatchObserver,
    BatchRunInfo,
    ObserverPipeline,
)
from repro.beeping.network import Configuration
from repro.beeping.observers import (
    LeaderCountTracker,
    Observer,
    RoundSnapshot,
    SingleLeaderStopper,
    TraceRecorder,
)
from repro.beeping.trace import ExecutionTrace
from repro.core.protocol import BeepingProtocol, MemoryProtocol
from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.topology import Topology


def default_round_budget(topology: Topology, safety_factor: float = 64.0) -> int:
    """A generous default round budget of order ``D² log n``.

    Theorem 2 guarantees convergence within ``O(D² log n)`` rounds w.h.p.;
    the default budget multiplies that by a safety factor so that the budget
    is effectively never the binding constraint in experiments.
    """
    n = max(2, topology.n)
    diameter = max(1, topology.diameter())
    budget = safety_factor * diameter * diameter * (math.log2(n) + 1.0)
    return int(budget) + 256


@dataclass
class SimulationResult:
    """Outcome of a single simulated execution.

    Attributes
    ----------
    converged:
        Whether the execution reached a single-leader configuration within
        the round budget.
    convergence_round:
        First round from which exactly one leader remained, or ``None``.
    rounds_executed:
        Number of transition rounds that were simulated.
    final_leader_count:
        Number of leaders in the last simulated round.
    leader_counts:
        Leader count per recorded round (round 0 included).
    protocol_name, topology_name, seed:
        Provenance metadata.
    trace:
        Full execution trace, present only when trace recording was enabled.
    """

    converged: bool
    convergence_round: Optional[int]
    rounds_executed: int
    final_leader_count: int
    leader_counts: Tuple[int, ...] = ()
    protocol_name: str = ""
    topology_name: str = ""
    seed: Optional[int] = None
    trace: Optional[ExecutionTrace] = None

    def as_dict(self) -> dict:
        """Plain-dictionary view (without the trace) for serialisation."""
        return {
            "converged": self.converged,
            "convergence_round": self.convergence_round,
            "rounds_executed": self.rounds_executed,
            "final_leader_count": self.final_leader_count,
            "protocol_name": self.protocol_name,
            "topology_name": self.topology_name,
            "seed": self.seed,
        }


class Simulator:
    """Reference simulator for constant-state beeping protocols.

    Parameters
    ----------
    topology:
        The communication graph.
    protocol:
        The protocol to execute.
    """

    def __init__(self, topology: Topology, protocol: BeepingProtocol) -> None:
        protocol.validate()
        self._topology = topology
        self._protocol = protocol
        self._beeping_values = tuple(
            int(s) for s in protocol.states() if protocol.is_beeping(s)
        )
        self._leader_values = tuple(
            int(s) for s in protocol.states() if protocol.is_leader(s)
        )

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> BeepingProtocol:
        """The protocol being simulated."""
        return self._protocol

    def run(
        self,
        max_rounds: Optional[int] = None,
        rng: RngLike = None,
        initial_configuration: Optional[Configuration] = None,
        observers: Sequence[Observer] = (),
        record_trace: bool = False,
        stop_at_single_leader: bool = True,
    ) -> SimulationResult:
        """Execute the protocol and return a :class:`SimulationResult`.

        Parameters
        ----------
        max_rounds:
            Round budget; defaults to :func:`default_round_budget`.
        rng:
            Seed or generator driving all probabilistic transitions.
        initial_configuration:
            Starting configuration; defaults to every node in the protocol's
            initial state (the paper's Eq. (2)).
        observers:
            Additional observers to attach.
        record_trace:
            Whether to record (and return) the full execution trace.
        stop_at_single_leader:
            Whether to stop as soon as a single leader remains.  For BFW this
            is sound because the leader count never increases.
        """
        seed_value = rng if isinstance(rng, int) else None
        generator = as_rng(rng)
        if max_rounds is None:
            max_rounds = default_round_budget(self._topology)
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0; got {max_rounds}")

        configuration = initial_configuration or Configuration(
            self._topology, self._protocol
        )
        if configuration.topology is not self._topology:
            raise SimulationError(
                "initial configuration was built for a different topology"
            )

        tracker = LeaderCountTracker()
        all_observers: List[Observer] = [tracker]
        recorder: Optional[TraceRecorder] = None
        if record_trace:
            recorder = TraceRecorder(
                beeping_values=self._beeping_values,
                leader_values=self._leader_values,
                seed=seed_value,
            )
            all_observers.append(recorder)
        if stop_at_single_leader:
            all_observers.append(SingleLeaderStopper())
        all_observers.extend(observers)

        for observer in all_observers:
            observer.on_start(
                self._topology.n, self._protocol.name, self._topology.name
            )

        states = list(configuration.states())
        rounds_executed = 0
        snapshot = self._snapshot(0, states)
        stop = self._notify(all_observers, snapshot)

        while not stop and rounds_executed < max_rounds:
            states = self._step(states, snapshot.heard, generator)
            rounds_executed += 1
            snapshot = self._snapshot(rounds_executed, states)
            stop = self._notify(all_observers, snapshot)

        for observer in all_observers:
            observer.on_finish(snapshot)

        convergence_round = tracker.convergence_round
        return SimulationResult(
            converged=convergence_round is not None,
            convergence_round=convergence_round,
            rounds_executed=rounds_executed,
            final_leader_count=snapshot.leader_count,
            leader_counts=tuple(tracker.counts),
            protocol_name=self._protocol.name,
            topology_name=self._topology.name,
            seed=seed_value,
            trace=recorder.trace() if recorder is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _step(
        self,
        states: List[Hashable],
        heard: np.ndarray,
        rng: np.random.Generator,
    ) -> List[Hashable]:
        """Apply one synchronous transition to every node."""
        return [
            self._protocol.transition(state, bool(heard[node]), rng)
            for node, state in enumerate(states)
        ]

    def _snapshot(self, round_index: int, states: Sequence[Hashable]) -> RoundSnapshot:
        values = np.array([int(s) for s in states], dtype=np.int8)
        beeping = np.isin(values, self._beeping_values)
        leaders = np.isin(values, self._leader_values)
        if beeping.any():
            adjacency = self._topology.sparse_adjacency()
            heard = beeping | (adjacency.dot(beeping.astype(np.int32)) > 0)
        else:
            heard = beeping.copy()
        return RoundSnapshot(
            round_index=round_index,
            state_values=values,
            beeping=beeping,
            leaders=leaders,
            heard=heard,
        )

    @staticmethod
    def _notify(observers: Sequence[Observer], snapshot: RoundSnapshot) -> bool:
        stop = False
        for observer in observers:
            observer.on_round(snapshot)
            if observer.should_stop(snapshot):
                stop = True
        return stop


class MemorySimulator:
    """Simulator for beeping algorithms with unbounded per-node memory.

    The round structure is identical to :class:`Simulator`; only the state
    representation differs.  The result's "leader count" is the number of
    nodes whose memory currently marks them as (candidate) leader.
    """

    def __init__(self, topology: Topology, protocol: MemoryProtocol) -> None:
        self._topology = topology
        self._protocol = protocol

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> MemoryProtocol:
        """The algorithm being simulated."""
        return self._protocol

    def run(
        self,
        max_rounds: Optional[int] = None,
        rng: RngLike = None,
        stop_at_single_leader: bool = True,
        stability_window: int = 2,
        observers: Sequence[BatchObserver] = (),
    ) -> SimulationResult:
        """Execute the algorithm and return a :class:`SimulationResult`.

        Parameters
        ----------
        max_rounds:
            Round budget; defaults to :func:`default_round_budget`.
        rng:
            Seed or generator for the algorithm's random choices.
        stop_at_single_leader:
            Stop once a single candidate leader has persisted for
            ``stability_window`` consecutive rounds, or as soon as every node
            reports termination.
        stability_window:
            Number of consecutive single-leader rounds required before
            stopping (baselines may transiently drop to one candidate).
        observers:
            :class:`~repro.batch.observers.BatchObserver` instances driven
            with one-replica round reports (``states``/``beeping`` are
            ``None`` — memory protocols have no state classes).  A retire
            request stops the run at that round, exactly as it retires the
            replica on :class:`~repro.batch.memory.BatchedMemoryEngine`.
        """
        run_started = time.perf_counter()
        seed_value = rng if isinstance(rng, int) else None
        generator = as_rng(rng)
        if max_rounds is None:
            max_rounds = default_round_budget(self._topology)

        n = self._topology.n
        adjacency = self._topology.sparse_adjacency()
        memories = [
            self._protocol.create_memory(node, n, generator) for node in range(n)
        ]

        pipeline: Optional[ObserverPipeline] = None
        active_one = np.ones(1, dtype=bool)
        if observers:
            pipeline = ObserverPipeline(
                observers,
                BatchRunInfo(
                    num_replicas=1,
                    n=n,
                    protocol_name=self._protocol.name,
                    topology_name=self._topology.name,
                    seeds=(seed_value,),
                ),
            )

        leader_counts: List[int] = []
        convergence_round: Optional[int] = None
        consecutive_single = 0
        rounds_executed = 0

        def leaders_now() -> Tuple[Optional[np.ndarray], int]:
            """One pass over the memories: (mask for observers, count)."""
            if pipeline is None:
                return None, sum(
                    1 for memory in memories if self._protocol.is_leader(memory)
                )
            mask = np.array(
                [self._protocol.is_leader(memory) for memory in memories],
                dtype=bool,
            )
            return mask, int(mask.sum())

        def observe(round_index: int, mask: Optional[np.ndarray]) -> bool:
            """Report one round to the pipeline; True = retire requested."""
            if pipeline is None:
                return False
            assert mask is not None
            requested = pipeline.observe_round(
                round_index, None, None, mask.reshape(1, -1), active_one
            )
            return bool(requested is not None and requested[0])

        mask, count = leaders_now()
        leader_counts.append(count)
        if count == 1:
            convergence_round = 0
            consecutive_single = 1
        stop_requested = observe(0, mask)

        # In-flight heartbeat: looked up once per run; None costs a single
        # is-not-None check per round, and beats never touch `generator`, so
        # records stay byte-identical with heartbeats on or off.
        from repro.telemetry.heartbeat import current_heartbeat

        heartbeat = current_heartbeat()

        for round_index in range(max_rounds):
            if stop_requested:
                break
            beeping = np.array(
                [
                    self._protocol.wants_to_beep(memory, round_index)
                    for memory in memories
                ],
                dtype=bool,
            )
            if beeping.any():
                heard = beeping | (adjacency.dot(beeping.astype(np.int32)) > 0)
            else:
                heard = beeping
            memories = [
                self._protocol.update(
                    memory, bool(heard[node]), round_index, generator
                )
                for node, memory in enumerate(memories)
            ]
            rounds_executed += 1

            mask, count = leaders_now()
            leader_counts.append(count)
            if count == 1:
                if convergence_round is None:
                    convergence_round = rounds_executed
                consecutive_single += 1
            else:
                convergence_round = None
                consecutive_single = 0
            stop_requested = observe(rounds_executed, mask)
            if heartbeat is not None and heartbeat.due(rounds_executed):
                heartbeat.beat(
                    engine="memory",
                    round_index=rounds_executed,
                    replicas=1,
                    active=1,
                    converged=int(count == 1),
                    leaderless=int(count == 0),
                    rounds_advanced=rounds_executed,
                )

            everyone_terminated = all(
                self._protocol.has_terminated(memory) for memory in memories
            )
            if everyone_terminated:
                break
            if (
                stop_at_single_leader
                and consecutive_single >= max(1, stability_window)
            ):
                break

        if pipeline is not None:
            pipeline.finish(np.array([rounds_executed], dtype=np.int64))

        converged = convergence_round is not None and leader_counts[-1] == 1

        # One telemetry sample per run (a no-op unless a MetricsRegistry is
        # installed); imported lazily to keep the simulator importable
        # without pulling the telemetry stack.
        from repro.telemetry.metrics import sample_engine_run

        sample_engine_run(
            "memory",
            rounds_advanced=rounds_executed,
            replicas=1,
            wall_seconds=time.perf_counter() - run_started,
            replicas_converged=int(converged),
            replicas_leaderless=int(leader_counts[-1] == 0),
        )
        return SimulationResult(
            converged=converged,
            convergence_round=convergence_round if converged else None,
            rounds_executed=rounds_executed,
            final_leader_count=leader_counts[-1],
            leader_counts=tuple(leader_counts),
            protocol_name=self._protocol.name,
            topology_name=self._topology.name,
            seed=seed_value,
        )
