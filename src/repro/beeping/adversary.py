"""Adversarial and planted initial configurations.

The paper's guarantees assume the initial condition Eq. (2): every node is in
a Waiting state and at least one node is a leader.  The Discussion (Section 5)
explains why fully arbitrary initial configurations break the protocol — a
cycle can carry a persistent deterministic beep wave with no leader present.

This module builds the initial configurations the experiments need:

* the paper's default (all nodes ``W•``),
* *planted* configurations with a chosen set of leaders (e.g. exactly two
  leaders at the ends of a path, used by the lower-bound experiment E4),
* *adversarial* configurations violating Eq. (2) (leaderless beep waves on a
  cycle), used to demonstrate the limits discussed in Section 5,
* random valid configurations for property-based tests.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.core.states import State
from repro.errors import ConfigurationError
from repro.graphs.topology import Topology


def all_leaders_initial_states(topology: Topology) -> np.ndarray:
    """The paper's initial configuration: every node in ``W•``."""
    return np.full(topology.n, int(State.W_LEADER), dtype=np.int8)


def planted_leaders_initial_states(
    topology: Topology, leaders: Iterable[int]
) -> np.ndarray:
    """A configuration where exactly the given nodes start as (waiting) leaders.

    All other nodes start in ``W◦``.  This satisfies Eq. (2) as long as the
    leader set is non-empty.

    Raises
    ------
    ConfigurationError
        If the leader set is empty or references nodes outside the graph.
    """
    leader_list = sorted(set(int(node) for node in leaders))
    if not leader_list:
        raise ConfigurationError("at least one leader must be planted (Eq. (2))")
    states = np.full(topology.n, int(State.W_FOLLOWER), dtype=np.int8)
    for node in leader_list:
        if not 0 <= node < topology.n:
            raise ConfigurationError(
                f"leader {node} outside node range 0..{topology.n - 1}"
            )
        states[node] = int(State.W_LEADER)
    return states


def two_leaders_at_diameter_states(topology: Topology) -> np.ndarray:
    """Exactly two leaders placed at (approximately) diametral nodes.

    This is the configuration of the paper's Section 5 lower-bound
    discussion: two leaders at the ends of a path of length ``D``, whose
    waves meet in the middle and whose meeting point performs a random walk.
    """
    from repro.graphs.properties import peripheral_pair

    first, second = peripheral_pair(topology)
    if first == second:
        raise ConfigurationError(
            "graph has a single node; cannot plant two distinct leaders"
        )
    return planted_leaders_initial_states(topology, (first, second))


def random_valid_initial_states(
    topology: Topology,
    rng: RngLike = None,
    leader_probability: float = 0.5,
) -> np.ndarray:
    """A random configuration satisfying Eq. (2).

    Every node is Waiting; each node is independently a leader with
    probability ``leader_probability``, and one uniformly random node is
    forced to be a leader so that the configuration is never leaderless.
    """
    if not 0.0 <= leader_probability <= 1.0:
        raise ConfigurationError(
            f"leader probability must lie in [0, 1]; got {leader_probability}"
        )
    generator = as_rng(rng)
    is_leader = generator.random(topology.n) < leader_probability
    is_leader[int(generator.integers(0, topology.n))] = True
    states = np.where(
        is_leader, int(State.W_LEADER), int(State.W_FOLLOWER)
    ).astype(np.int8)
    return states


def leaderless_wave_on_cycle_states(topology: Topology) -> np.ndarray:
    """An adversarial, leaderless configuration carrying a persistent wave.

    Section 5 observes that if arbitrary initial configurations were allowed,
    a cycle could contain a beep wave travelling forever with no leader in
    the network.  On a cycle ``v_0, v_1, ..., v_{n-1}`` the configuration

    * ``v_0`` in ``B◦`` (beeping), ``v_1`` in ``W◦``, ``v_{n-1}`` in ``F◦``
      (just beeped), all other nodes in ``W◦``

    produces a wave that rotates around the cycle indefinitely under the BFW
    transition rules.  The experiment harness uses it to demonstrate the
    necessity of the initial condition.

    The function assumes the topology is a cycle with consecutive labels
    (as produced by :func:`repro.graphs.generators.cycle_graph`); it raises
    :class:`ConfigurationError` otherwise.
    """
    n = topology.n
    if n < 3:
        raise ConfigurationError("a leaderless wave needs a cycle of length >= 3")
    expected_edges = {(i, (i + 1) % n) for i in range(n)}
    normalised = {(min(u, v), max(u, v)) for u, v in expected_edges}
    if set(topology.edges) != normalised:
        raise ConfigurationError(
            "leaderless_wave_on_cycle_states requires a consecutively-labelled cycle"
        )
    states = np.full(n, int(State.W_FOLLOWER), dtype=np.int8)
    states[0] = int(State.B_FOLLOWER)
    states[n - 1] = int(State.F_FOLLOWER)
    return states


def random_unrestricted_states(
    topology: Topology, rng: RngLike = None
) -> np.ndarray:
    """A uniformly random assignment over all six states (may violate Eq. (2)).

    Used by robustness experiments that probe the protocol's behaviour outside
    its guaranteed operating envelope.
    """
    generator = as_rng(rng)
    return generator.integers(0, len(State), size=topology.n).astype(np.int8)


def satisfies_initial_condition(states: Sequence[int]) -> bool:
    """Whether a state vector satisfies the paper's Eq. (2).

    Eq. (2) requires every node to be Waiting and at least one node to be a
    (waiting) leader.
    """
    values = [State(int(v)) for v in states]
    all_waiting = all(value.is_waiting for value in values)
    has_leader = any(value.is_leader for value in values)
    return all_waiting and has_leader
