"""Command-line interface for the reproduction.

Every experiment in DESIGN.md can be regenerated from the command line:

.. code-block:: console

    repro list-protocols
    repro run --protocol bfw --graph path --n 64 --seed 1
    repro table1 --seeds 10 --backend process:4
    repro scaling --mode uniform --diameters 8 16 32 64
    repro scaling --mode nonuniform --diameters 8 16 32 64 --replicas 32 --backend batched
    repro montecarlo --protocol emek-keren --graph cycle --n 64 --replicas 64
    repro lower-bound --diameters 8 16 32 64 --workers 4
    repro ablation --backend batched
    repro dynamic --families cycle --sizes 32 64 --churn-rates 0 1 2 4
    repro wave-demo --n 40
    repro serve --port 8123 --workers 4 --shard-size auto --heartbeat 64
    repro submit --url http://127.0.0.1:8123 --protocol bfw --graph cycle --n 64
    repro status SWEEP_ID --url http://127.0.0.1:8123
    repro tail SWEEP_ID --url http://127.0.0.1:8123 --follow
    repro top --url http://127.0.0.1:8123
    repro trace export spans.jsonl --out sweep.trace.json
    repro trace export SWEEP_ID --url http://127.0.0.1:8123

Every sweep-shaped experiment accepts ``--backend`` (``sequential``,
``batched``, ``process[:N]``, ``service:URL``) and ``--workers N``
(shorthand for ``--backend process:N``); the per-replica outcomes are
byte-identical on every backend under the same master seed — the batched,
process and service executors reproduce each seeded replica exactly, so
the choice is purely about wall-clock.  (``repro montecarlo`` additionally reports *how* it ran:
its engine row and elected-leader identities reflect the chosen backend,
because only batched executions record leader identities.)  The legacy
``--batched`` flag remains as a deprecated alias for ``--backend batched``.

The CLI is intentionally thin: each sub-command parses arguments, calls the
corresponding function in :mod:`repro.experiments`, and prints the rendered
report to stdout (optionally saving raw records as JSON/CSV).
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional, Sequence

from repro._version import __version__


def _add_backend_arguments(
    parser: argparse.ArgumentParser,
    default: str = "sequential",
    legacy_batched: bool = True,
) -> None:
    """Attach the shared execution-backend options to a sub-command."""
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "Execution backend: 'sequential', 'batched' (all replicas of a "
            "cell in one state array) or 'process[:N]' (cells sharded "
            f"across N worker processes).  Output is byte-identical on "
            f"every backend; default: {default}."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="Worker processes for the process backend (implies --backend process:N).",
    )
    parser.add_argument(
        "--shard-size",
        default=None,
        metavar="N|auto",
        help=(
            "Split each cell's seed list into shards of at most N seeds "
            "('auto' = ceil(replicas / workers) per cell), so process:N "
            "parallelises within a cell.  Output stays byte-identical; "
            "default: whole cells."
        ),
    )
    parser.add_argument(
        "--heartbeat",
        type=int,
        default=None,
        metavar="K",
        help=(
            "Stream an in-flight heartbeat every K engine rounds while "
            "cells execute (watch it with --telemetry + 'repro tail'). "
            "0 disables; records stay byte-identical either way."
        ),
    )
    parser.add_argument(
        "--kernel",
        default=None,
        metavar="SPEC",
        help=(
            "Round kernel for the batched engine: 'auto' (numba when "
            "importable), 'numba', 'numpy', 'python' or 'xp:<namespace>'. "
            "Records are byte-identical on every kernel; only the "
            "wall-clock changes."
        ),
    )
    if legacy_batched:
        parser.add_argument(
            "--batched",
            action="store_true",
            help="[deprecated] Alias for --backend batched.",
        )


def _add_progress_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared progress/telemetry options to a sub-command."""
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="Suppress per-cell progress lines (telemetry still streams).",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help=(
            "Append one JSONL record per completed cell to PATH while the "
            "sweep runs; watch it live with 'repro tail PATH --follow'."
        ),
    )
    parser.add_argument(
        "--spans",
        default=None,
        metavar="PATH",
        help=(
            "Write the sweep's span tree (sweep → cell → shard → attempt, "
            "JSONL) to PATH when the sweep finishes; convert it with "
            "'repro trace export PATH' for Perfetto/chrome://tracing."
        ),
    )


def _progress_reporter_from_args(args: argparse.Namespace):
    """One ProgressReporter shared by progress lines and the JSONL stream."""
    from repro.telemetry.progress import ProgressReporter

    return ProgressReporter(
        quiet=getattr(args, "quiet", False),
        telemetry_path=getattr(args, "telemetry", None),
        prefix="  ",
        spans_path=getattr(args, "spans", None),
    )


def _backend_spec_from_args(args: argparse.Namespace) -> Optional[str]:
    """Combine --backend/--workers/--batched into one backend spec string.

    Returns ``None`` when nothing was requested, so each sub-command keeps
    its historical default.  The deprecated ``--batched`` flag maps onto
    ``--backend batched`` with a :class:`DeprecationWarning`.
    """
    from repro.errors import ConfigurationError

    backend: Optional[str] = args.backend
    workers: Optional[int] = args.workers
    if getattr(args, "batched", False):
        if backend is not None:
            raise ConfigurationError(
                "--batched is a deprecated alias for --backend batched; "
                "pass only one of them"
            )
        warnings.warn(
            "--batched is deprecated; use --backend batched instead",
            DeprecationWarning,
            stacklevel=2,
        )
        backend = "batched"
    if workers is not None:
        if backend is None or backend == "process":
            backend = f"process:{workers}"
        else:
            raise ConfigurationError(
                f"--workers only applies to the process backend; "
                f"got --workers {workers} with --backend {backend}"
            )
    return backend


def _shard_size_from_args(args: argparse.Namespace):
    """The ``--shard-size`` value in the form the entry points accept.

    ``None`` (flag absent) keeps whole cells; ``"auto"`` and integer strings
    pass through to :func:`repro.exec.resolve_shard_size`, which validates
    them when the backend resolves.
    """
    value = getattr(args, "shard_size", None)
    if value is None:
        return None
    return str(value).strip().lower()


def _heartbeat_interval_from_args(args: argparse.Namespace) -> Optional[int]:
    """The ``--heartbeat`` value (``None`` or ``0`` = heartbeats off)."""
    value = getattr(args, "heartbeat", None)
    if value is None or value == 0:
        return None
    return int(value)


def _kernel_from_args(args: argparse.Namespace) -> Optional[str]:
    """The ``--kernel`` spec (``None`` keeps the engine's ``"auto"``).

    Validation happens when the backend resolves
    (:func:`repro.batch.kernels.validate_kernel`), so unknown specs fail
    with the same :class:`~repro.errors.ConfigurationError` everywhere.
    """
    value = getattr(args, "kernel", None)
    if value is None:
        return None
    return str(value).strip().lower()


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Minimalist Leader Election Under Weak Communication' "
            "(BFW protocol, beeping model)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser(
        "list-protocols", help="List available protocols and baselines."
    )

    run_parser = subparsers.add_parser(
        "run", help="Run one protocol on one graph and print the outcome."
    )
    run_parser.add_argument("--protocol", default="bfw")
    run_parser.add_argument("--graph", default="path")
    run_parser.add_argument("--n", type=int, default=32)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--max-rounds", type=int, default=None)
    run_parser.add_argument(
        "--beep-probability", type=float, default=None,
        help="Override p for BFW-family protocols.",
    )

    table1_parser = subparsers.add_parser(
        "table1", help="Regenerate Table 1 (protocol comparison)."
    )
    table1_parser.add_argument("--seeds", type=int, default=10)
    table1_parser.add_argument("--master-seed", type=int, default=1)
    table1_parser.add_argument("--save-json", default=None)
    table1_parser.add_argument("--save-csv", default=None)
    _add_backend_arguments(table1_parser)
    _add_progress_arguments(table1_parser)

    scaling_parser = subparsers.add_parser(
        "scaling", help="Convergence-time scaling (Theorems 2 and 3)."
    )
    scaling_parser.add_argument(
        "--mode", choices=("uniform", "nonuniform"), default="uniform"
    )
    scaling_parser.add_argument("--family", choices=("path", "cycle"), default="path")
    scaling_parser.add_argument(
        "--diameters", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    scaling_parser.add_argument("--seeds", type=int, default=10)
    scaling_parser.add_argument(
        "--replicas", type=int, default=None,
        help="Replicas per diameter (overrides --seeds).",
    )
    _add_backend_arguments(scaling_parser)
    scaling_parser.add_argument("--master-seed", type=int, default=2)

    montecarlo_parser = subparsers.add_parser(
        "montecarlo",
        help="Run R seeded replicas of one configuration with the batched engine.",
    )
    montecarlo_parser.add_argument("--protocol", default="bfw")
    montecarlo_parser.add_argument("--graph", default="cycle")
    montecarlo_parser.add_argument("--n", type=int, default=64)
    montecarlo_parser.add_argument("--replicas", type=int, default=32)
    montecarlo_parser.add_argument("--master-seed", type=int, default=None)
    montecarlo_parser.add_argument("--max-rounds", type=int, default=None)
    montecarlo_parser.add_argument(
        "--save-json", default=None,
        help="Write per-replica outcomes to this JSON file.",
    )
    _add_backend_arguments(montecarlo_parser, default="batched", legacy_batched=False)

    crossover_parser = subparsers.add_parser(
        "crossover", help="Uniform vs non-uniform BFW speed-up factors."
    )
    crossover_parser.add_argument(
        "--diameters", type=int, nargs="+", default=[8, 16, 32]
    )
    crossover_parser.add_argument("--seeds", type=int, default=10)
    _add_backend_arguments(crossover_parser, legacy_batched=False)

    lower_parser = subparsers.add_parser(
        "lower-bound", help="Section 5 lower-bound conjecture experiment."
    )
    lower_parser.add_argument(
        "--diameters", type=int, nargs="+", default=[8, 16, 32, 64]
    )
    lower_parser.add_argument("--seeds", type=int, default=20)
    _add_backend_arguments(lower_parser)

    ablation_parser = subparsers.add_parser(
        "ablation", help="Parameter sweep over p and structural ablations."
    )
    ablation_parser.add_argument("--diameter", type=int, default=24)
    ablation_parser.add_argument("--seeds", type=int, default=10)
    _add_backend_arguments(ablation_parser)

    dynamic_parser = subparsers.add_parser(
        "dynamic",
        help="BFW under edge churn: dynamic-graph sweep (churn rate × graph × n).",
    )
    dynamic_parser.add_argument("--protocol", default="bfw")
    dynamic_parser.add_argument(
        "--families", nargs="+", default=["cycle"], metavar="FAMILY",
        help="Graph families to sweep (default: cycle).",
    )
    dynamic_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[32, 64], metavar="N"
    )
    dynamic_parser.add_argument(
        "--churn-rates", type=int, nargs="+", default=[0, 1, 2, 4], metavar="K",
        help="Edges churned per round; 0 runs the explicit static schedule.",
    )
    dynamic_parser.add_argument(
        "--schedule", choices=("edge-churn", "cut", "interpolate"),
        default="edge-churn",
        help="Schedule family the churn rate parameterises.",
    )
    dynamic_parser.add_argument("--seeds", type=int, default=10)
    dynamic_parser.add_argument("--master-seed", type=int, default=None)
    dynamic_parser.add_argument("--max-rounds", type=int, default=None)
    dynamic_parser.add_argument("--save-json", default=None)
    _add_backend_arguments(dynamic_parser, default="batched", legacy_batched=False)
    _add_progress_arguments(dynamic_parser)

    extinction_parser = subparsers.add_parser(
        "extinction",
        help=(
            "Leader-extinction rate vs churn rate (E15): batched observers "
            "counting Lemma 9 violations per replica."
        ),
    )
    extinction_parser.add_argument("--protocol", default="bfw")
    extinction_parser.add_argument(
        "--families", nargs="+", default=["cycle"], metavar="FAMILY",
        help="Graph families to sweep (default: cycle).",
    )
    extinction_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[16, 32], metavar="N"
    )
    extinction_parser.add_argument(
        "--churn-rates", type=int, nargs="+", default=[0, 1, 2, 4], metavar="K",
        help="Edges churned per round; 0 runs the explicit static schedule.",
    )
    extinction_parser.add_argument(
        "--schedule", choices=("edge-churn", "cut", "interpolate"),
        default="edge-churn",
        help="Schedule family the churn rate parameterises.",
    )
    extinction_parser.add_argument("--seeds", type=int, default=20)
    extinction_parser.add_argument("--master-seed", type=int, default=None)
    extinction_parser.add_argument(
        "--max-rounds", type=int, default=None,
        help="Round budget per replica (default: the capped dynamic budget).",
    )
    extinction_parser.add_argument("--save-json", default=None)
    _add_backend_arguments(extinction_parser, default="batched", legacy_batched=False)
    _add_progress_arguments(extinction_parser)

    wave_parser = subparsers.add_parser(
        "wave-demo", help="Print a space-time diagram of beep waves on a path."
    )
    wave_parser.add_argument("--n", type=int, default=40)
    wave_parser.add_argument("--seed", type=int, default=0)
    wave_parser.add_argument("--max-rounds", type=int, default=200)

    tail_parser = subparsers.add_parser(
        "tail",
        help=(
            "Render a telemetry JSONL stream (from --telemetry), or a remote "
            "sweep's event stream (--url), as live status lines."
        ),
    )
    tail_parser.add_argument(
        "path",
        metavar="PATH|SWEEP_ID",
        help=(
            "Telemetry JSONL file to render — or, with --url, the id of a "
            "sweep on that service."
        ),
    )
    tail_parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help=(
            "Tail a sweep-service daemon instead of a file: stream "
            "GET /sweeps/{id}/events from this base URL."
        ),
    )
    tail_parser.add_argument(
        "--follow",
        action="store_true",
        help="Keep polling for new records until the sweep's summary arrives.",
    )
    tail_parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="Poll interval in --follow mode (default: 0.5).",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "Run the sweep-service daemon: accept sweep submissions over "
            "HTTP, execute them on a worker pool, cache results by cell "
            "signature."
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8123,
        help="Listen port (0 binds an ephemeral port; default: 8123).",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="Worker threads executing shard jobs (default: 2).",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="Re-queues allowed per shard before a sweep fails (default: 2).",
    )
    serve_parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "Re-queue a running shard attempt after this many seconds "
            "(default: no timeout)."
        ),
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "Persist the result cache here (default: a private temporary "
            "store that dies with the daemon)."
        ),
    )
    serve_parser.add_argument(
        "--shard-size", default=None, metavar="N|auto",
        help=(
            "Default seed-list shard size for submissions that do not "
            "specify one ('auto' = ceil(replicas / workers) per cell)."
        ),
    )
    serve_parser.add_argument(
        "--heartbeat", type=int, default=None, metavar="K",
        help=(
            "Default in-flight heartbeat interval (engine rounds between "
            "beats) for submitted sweeps; enables live per-shard progress "
            "in GET /sweeps/{id} and makes the --shard-timeout watchdog "
            "liveness-based (beating shards are never re-queued, only "
            "silent ones).  0 disables (the default)."
        ),
    )
    serve_parser.add_argument(
        "--kernel", default=None, metavar="SPEC",
        help=(
            "Default round kernel (repro.batch.kernels spec) stamped onto "
            "submitted cells that do not choose their own; resolved on the "
            "executing workers."
        ),
    )

    submit_parser = subparsers.add_parser(
        "submit",
        help=(
            "Submit one montecarlo-style cell to a sweep service and print "
            "the sweep id."
        ),
    )
    submit_parser.add_argument(
        "--url", required=True, metavar="URL",
        help="Base URL of the sweep service (what 'repro serve' prints).",
    )
    submit_parser.add_argument("--protocol", default="bfw")
    submit_parser.add_argument("--graph", default="cycle")
    submit_parser.add_argument("--n", type=int, default=64)
    submit_parser.add_argument("--replicas", type=int, default=32)
    submit_parser.add_argument("--master-seed", type=int, default=None)
    submit_parser.add_argument("--max-rounds", type=int, default=None)
    submit_parser.add_argument(
        "--shard-size", default=None, metavar="N|auto",
        help="Shard the cell's seed list across the daemon's workers.",
    )
    submit_parser.add_argument(
        "--heartbeat", type=int, default=None, metavar="K",
        help=(
            "Per-sweep in-flight heartbeat interval (engine rounds between "
            "beats), overriding the daemon's --heartbeat default; 0 = off."
        ),
    )
    submit_parser.add_argument(
        "--kernel", default=None, metavar="SPEC",
        help=(
            "Round kernel (repro.batch.kernels spec) for this sweep's "
            "cells, overriding the daemon's --kernel default."
        ),
    )
    submit_parser.add_argument(
        "--follow",
        action="store_true",
        help="Tail the sweep's event stream until it completes.",
    )

    status_parser = subparsers.add_parser(
        "status", help="Print the status of a sweep on a sweep service."
    )
    status_parser.add_argument("sweep_id", metavar="SWEEP_ID")
    status_parser.add_argument("--url", required=True, metavar="URL")
    status_parser.add_argument(
        "--json",
        action="store_true",
        help="Print the raw status JSON instead of the one-line summary.",
    )

    cancel_parser = subparsers.add_parser(
        "cancel", help="Cancel a running sweep on a sweep service."
    )
    cancel_parser.add_argument("sweep_id", metavar="SWEEP_ID")
    cancel_parser.add_argument("--url", required=True, metavar="URL")

    top_parser = subparsers.add_parser(
        "top",
        help=(
            "Polled status dashboard for a sweep service: sweeps, live "
            "per-shard progress, rounds/sec, cache hits, retries."
        ),
    )
    top_parser.add_argument("--url", required=True, metavar="URL")
    top_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="Refresh interval (default: 2.0).",
    )
    top_parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="Render N frames then exit (default: until Ctrl-C).",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="Render one frame without clearing the screen, then exit.",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help=(
            "Span-trace utilities: export a sweep's span tree as Chrome "
            "trace-event JSON (loadable in Perfetto / chrome://tracing)."
        ),
    )
    trace_parser.add_argument(
        "action", choices=("export",),
        help="'export': convert spans to Chrome trace-event JSON.",
    )
    trace_parser.add_argument(
        "source", metavar="PATH|SWEEP_ID",
        help=(
            "A span-JSONL file written by --spans — or, with --url, the id "
            "of a sweep on that service."
        ),
    )
    trace_parser.add_argument(
        "--url", default=None, metavar="URL",
        help="Fetch the span tree from GET /sweeps/{id}/spans on this service.",
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="Output file (default: SOURCE with a .trace.json suffix).",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    handler = {
        "list-protocols": _cmd_list_protocols,
        "run": _cmd_run,
        "table1": _cmd_table1,
        "scaling": _cmd_scaling,
        "montecarlo": _cmd_montecarlo,
        "crossover": _cmd_crossover,
        "lower-bound": _cmd_lower_bound,
        "ablation": _cmd_ablation,
        "dynamic": _cmd_dynamic,
        "extinction": _cmd_extinction,
        "wave-demo": _cmd_wave_demo,
        "tail": _cmd_tail,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "cancel": _cmd_cancel,
        "top": _cmd_top,
        "trace": _cmd_trace,
    }[args.command]
    return handler(args)


# --------------------------------------------------------------------------- #
# Sub-command handlers
# --------------------------------------------------------------------------- #


def _cmd_list_protocols(args: argparse.Namespace) -> int:
    from repro.core.registry import available_protocols, get_protocol_spec
    from repro.experiments.runner import BASELINE_NAMES

    print("BFW-family protocols (constant-state):")
    for name in available_protocols():
        spec = get_protocol_spec(name)
        print(f"  {name:<24} {spec.description}")
    print("\nBaselines (Table 1):")
    for name in BASELINE_NAMES:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import instantiate_protocol, run_protocol_on
    from repro.experiments.seeds import rng_from
    from repro.graphs.generators import make_graph

    graph_rng = rng_from(args.seed, "cli-graph", args.graph, args.n)
    topology = make_graph(args.graph, args.n, rng=graph_rng)
    params = {}
    if args.beep_probability is not None:
        params["beep_probability"] = args.beep_probability
    protocol = instantiate_protocol(args.protocol, topology, params)
    result = run_protocol_on(
        topology, protocol, rng=args.seed, max_rounds=args.max_rounds
    )
    print(f"protocol:          {result.protocol_name}")
    print(f"graph:             {topology.name} (n={topology.n}, D={topology.diameter()})")
    print(f"converged:         {result.converged}")
    print(f"convergence round: {result.convergence_round}")
    print(f"rounds executed:   {result.rounds_executed}")
    print(f"final leaders:     {result.final_leader_count}")
    return 0 if result.converged else 2


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.io import save_records_csv, save_records_json
    from repro.experiments.tables import generate_table1

    with _progress_reporter_from_args(args) as reporter:
        result = generate_table1(
            num_seeds=args.seeds,
            master_seed=args.master_seed,
            progress=reporter,
            backend=_backend_spec_from_args(args),
            shard_size=_shard_size_from_args(args),
            heartbeat_interval=_heartbeat_interval_from_args(args),
            kernel=_kernel_from_args(args),
        )
    print(result.render())
    if args.save_json:
        save_records_json(result.records, args.save_json)
        print(f"\nraw records written to {args.save_json}")
    if args.save_csv:
        save_records_csv(result.records, args.save_csv)
        print(f"raw records written to {args.save_csv}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments.figures import scaling_experiment

    result = scaling_experiment(
        mode=args.mode,
        family=args.family,
        diameters=args.diameters,
        num_seeds=args.replicas if args.replicas is not None else args.seeds,
        master_seed=args.master_seed,
        backend=_backend_spec_from_args(args),
        shard_size=_shard_size_from_args(args),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    print(result.render())
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.experiments.montecarlo import run_monte_carlo
    from repro.experiments.seeds import DEFAULT_MASTER_SEED

    report = run_monte_carlo(
        protocol=args.protocol,
        graph=args.graph,
        n=args.n,
        replicas=args.replicas,
        master_seed=(
            args.master_seed if args.master_seed is not None else DEFAULT_MASTER_SEED
        ),
        max_rounds=args.max_rounds,
        backend=_backend_spec_from_args(args),
        shard_size=_shard_size_from_args(args),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    print(report.render())
    if args.save_json:
        destination = Path(args.save_json)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(
            json.dumps(report.result.as_dicts(), indent=2), encoding="utf-8"
        )
        print(f"\nper-replica outcomes written to {args.save_json}")
    return 0 if report.convergence_rate == 1.0 else 2


def _cmd_crossover(args: argparse.Namespace) -> int:
    from repro.experiments.figures import crossover_experiment

    result = crossover_experiment(
        diameters=args.diameters,
        num_seeds=args.seeds,
        backend=_backend_spec_from_args(args),
        shard_size=_shard_size_from_args(args),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    print(result.uniform.render())
    print()
    print(result.nonuniform.render())
    print()
    print(result.render())
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    from repro.experiments.figures import lower_bound_experiment

    result = lower_bound_experiment(
        diameters=args.diameters,
        num_seeds=args.seeds,
        backend=_backend_spec_from_args(args),
        shard_size=_shard_size_from_args(args),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    print(result.render())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.figures import ablation_experiment

    result = ablation_experiment(
        diameter=args.diameter,
        num_seeds=args.seeds,
        backend=_backend_spec_from_args(args),
        shard_size=_shard_size_from_args(args),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    print(result.render())
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    from repro.experiments.dynamics import dynamic_experiment
    from repro.experiments.io import save_records_json
    from repro.experiments.seeds import DEFAULT_MASTER_SEED

    with _progress_reporter_from_args(args) as reporter:
        result = dynamic_experiment(
            protocol=args.protocol,
            families=args.families,
            sizes=args.sizes,
            churn_rates=args.churn_rates,
            schedule_kind=args.schedule,
            num_seeds=args.seeds,
            master_seed=(
                args.master_seed
                if args.master_seed is not None
                else DEFAULT_MASTER_SEED
            ),
            max_rounds=args.max_rounds,
            progress=reporter,
            backend=_backend_spec_from_args(args),
            shard_size=_shard_size_from_args(args),
            heartbeat_interval=_heartbeat_interval_from_args(args),
            kernel=_kernel_from_args(args),
        )
    print(result.render())
    if args.save_json:
        save_records_json(result.records, args.save_json)
        print(f"\nraw records written to {args.save_json}")
    return 0


def _cmd_extinction(args: argparse.Namespace) -> int:
    from repro.experiments.extinction import leader_extinction_experiment
    from repro.experiments.io import save_records_json
    from repro.experiments.seeds import DEFAULT_MASTER_SEED

    with _progress_reporter_from_args(args) as reporter:
        result = leader_extinction_experiment(
            protocol=args.protocol,
            families=args.families,
            sizes=args.sizes,
            churn_rates=args.churn_rates,
            schedule_kind=args.schedule,
            num_seeds=args.seeds,
            master_seed=(
                args.master_seed
                if args.master_seed is not None
                else DEFAULT_MASTER_SEED
            ),
            max_rounds=args.max_rounds,
            progress=reporter,
            backend=_backend_spec_from_args(args),
            shard_size=_shard_size_from_args(args),
            heartbeat_interval=_heartbeat_interval_from_args(args),
            kernel=_kernel_from_args(args),
        )
    print(result.render())
    if args.save_json:
        save_records_json(result.records, args.save_json)
        print(f"\nraw records written to {args.save_json}")
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    if args.url is not None:
        from repro.errors import ServiceError
        from repro.service.client import tail_service

        try:
            tail_service(
                args.url,
                args.path,
                follow=args.follow,
                interval=args.interval,
            )
        except ServiceError as error:
            print(str(error), file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            pass
        return 0
    from repro.telemetry.progress import tail_telemetry

    try:
        tail_telemetry(args.path, follow=args.follow, interval=args.interval)
    except FileNotFoundError:
        print(f"no telemetry stream at {args.path}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    return 0


# --------------------------------------------------------------------------- #
# Sweep-service verbs
# --------------------------------------------------------------------------- #


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.faults import ServiceFaultInjector
    from repro.service.server import SweepService

    service = SweepService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_retries=args.max_retries,
        shard_timeout=args.shard_timeout,
        cache_dir=args.cache_dir,
        default_shard_size=_shard_size_from_args(args),
        fault_injector=ServiceFaultInjector.from_env(),
        heartbeat_interval=_heartbeat_interval_from_args(args),
        kernel=_kernel_from_args(args),
    )
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    # Signal handlers only install from the main thread; embedded callers
    # (tests driving main() from a worker thread) fall back to Ctrl-C.
    try:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    except ValueError:
        pass
    service.start()
    print(f"sweep service listening on {service.url}", flush=True)
    print(
        f"  workers={service.workers} max_retries={service.max_retries} "
        f"cache={service.cache.directory}",
        flush=True,
    )
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    print("draining: waiting for running sweeps, refusing new ones", flush=True)
    service.stop(drain=True)
    print("sweep service stopped", flush=True)
    return 0


def _submit_cell_from_args(args: argparse.Namespace):
    """The exact cell ``repro montecarlo`` would run for these arguments.

    Seed derivation matches :func:`repro.experiments.montecarlo.run_monte_carlo`,
    so a submitted sweep's records are byte-identical to the local command.
    """
    from repro.exec import ExecutionCell
    from repro.experiments.config import GraphSpec, ProtocolSpecConfig
    from repro.experiments.seeds import DEFAULT_MASTER_SEED, trial_seeds

    master_seed = (
        args.master_seed if args.master_seed is not None else DEFAULT_MASTER_SEED
    )
    return ExecutionCell(
        protocol=ProtocolSpecConfig(name=args.protocol),
        graph=GraphSpec(family=args.graph, n=args.n),
        seeds=trial_seeds(
            master_seed,
            f"montecarlo/{args.protocol}/{args.graph}/{args.n}",
            args.replicas,
        ),
        max_rounds=args.max_rounds,
        graph_rng_key=(master_seed, "montecarlo-graph", args.graph, args.n),
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient, tail_service

    client = ServiceClient(args.url)
    try:
        receipt = client.submit(
            [_submit_cell_from_args(args)],
            shard_size=_shard_size_from_args(args),
            heartbeat_interval=_heartbeat_interval_from_args(args),
            kernel=_kernel_from_args(args),
        )
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    sweep_id = receipt["id"]
    print(f"submitted sweep {sweep_id}: {receipt['cells']} cell(s), "
          f"{receipt['shards']} shard(s), {receipt['cached_cells']} cached")
    print(f"  repro status {sweep_id} --url {client.url}")
    print(f"  repro tail {sweep_id} --url {client.url} --follow")
    if args.follow:
        tail_service(client.url, str(sweep_id), follow=True)
        return _print_status(client, str(sweep_id), as_json=False)
    return 0


def _print_status(client, sweep_id: str, as_json: bool) -> int:
    import json

    status = client.status(sweep_id)
    if as_json:
        print(json.dumps(status, indent=2, default=str))
    else:
        line = (
            f"sweep {status['id']}: {status['state']} — "
            f"{status['completed_cells']}/{status['cells']} cells, "
            f"{status['completed_shards']}/{status['shards']} shards, "
            f"{status['retries']} retries, {status['cached_cells']} cached"
        )
        if status.get("error"):
            line += f" ({status['error']})"
        print(line)
    return 0 if status["state"] in ("running", "done") else 2


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    try:
        return _print_status(ServiceClient(args.url), args.sweep_id, args.json)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.service.client import ServiceClient

    try:
        status = ServiceClient(args.url).cancel(args.sweep_id)
    except ServiceError as error:
        print(str(error), file=sys.stderr)
        return 1
    print(f"sweep {status['id']}: {status['state']}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.dashboard import top

    iterations = args.iterations
    clear = True
    if args.once:
        iterations = 1
        clear = False
    try:
        return top(
            args.url, interval=args.interval, iterations=iterations, clear=clear
        )
    except KeyboardInterrupt:
        return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ServiceError
    from repro.telemetry.spans import (
        load_spans_jsonl,
        spans_from_records,
        write_chrome_trace,
    )

    if args.url is not None:
        from repro.service.client import ServiceClient

        try:
            payload = ServiceClient(args.url).spans(args.source)
        except ServiceError as error:
            print(str(error), file=sys.stderr)
            return 1
        spans = spans_from_records(payload.get("spans") or ())
        default_out = f"{args.source}.trace.json"
    else:
        try:
            spans = load_spans_jsonl(args.source)
        except FileNotFoundError:
            print(f"no span file at {args.source}", file=sys.stderr)
            return 1
        default_out = f"{args.source.rsplit('.jsonl', 1)[0]}.trace.json"
    if not spans:
        print("no spans to export", file=sys.stderr)
        return 1
    out = args.out if args.out is not None else default_out
    write_chrome_trace(spans, out)
    print(
        f"wrote {len(spans)} spans to {out} "
        f"(load it at https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _cmd_wave_demo(args: argparse.Namespace) -> int:
    from repro.beeping.engine import run_bfw
    from repro.graphs.generators import path_graph
    from repro.viz.spacetime import leader_count_timeline, spacetime_diagram

    topology = path_graph(args.n)
    result = run_bfw(
        topology, rng=args.seed, max_rounds=args.max_rounds, record_trace=True
    )
    assert result.trace is not None
    print(spacetime_diagram(result.trace, max_rounds=args.max_rounds))
    print()
    print(leader_count_timeline(result.trace))
    if result.converged:
        print(f"\nconverged in round {result.convergence_round}")
    else:
        print(
            f"\nnot converged within {result.rounds_executed} rounds "
            f"({result.final_leader_count} leaders remain) — increase --max-rounds"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
