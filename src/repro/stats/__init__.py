"""Statistics helpers: summaries, scaling fits, bootstrap intervals."""

from repro.stats.bootstrap import (
    BootstrapInterval,
    bootstrap_interval,
    bootstrap_median,
    bootstrap_ratio_of_means,
)
from repro.stats.regression import (
    ModelComparison,
    PowerLawFit,
    compare_scaling_models,
    fit_power_law,
)
from repro.stats.summary import (
    Summary,
    exceedance_probability,
    geometric_mean,
    mean_confidence_interval,
    summarize_sample,
)

__all__ = [
    "BootstrapInterval",
    "ModelComparison",
    "PowerLawFit",
    "Summary",
    "bootstrap_interval",
    "bootstrap_median",
    "bootstrap_ratio_of_means",
    "compare_scaling_models",
    "exceedance_probability",
    "fit_power_law",
    "geometric_mean",
    "mean_confidence_interval",
    "summarize_sample",
]
