"""Summary statistics for experiment results.

The harness reports convergence times over many seeds; these helpers compute
the usual location/spread summaries, normal-approximation and bootstrap
confidence intervals, and empirical tail probabilities (used when checking
"with high probability" statements empirically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Location and spread of a sample.

    Attributes
    ----------
    count:
        Sample size.
    mean, std, minimum, maximum, median:
        The usual summary statistics.
    q25, q75, q95:
        Selected quantiles.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    q25: float
    q75: float
    q95: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view for serialisation and table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "q25": self.q25,
            "q75": self.q75,
            "q95": self.q95,
        }


def summarize_sample(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
        q25=float(np.quantile(array, 0.25)),
        q75=float(np.quantile(array, 0.75)),
        q95=float(np.quantile(array, 0.95)),
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` using the normal approximation.

    For the modest sample sizes used by the benchmarks (tens of seeds) the
    normal approximation is adequate; :mod:`repro.stats.bootstrap` offers a
    distribution-free alternative.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1); got {confidence}")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot build an interval from an empty sample")
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean, mean
    from scipy import stats as scipy_stats

    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    half_width = z * float(array.std(ddof=1)) / np.sqrt(array.size)
    return mean, mean - half_width, mean + half_width


def exceedance_probability(values: Sequence[float], threshold: float) -> float:
    """Empirical ``P(X > threshold)`` — used to check w.h.p. statements."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot estimate a probability from an empty sample")
    return float(np.mean(array > threshold))


def geometric_mean(values: Sequence[float]) -> float:
    """The geometric mean of a positive sample (used for speedup ratios)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot average an empty sample")
    if (array <= 0).any():
        raise ConfigurationError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))
