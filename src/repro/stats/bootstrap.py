"""Bootstrap confidence intervals for experiment statistics.

Convergence-time distributions are skewed (they have heavy right tails on
high-diameter graphs), so the harness prefers percentile-bootstrap intervals
for medians and quantiles over normal approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap interval for a statistic.

    Attributes
    ----------
    estimate:
        The statistic computed on the original sample.
    low, high:
        Bounds of the percentile interval.
    confidence:
        The nominal coverage.
    num_resamples:
        Number of bootstrap resamples used.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    num_resamples: int

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.high - self.low


def bootstrap_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapInterval:
    """Percentile bootstrap interval for an arbitrary statistic.

    Parameters
    ----------
    values:
        The sample.
    statistic:
        Function mapping a 1-D array to a scalar (default: the mean).
    confidence:
        Nominal coverage of the interval.
    num_resamples:
        Number of bootstrap resamples.
    rng:
        Seed or generator.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1); got {confidence}")
    if num_resamples < 1:
        raise ConfigurationError(f"num_resamples must be >= 1; got {num_resamples}")

    generator = as_rng(rng)
    estimate = float(statistic(array))
    indices = generator.integers(0, array.size, size=(num_resamples, array.size))
    resample_statistics = np.array(
        [float(statistic(array[row])) for row in indices]
    )
    alpha = (1.0 - confidence) / 2.0
    low = float(np.quantile(resample_statistics, alpha))
    high = float(np.quantile(resample_statistics, 1.0 - alpha))
    return BootstrapInterval(
        estimate=estimate,
        low=low,
        high=high,
        confidence=confidence,
        num_resamples=num_resamples,
    )


def bootstrap_median(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapInterval:
    """Percentile bootstrap interval for the median."""
    return bootstrap_interval(
        values,
        statistic=np.median,
        confidence=confidence,
        num_resamples=num_resamples,
        rng=rng,
    )


def bootstrap_ratio_of_means(
    numerator: Sequence[float],
    denominator: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapInterval:
    """Bootstrap interval for ``mean(numerator) / mean(denominator)``.

    Used for speedup factors (e.g. uniform vs non-uniform BFW at the same
    diameter), where the two samples are independent.
    """
    top = np.asarray(list(numerator), dtype=float)
    bottom = np.asarray(list(denominator), dtype=float)
    if top.size == 0 or bottom.size == 0:
        raise ConfigurationError("both samples must be non-empty")
    if bottom.mean() == 0:
        raise ConfigurationError("denominator sample has zero mean")
    generator = as_rng(rng)
    estimate = float(top.mean() / bottom.mean())
    ratios = np.empty(num_resamples)
    for i in range(num_resamples):
        top_resample = top[generator.integers(0, top.size, size=top.size)]
        bottom_resample = bottom[
            generator.integers(0, bottom.size, size=bottom.size)
        ]
        ratios[i] = top_resample.mean() / max(bottom_resample.mean(), 1e-12)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=estimate,
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
        num_resamples=num_resamples,
    )
