"""Scaling-law estimation: log–log fits and model comparison.

Theorems 2 and 3 predict convergence times of order ``D² log n`` and
``D log n``.  The scaling experiments (E2, E3) measure convergence times over
a range of diameters and fit

* a power law ``T ≈ c · D^α`` (on graph families where ``n`` and ``D`` grow
  together, ``log n`` contributes a slowly varying factor that the exponent
  absorbs into a small bias), and
* explicit least-squares fits of the two candidate models ``c · D² log n``
  and ``c · D log n``, whose residuals identify which regime a protocol
  variant is operating in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log–log linear regression ``y ≈ c · x^exponent``.

    Attributes
    ----------
    exponent:
        The fitted exponent (slope in log–log space).
    prefactor:
        The fitted constant ``c``.
    r_squared:
        Coefficient of determination of the log–log fit.
    stderr:
        Standard error of the exponent estimate.
    """

    exponent: float
    prefactor: float
    r_squared: float
    stderr: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.prefactor * x**self.exponent


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^α`` by least squares in log–log space."""
    x_array = np.asarray(list(x), dtype=float)
    y_array = np.asarray(list(y), dtype=float)
    if x_array.size != y_array.size:
        raise ConfigurationError("x and y must have the same length")
    if x_array.size < 2:
        raise ConfigurationError("need at least two points to fit a power law")
    if (x_array <= 0).any() or (y_array <= 0).any():
        raise ConfigurationError("power-law fits require strictly positive data")

    log_x = np.log(x_array)
    log_y = np.log(y_array)
    design = np.vstack([log_x, np.ones_like(log_x)]).T
    coefficients, residuals, _, _ = np.linalg.lstsq(design, log_y, rcond=None)
    slope, intercept = float(coefficients[0]), float(coefficients[1])

    predictions = design @ coefficients
    total_variance = float(((log_y - log_y.mean()) ** 2).sum())
    residual_variance = float(((log_y - predictions) ** 2).sum())
    r_squared = 1.0 - residual_variance / total_variance if total_variance > 0 else 1.0

    degrees = max(1, log_x.size - 2)
    x_spread = float(((log_x - log_x.mean()) ** 2).sum())
    stderr = (
        float(np.sqrt(residual_variance / degrees / x_spread)) if x_spread > 0 else 0.0
    )

    return PowerLawFit(
        exponent=slope,
        prefactor=float(np.exp(intercept)),
        r_squared=r_squared,
        stderr=stderr,
    )


@dataclass(frozen=True)
class ModelComparison:
    """Comparison of candidate scaling models for measured convergence times.

    Attributes
    ----------
    relative_errors:
        For each model name, the mean relative error of the single-constant
        least-squares fit ``T ≈ c · model(D, n)``.
    best_model:
        Name of the model with the smallest mean relative error.
    constants:
        The fitted constant ``c`` per model.
    """

    relative_errors: Dict[str, float]
    best_model: str
    constants: Dict[str, float]


def compare_scaling_models(
    diameters: Sequence[float],
    sizes: Sequence[float],
    times: Sequence[float],
) -> ModelComparison:
    """Fit the paper's candidate models and report which explains the data best.

    The candidate models are ``D² log n`` (Theorem 2), ``D log n``
    (Theorem 3), ``D²`` and ``D`` (diameter-only variants, useful on families
    where ``n`` is constant), each with a single fitted multiplicative
    constant.
    """
    d = np.asarray(list(diameters), dtype=float)
    n = np.asarray(list(sizes), dtype=float)
    t = np.asarray(list(times), dtype=float)
    if not (d.size == n.size == t.size):
        raise ConfigurationError("diameters, sizes and times must have equal length")
    if d.size < 2:
        raise ConfigurationError("need at least two measurements to compare models")

    models: Dict[str, np.ndarray] = {
        "D^2 log n": d * d * np.log(np.maximum(n, 2.0)),
        "D log n": d * np.log(np.maximum(n, 2.0)),
        "D^2": d * d,
        "D": d,
    }
    relative_errors: Dict[str, float] = {}
    constants: Dict[str, float] = {}
    for name, feature in models.items():
        constant = float((feature @ t) / (feature @ feature))
        predictions = constant * feature
        relative_errors[name] = float(np.mean(np.abs(predictions - t) / t))
        constants[name] = constant
    best_model = min(relative_errors, key=relative_errors.get)
    return ModelComparison(
        relative_errors=relative_errors,
        best_model=best_model,
        constants=constants,
    )
