"""Fused round kernels: leave the Python interpreter off the hot loop.

The interpreted round loop in :class:`~repro.batch.engine.BatchedEngine`
dispatches ~10 numpy array operations per round (gathers, a matmul, a
``where``, the leader reduction, retire bookkeeping).  On small graphs the
Python dispatch overhead dominates; on million-node graphs every temporary
is a full ``(R, n)`` array.  This module fuses **one whole RNG prefetch
block** — up to :func:`~repro.batch.streams.prefetch_depth` rounds of the
beep→hear→transition→retire loop — into a single native call:

* :func:`fused_round_block` is written in nopython-compatible Python
  (explicit loops over the ``(R, n)`` state array and the CSR adjacency)
  and is compiled with ``numba.njit(cache=True)`` when numba is importable.
  It consumes the *same prefetched uniforms in the same order* as the
  interpreted loop, so records stay byte-identical — the kernel parity
  suite pins ``kernel="numba"`` vs ``kernel="numpy"`` vs the sequential
  reference across every registered protocol.
* ``kernel="python"`` runs the identical function uncompiled, so the
  kernel's *logic* is parity-testable (and covered by the tier-1 suite)
  on machines without numba; only the speed differs.
* :func:`run_xp_rounds` is an array-namespace-agnostic variant of the
  interpreted numpy path (``array_api_compat``-style ``xp`` dispatch):
  the same vectorized round ops run on any NumPy-like namespace (NumPy,
  CuPy, or an ``array_api_compat`` wrapper).  Uniforms are still drawn
  from the host-side per-replica generators, so ``kernel="xp:numpy"`` is
  byte-identical to the interpreted loop; on device namespaces the
  results are *gated on distributional equivalence* (recorded as the
  ``parity`` gate in :attr:`KernelPolicy` and the run metrics) because a
  future device-resident RNG cannot preserve bit-level stream parity.

:class:`KernelPolicy` is the seam :class:`~repro.batch.engine.BatchedEngine`
resolves a ``kernel=`` spec through: ``"auto"`` picks numba when it is
importable and falls back to the interpreted numpy path whenever a run
needs per-round Python callbacks (observers, topology schedules, or an
ambient heartbeat emitter) — without breaking the RNG stream, since both
paths consume identical uniform blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_SPECS",
    "KernelPolicy",
    "fused_round_block",
    "kernel_compile_seconds",
    "numba_available",
    "resolve_kernel",
    "resolve_namespace",
    "run_xp_rounds",
    "validate_kernel",
]

#: The non-namespace kernel spec values ``validate_kernel`` accepts
#: (``"xp:<namespace>"`` strings are accepted on top of these).
KERNEL_SPECS = ("auto", "numba", "numpy", "python")

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the tier-1 environment has no numba
    _numba = None


def numba_available() -> bool:
    """Whether the numba JIT compiler is importable in this process."""
    return _numba is not None


def validate_kernel(kernel: Optional[str]) -> Optional[str]:
    """Normalise and validate a kernel spec once, at construction time.

    ``None`` passes through (the caller's default applies); otherwise the
    spec must be one of :data:`KERNEL_SPECS` or ``"xp:<namespace>"``.
    Availability is *not* checked here — a cell stamped ``kernel="numba"``
    must validate on a submitting client that has no numba, because the
    worker that executes it may.  :func:`resolve_kernel` (called in the
    executing process) enforces importability.
    """
    if kernel is None:
        return None
    if not isinstance(kernel, str):
        raise ConfigurationError(
            f"kernel must be a string or None; got {type(kernel).__name__}"
        )
    text = kernel.strip().lower()
    if text in KERNEL_SPECS:
        return text
    if text.startswith("xp:") and text[3:].strip():
        return "xp:" + text[3:].strip()
    raise ConfigurationError(
        f"unknown kernel {kernel!r}; expected one of "
        f"{', '.join(repr(s) for s in KERNEL_SPECS)} or 'xp:<namespace>' "
        f"(e.g. 'xp:numpy', 'xp:cupy')"
    )


@dataclass(frozen=True)
class KernelPolicy:
    """A resolved kernel choice for one :class:`BatchedEngine` instance.

    Attributes
    ----------
    requested:
        The spec the caller asked for (``"auto"`` when unspecified).
    resolved:
        What the spec resolved to in this process: ``"numba"``,
        ``"python"``, ``"numpy"``, or ``"xp:<namespace>"``.  Runs that
        need per-round Python callbacks still fall back to ``"numpy"``
        per run (see :meth:`fallback_reason`).
    reason:
        One line explaining the resolution (what ``auto`` saw).
    parity:
        The equivalence gate the resolved kernel is held to:
        ``"bitwise"`` for every host-RNG path, ``"distributional"`` for
        non-NumPy ``xp`` namespaces (device execution may not preserve
        bit-level float semantics; records are validated statistically).
    """

    requested: str
    resolved: str
    reason: str
    parity: str = "bitwise"

    @property
    def wants_fused(self) -> bool:
        """True when the resolved kernel is the fused scalar block kernel."""
        return self.resolved in ("numba", "python")

    @property
    def xp_namespace(self) -> Optional[str]:
        """The array-namespace name for ``"xp:..."`` kernels, else None."""
        if self.resolved.startswith("xp:"):
            return self.resolved[3:]
        return None

    def fallback_reason(
        self,
        observers: bool = False,
        schedule: bool = False,
        heartbeat: bool = False,
        needs_dense: bool = False,
    ) -> Optional[str]:
        """Why this run must use the interpreted numpy path, or ``None``.

        Fused and ``xp`` kernels execute a whole RNG block per native
        call, so anything that needs a per-round Python callback —
        observers, per-round topology swaps, heartbeat polling — sends
        the run down the interpreted path.  Both paths consume identical
        uniform blocks, so the fallback never perturbs the RNG stream.
        """
        if self.resolved == "numpy":
            return None
        if observers:
            return "observers need per-round Python callbacks"
        if schedule:
            return "topology schedules swap the adjacency every round"
        if heartbeat:
            return "an ambient heartbeat emitter polls every round"
        if needs_dense and self.xp_namespace is not None:
            return "xp kernels need a dense-representable adjacency"
        return None


def resolve_kernel(kernel: Optional[str]) -> KernelPolicy:
    """Resolve a kernel spec in the executing process.

    ``"auto"`` (and ``None``) picks numba when importable and the
    interpreted numpy path otherwise; ``"numba"`` demands numba and
    raises :class:`~repro.errors.ConfigurationError` when it is absent
    (an explicit request must not silently degrade); ``"python"`` runs
    the fused kernel uncompiled; ``"xp:<name>"`` resolves the array
    namespace eagerly so a missing backend fails at construction, not
    mid-sweep.
    """
    spec = validate_kernel(kernel) or "auto"
    if spec == "auto":
        if numba_available():
            return KernelPolicy(
                requested=spec,
                resolved="numba",
                reason="auto: numba importable, fused kernel compiled per worker",
            )
        return KernelPolicy(
            requested=spec,
            resolved="numpy",
            reason="auto: numba not importable, interpreted numpy path",
        )
    if spec == "numba":
        if not numba_available():
            raise ConfigurationError(
                "kernel='numba' was requested but numba is not importable "
                "in this process; install the 'kernels' extra "
                "(pip install repro[kernels]) or use kernel='auto'"
            )
        return KernelPolicy(
            requested=spec, resolved="numba", reason="explicit numba request"
        )
    if spec == "python":
        return KernelPolicy(
            requested=spec,
            resolved="python",
            reason="explicit request: fused kernel, uncompiled",
        )
    if spec == "numpy":
        return KernelPolicy(
            requested=spec,
            resolved="numpy",
            reason="explicit request: interpreted numpy path",
        )
    namespace = spec[3:]
    resolve_namespace(namespace)  # fail fast on missing backends
    return KernelPolicy(
        requested=spec,
        resolved=spec,
        reason=f"explicit request: array-namespace path on {namespace!r}",
        parity="bitwise" if namespace == "numpy" else "distributional",
    )


def resolve_namespace(name: str):
    """Import the NumPy-like array namespace behind an ``"xp:<name>"`` spec.

    ``"numpy"`` always resolves; anything else (``"cupy"``, an
    ``array_api_compat``-wrapped namespace published under its own module
    name) is imported on demand and must expose the NumPy-style API the
    round loop uses (``asarray``/``where``/``matmul`` and integer fancy
    indexing).  Missing backends raise
    :class:`~repro.errors.ConfigurationError` naming the namespace.
    """
    name = name.strip().lower()
    if name == "numpy":
        return np
    import importlib

    try:
        return importlib.import_module(name)
    except ImportError:
        raise ConfigurationError(
            f"array namespace {name!r} for kernel='xp:{name}' is not "
            f"importable in this process"
        ) from None


def as_numpy(array) -> np.ndarray:
    """Copy an ``xp`` array back to host numpy, whatever the namespace."""
    if isinstance(array, np.ndarray):
        return array
    get = getattr(array, "get", None)  # cupy
    if callable(get):
        return np.asarray(get())
    cpu = getattr(array, "cpu", None)  # torch-style
    if callable(cpu):
        return np.asarray(cpu())
    return np.asarray(array)


# --------------------------------------------------------------------- #
# The fused scalar kernel (numba-compilable)
# --------------------------------------------------------------------- #


def _fused_round_block(
    states,  # (R, n) intp, mutated in place
    active_mask,  # (R,) bool, mutated in place
    counts,  # (R,) int64, mutated in place
    convergence,  # (R,) int64, mutated in place
    rounds_executed,  # (R,) int64, mutated in place
    indptr,  # CSR row pointers of the adjacency
    indices,  # CSR column indices of the adjacency
    is_beeping,  # (S,) bool
    is_leader,  # (S,) bool
    succ_primary,  # (S, 2) intp
    succ_secondary,  # (S, 2) intp
    primary_probability,  # (S, 2) float64
    rng_block,  # (depth, R, n) float64 prefetched uniforms
    start_round,  # rounds already executed before this block
    budget,  # rounds to execute from this block (<= depth)
    stop_at_single_leader,  # bool
    record_counts,  # bool: write per-round leader counts into count_block
    count_block,  # (depth, R) int64 out, or (0, R) when record_counts off
):
    """Execute up to ``budget`` rounds of the batch loop over one RNG block.

    Semantically identical to ``budget`` iterations of the interpreted
    loop in :meth:`BatchedEngine.run` with no observers, schedule or
    heartbeat: per active replica, compute the beep mask, OR it over the
    CSR neighbourhoods (the same truth value the matmul path computes),
    gather the successor tables by (state, heard), resolve the
    probabilistic transition against ``rng_block[k, r, u]`` — the exact
    uniform the interpreted loop would consume — and apply the
    single-leader retire / convergence-streak bookkeeping in place.
    Returns the number of rounds consumed (less than ``budget`` only
    when every replica retired inside the block).
    """
    num_replicas, n = states.shape
    beeping = np.empty(n, np.bool_)
    consumed = 0
    for k in range(budget):
        any_active = False
        for r in range(num_replicas):
            if active_mask[r]:
                any_active = True
                break
        if not any_active:
            break
        round_index = start_round + k + 1
        for r in range(num_replicas):
            if not active_mask[r]:
                continue
            row = states[r]
            uniforms = rng_block[k, r]
            any_beep = False
            for u in range(n):
                b = is_beeping[row[u]]
                beeping[u] = b
                if b:
                    any_beep = True
            leader_count = 0
            for u in range(n):
                heard = 0
                if any_beep:
                    if beeping[u]:
                        heard = 1
                    else:
                        for j in range(indptr[u], indptr[u + 1]):
                            if beeping[indices[j]]:
                                heard = 1
                                break
                state = row[u]
                if uniforms[u] < primary_probability[state, heard]:
                    new_state = succ_primary[state, heard]
                else:
                    new_state = succ_secondary[state, heard]
                row[u] = new_state
                if is_leader[new_state]:
                    leader_count += 1
            if stop_at_single_leader:
                hit = leader_count == 1
                if record_counts or hit:
                    counts[r] = leader_count
                if hit:
                    convergence[r] = round_index
                    rounds_executed[r] = round_index
                    active_mask[r] = False
            else:
                counts[r] = leader_count
                if leader_count == 1:
                    if convergence[r] == -1:
                        convergence[r] = round_index
                else:
                    convergence[r] = -1
        if record_counts:
            # Retired rows keep their frozen counts — the row snapshot
            # matches the interpreted loop's counts.copy() per round.
            for r in range(num_replicas):
                count_block[k, r] = counts[r]
        consumed += 1
    return consumed


#: The uncompiled fused kernel (``kernel="python"``): the same function
#: object numba compiles, so its logic is testable without numba.
fused_round_block = _fused_round_block

_COMPILED_KERNEL = None
_COMPILE_SECONDS: Optional[float] = None


def kernel_compile_seconds() -> Optional[float]:
    """Wall seconds the numba kernel took to compile in this process.

    ``None`` until the first ``kernel="numba"`` run compiles it (workers
    compile once per process; ``cache=True`` makes later processes load
    the on-disk artifact, so this also measures the cache-hit cost).
    """
    return _COMPILE_SECONDS


def compiled_fused_kernel():
    """The ``njit``-compiled fused kernel, compiling on first use.

    Returns ``(kernel, compile_seconds)``.  Compilation happens at most
    once per process and is timed through a warm-up call on a minimal
    batch, so engines can report the compile cost via the metrics
    registry without paying it on the hot path.
    """
    global _COMPILED_KERNEL, _COMPILE_SECONDS
    if _COMPILED_KERNEL is not None:
        return _COMPILED_KERNEL, _COMPILE_SECONDS
    if _numba is None:  # pragma: no cover - guarded by resolve_kernel
        raise ConfigurationError(
            "numba is not importable; cannot compile the fused kernel"
        )
    started = time.perf_counter()
    kernel = _numba.njit(cache=True)(_fused_round_block)
    # Warm up on a one-node, one-replica, already-retired batch: triggers
    # (or loads) the compilation for the exact argument types the engine
    # passes, without consuming any randomness.
    kernel(
        np.zeros((1, 1), dtype=np.intp),
        np.zeros(1, dtype=np.bool_),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.zeros(1, dtype=np.int64),
        np.zeros(2, dtype=np.int32),
        np.zeros(0, dtype=np.int32),
        np.zeros(1, dtype=np.bool_),
        np.zeros(1, dtype=np.bool_),
        np.zeros((1, 2), dtype=np.intp),
        np.zeros((1, 2), dtype=np.intp),
        np.zeros((1, 2), dtype=np.float64),
        np.zeros((1, 1, 1), dtype=np.float64),
        0,
        1,
        True,
        False,
        np.zeros((0, 1), dtype=np.int64),
    )
    _COMPILE_SECONDS = time.perf_counter() - started
    _COMPILED_KERNEL = kernel
    return _COMPILED_KERNEL, _COMPILE_SECONDS


# --------------------------------------------------------------------- #
# The array-namespace (xp) variant of the interpreted path
# --------------------------------------------------------------------- #


def run_xp_rounds(
    xp,
    states: np.ndarray,
    active_mask: np.ndarray,
    counts: np.ndarray,
    convergence: np.ndarray,
    rounds_executed: np.ndarray,
    dense: np.ndarray,
    beep_f32: np.ndarray,
    is_leader: np.ndarray,
    succ_primary: np.ndarray,
    succ_secondary: np.ndarray,
    primary_probability: np.ndarray,
    fill_blocks: Callable[[np.ndarray, np.ndarray], None],
    depth: int,
    max_rounds: int,
    stop_at_single_leader: bool,
    count_rows: Optional[List[np.ndarray]],
) -> Tuple[np.ndarray, int]:
    """The interpreted round loop, dispatched through an ``xp`` namespace.

    Runs the exact per-round vector ops of :meth:`BatchedEngine.run` —
    beep gather, dense matmul hear-mask, successor gathers, ``where``
    transition — on ``xp`` arrays, while the host keeps the per-replica
    generators (``fill_blocks``) and the retire bookkeeping.  With
    ``xp=numpy`` every operation is the interpreted loop's own, so the
    result is byte-identical; device namespaces are held to the
    distributional gate recorded on the :class:`KernelPolicy`.

    Returns ``(states, rounds_executed_in_loop)`` with ``states`` back on
    the host as the engine's intp batch array.
    """
    num_replicas, n = states.shape
    dense_xp = xp.asarray(dense)
    beep_xp = xp.asarray(beep_f32)
    leader_xp = xp.asarray(is_leader)
    succ_primary_xp = xp.asarray(succ_primary)
    succ_secondary_xp = xp.asarray(succ_secondary)
    probability_xp = xp.asarray(primary_probability)
    states_xp = xp.asarray(states)

    rng_buffer = np.empty((depth, num_replicas, n), dtype=np.float64)
    rng_position = depth
    active = np.flatnonzero(active_mask)
    round_index = 0
    while round_index < max_rounds and active.size:
        round_index += 1
        full = active.size == num_replicas
        sub = states_xp if full else states_xp[xp.asarray(active)]
        beeping = beep_xp[sub]
        if bool(as_numpy(beeping.any())):
            heard = (beeping + xp.matmul(beeping, dense_xp)) > 0
        else:
            heard = beeping > 0
        heard_index = heard.astype(sub.dtype)

        primary = succ_primary_xp[sub, heard_index]
        secondary = succ_secondary_xp[sub, heard_index]
        probability = probability_xp[sub, heard_index]
        if rng_position == depth:
            fill_blocks(active, rng_buffer)
            rng_position = 0
        uniforms_host = (
            rng_buffer[rng_position]
            if full
            else rng_buffer[rng_position, active]
        )
        rng_position += 1
        uniforms = xp.asarray(uniforms_host)
        new_states = xp.where(uniforms < probability, primary, secondary)
        if full:
            states_xp = new_states
        else:
            states_xp[xp.asarray(active)] = new_states

        active_counts = as_numpy(leader_xp[new_states].sum(axis=1)).astype(
            np.int64
        )
        hit = active_counts == 1
        if stop_at_single_leader:
            if count_rows is not None:
                counts[active] = active_counts
                count_rows.append(counts.copy())
            retire = hit
        else:
            counts[active] = active_counts
            if count_rows is not None:
                count_rows.append(counts.copy())
            previous = convergence[active]
            convergence[active] = np.where(
                hit, np.where(previous == -1, round_index, previous), -1
            )
            retire = np.zeros(active.size, dtype=bool)
        if retire.any():
            retired = active[retire]
            convergence[retired] = np.where(hit[retire], round_index, -1)
            counts[retired] = active_counts[retire]
            rounds_executed[retired] = round_index
            active_mask[retired] = False
            active = np.flatnonzero(active_mask)

    return as_numpy(states_xp).astype(np.intp, copy=False), round_index
