"""Batched Monte-Carlo engine: all replicas of a sweep in one state array.

The subsystem has four layers:

* :mod:`repro.batch.streams` — per-replica random streams that keep every
  replica bit-for-bit identical to its standalone run;
* :mod:`repro.batch.engine` — :class:`BatchedEngine`, which advances the
  ``(R, n)`` batch state of a constant-state protocol and retires converged
  replicas in place;
* :mod:`repro.batch.memory` — :class:`BatchedMemoryEngine`, the same idea
  for the Table-1 memory baselines (identifier bits, knockout flags and
  epoch coins as ``(R, n)`` arrays, replica-for-replica identical to
  :class:`~repro.beeping.simulator.MemorySimulator`);
* :mod:`repro.batch.results` — :class:`BatchResult`, flat per-replica
  outcome arrays convertible back to ordinary ``SimulationResult`` objects.

The experiment-facing entry point is
:class:`repro.experiments.montecarlo.MonteCarloRunner`, which routes
constant-state protocols and supported memory baselines through these
engines and everything else through the per-seed loop.
"""

from repro.batch.engine import BatchedEngine, run_batch
from repro.batch.memory import (
    BatchedMemoryEngine,
    MemoryBatchState,
    register_memory_batch_compiler,
    supports_batched_memory,
)
from repro.batch.results import BatchResult
from repro.batch.streams import ReplicaStreams, independent_streams

__all__ = [
    "BatchResult",
    "BatchedEngine",
    "BatchedMemoryEngine",
    "MemoryBatchState",
    "ReplicaStreams",
    "independent_streams",
    "register_memory_batch_compiler",
    "run_batch",
    "supports_batched_memory",
]
