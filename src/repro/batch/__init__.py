"""Batched Monte-Carlo engine: all replicas of a sweep in one state array.

The subsystem has three layers:

* :mod:`repro.batch.streams` — per-replica random streams that keep every
  replica bit-for-bit identical to its standalone run;
* :mod:`repro.batch.engine` — :class:`BatchedEngine`, which advances the
  ``(R, n)`` batch state and retires converged replicas in place;
* :mod:`repro.batch.results` — :class:`BatchResult`, flat per-replica
  outcome arrays convertible back to ordinary ``SimulationResult`` objects.

The experiment-facing entry point is
:class:`repro.experiments.montecarlo.MonteCarloRunner`, which routes
constant-state protocols through this engine and everything else through the
per-seed loop.
"""

from repro.batch.engine import BatchedEngine, run_batch
from repro.batch.results import BatchResult
from repro.batch.streams import ReplicaStreams, independent_streams

__all__ = [
    "BatchResult",
    "BatchedEngine",
    "ReplicaStreams",
    "independent_streams",
    "run_batch",
]
