"""Batched Monte-Carlo engines: all replicas of a sweep in one state array.

The subsystem has seven layers:

* :mod:`repro.batch.streams` — per-replica random streams that keep every
  replica bit-for-bit identical to its standalone run;
* :mod:`repro.batch.engine` — :class:`BatchedEngine`, which advances the
  ``(R, n)`` batch state of a constant-state protocol and retires converged
  replicas in place;
* :mod:`repro.batch.kernels` — pluggable round kernels for that engine:
  the fused loop (numba-compiled when available, plain Python otherwise)
  and the array-namespace path, selected by :class:`KernelPolicy` and all
  byte-identical to the interpreted numpy rounds;
* :mod:`repro.batch.memory` — :class:`BatchedMemoryEngine`, the same idea
  for the Table-1 memory baselines (identifier bits, knockout flags and
  epoch coins as ``(R, n)`` arrays, replica-for-replica identical to
  :class:`~repro.beeping.simulator.MemorySimulator`);
* :mod:`repro.batch.observers` — the :class:`BatchObserver` protocol every
  engine drives (``(R, n)``-array hooks, retire requests), the shipped
  observers (trace recorder, leader/beep-count trackers, single-leader
  stopper, leader-extinction counter) and the picklable
  :class:`ObserverSpec` that lets observed cells run on every backend;
* :mod:`repro.batch.trace` — :class:`BatchTrace`, the ``(T + 1, R, n)``
  state history whose per-replica slices are byte-identical to sequential
  :class:`~repro.beeping.trace.ExecutionTrace` recordings;
* :mod:`repro.batch.results` — :class:`BatchResult`, flat per-replica
  outcome arrays convertible back to ordinary ``SimulationResult`` objects.

The experiment-facing entry point is
:class:`repro.experiments.montecarlo.MonteCarloRunner`, which routes
constant-state protocols and supported memory baselines through these
engines and everything else through the per-seed loop.

This ``__init__`` resolves its exports lazily (PEP 562): the single-run
observer adapters in :mod:`repro.beeping.observers` import
:mod:`repro.batch.observers`, which must not drag the engine modules (and
their ``repro.beeping`` imports) into that import chain.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.batch.engine import BatchedEngine, run_batch
    from repro.batch.kernels import (
        KERNEL_SPECS,
        KernelPolicy,
        fused_round_block,
        kernel_compile_seconds,
        numba_available,
        resolve_kernel,
        validate_kernel,
    )
    from repro.batch.memory import (
        BatchedMemoryEngine,
        MemoryBatchState,
        register_memory_batch_compiler,
        supports_batched_memory,
    )
    from repro.batch.observers import (
        BatchBeepCountTracker,
        BatchLeaderCountTracker,
        BatchObserver,
        BatchRunInfo,
        BatchSingleLeaderStopper,
        BatchStateHistogramTracker,
        BatchTraceRecorder,
        LeaderExtinctionObserver,
        LeaderExtinctionReport,
        ObserverPipeline,
        ObserverSpec,
        build_observer,
        build_observers,
        merge_observations,
        register_observer_kind,
    )
    from repro.batch.results import BatchResult
    from repro.batch.streams import ReplicaStreams, independent_streams
    from repro.batch.trace import BatchTrace

#: Export name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "BatchResult": "repro.batch.results",
    "BatchTrace": "repro.batch.trace",
    "BatchedEngine": "repro.batch.engine",
    "BatchedMemoryEngine": "repro.batch.memory",
    "MemoryBatchState": "repro.batch.memory",
    "ReplicaStreams": "repro.batch.streams",
    "independent_streams": "repro.batch.streams",
    "register_memory_batch_compiler": "repro.batch.memory",
    "run_batch": "repro.batch.engine",
    "supports_batched_memory": "repro.batch.memory",
    "KERNEL_SPECS": "repro.batch.kernels",
    "KernelPolicy": "repro.batch.kernels",
    "fused_round_block": "repro.batch.kernels",
    "kernel_compile_seconds": "repro.batch.kernels",
    "numba_available": "repro.batch.kernels",
    "resolve_kernel": "repro.batch.kernels",
    "validate_kernel": "repro.batch.kernels",
    "BatchBeepCountTracker": "repro.batch.observers",
    "BatchLeaderCountTracker": "repro.batch.observers",
    "BatchObserver": "repro.batch.observers",
    "BatchRunInfo": "repro.batch.observers",
    "BatchSingleLeaderStopper": "repro.batch.observers",
    "BatchStateHistogramTracker": "repro.batch.observers",
    "BatchTraceRecorder": "repro.batch.observers",
    "LeaderExtinctionObserver": "repro.batch.observers",
    "LeaderExtinctionReport": "repro.batch.observers",
    "ObserverPipeline": "repro.batch.observers",
    "ObserverSpec": "repro.batch.observers",
    "build_observer": "repro.batch.observers",
    "build_observers": "repro.batch.observers",
    "merge_observations": "repro.batch.observers",
    "register_observer_kind": "repro.batch.observers",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
