"""The batched observer protocol: one observation layer for every engine.

Every execution layer advances all ``R`` replicas of a cell in ``(R, n)``
arrays, and this module is how callers watch those executions without
modifying the engines: a :class:`BatchObserver` receives array-shaped hooks
once per round, for the whole batch at once.  The same contract is driven by

* :class:`~repro.beeping.engine.VectorizedEngine` (``R = 1``),
* :class:`~repro.batch.engine.BatchedEngine` (constant-state batches),
* :class:`~repro.batch.memory.BatchedMemoryEngine` and
  :class:`~repro.beeping.simulator.MemorySimulator` (memory baselines —
  these pass ``states=None`` and ``beeping=None``, because a memory
  protocol's beeps are intra-round signals rather than state classes),

and the classic single-run :class:`~repro.beeping.observers.Observer`
subclasses are thin ``R = 1`` adapters over the classes below, so the
reference :class:`~repro.beeping.simulator.Simulator` exercises the same
logic snapshot by snapshot.

Hook order per executed round: ``on_round`` (round 0 reports the initial
configuration), then ``should_retire`` exactly once, then ``on_retire`` for
replicas that stopped this round, and finally ``on_finish`` once.  Rows of
retired replicas keep their frozen final configuration, and ``active_mask``
tells an observer which replicas actually executed the reported round.

:class:`ObserverSpec` is the pure-data (picklable) description of an
observer, mirroring :class:`~repro.dynamics.schedules.ScheduleSpec`: cells
carry specs, the executing process builds the observers, and each observer's
:meth:`BatchObserver.result` travels back as a picklable observation — which
is what lets observed cells run byte-identically on the ``sequential``,
``batched`` and ``process:N`` backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.batch.trace import BatchTrace
from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "BatchBeepCountTracker",
    "BatchLeaderCountTracker",
    "BatchObserver",
    "BatchRunInfo",
    "BatchSingleLeaderStopper",
    "BatchStateHistogramTracker",
    "BatchTraceRecorder",
    "LeaderExtinctionObserver",
    "LeaderExtinctionReport",
    "OBSERVER_KINDS",
    "ObserverPipeline",
    "ObserverSpec",
    "build_observer",
    "build_observers",
    "merge_observations",
    "register_observer_kind",
]


@dataclass(frozen=True)
class BatchRunInfo:
    """What every observer learns before the first round.

    Attributes
    ----------
    num_replicas, n:
        Batch width and node count.
    protocol_name, topology_name:
        Provenance metadata.
    beeping_values, leader_values:
        State values classified as beeping / leader (empty for memory
        protocols, whose executions have no integer state classes).
    seeds:
        Per-replica integer seed where known, ``None`` otherwise.
    """

    num_replicas: int
    n: int
    protocol_name: str = ""
    topology_name: str = ""
    beeping_values: Tuple[int, ...] = ()
    leader_values: Tuple[int, ...] = ()
    seeds: Tuple[Optional[int], ...] = ()

    def __post_init__(self) -> None:
        if not self.seeds:
            object.__setattr__(self, "seeds", (None,) * self.num_replicas)


class BatchObserver:
    """Base class for batched observers; every hook is optional.

    Hooks receive read-only views of the engine's arrays — an observer that
    keeps data across rounds must copy it.  ``states`` and ``beeping`` are
    ``None`` when the executing engine runs a memory protocol.
    """

    def on_start(self, info: BatchRunInfo) -> None:
        """Called once before round 0 is reported."""

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        """Called for round 0 (initial configuration) and after every round.

        ``states``/``beeping``/``leaders`` are ``(R, n)`` arrays over the
        *whole* batch (retired rows frozen); ``active_mask`` is the ``(R,)``
        mask of replicas that executed this round.
        """

    def should_retire(
        self,
        round_index: int,
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Return an ``(R,)`` mask of replicas to retire after this round.

        Called exactly once per reported round (stateful stoppers update
        their streaks here).  ``None`` retires nobody.
        """
        return None

    def on_retire(self, replicas: np.ndarray, round_index: int) -> None:
        """Called with the replica indices that stopped in ``round_index``."""

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        """Called once after the run with per-replica executed rounds."""

    def result(self) -> object:
        """The observation this observer produced (picklable).

        Observers attached through an :class:`ObserverSpec` ship this value
        back in the cell outcome; the default is ``None``.
        """
        return None

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> object:
        """Merge per-replica ``R = 1`` results into one batch result.

        The sequential execution backend runs each replica with its own
        observer instance and merges afterwards; the merged value must be
        byte-identical to what one batched observer produces.
        """
        raise ConfigurationError(
            f"{cls.__name__} does not support merging per-replica results"
        )


class ObserverPipeline:
    """Engine-side driver that multiplexes hooks over attached observers.

    Owns the calling convention so every engine drives observers the same
    way: one :meth:`observe_round` per reported round (computing nothing
    when no observer is attached is the engines' job — they simply do not
    build a pipeline), retire masks OR-combined across observers.
    """

    def __init__(
        self, observers: Sequence[BatchObserver], info: BatchRunInfo
    ) -> None:
        self._observers = tuple(observers)
        self._info = info
        for observer in self._observers:
            observer.on_start(info)

    def __len__(self) -> int:
        return len(self._observers)

    def observe_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Report one round; returns the combined retire-request mask."""
        requested: Optional[np.ndarray] = None
        for observer in self._observers:
            observer.on_round(round_index, states, beeping, leaders, active_mask)
        for observer in self._observers:
            mask = observer.should_retire(round_index, leaders, active_mask)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != (self._info.num_replicas,):
                    raise SimulationError(
                        f"should_retire mask has shape {mask.shape}; expected "
                        f"({self._info.num_replicas},)"
                    )
                requested = mask.copy() if requested is None else requested | mask
        return requested

    def notify_retire(self, replicas: np.ndarray, round_index: int) -> None:
        """Report replicas that stopped this round (if any)."""
        if len(replicas):
            for observer in self._observers:
                observer.on_retire(replicas, round_index)

    def finish(self, rounds_executed: np.ndarray) -> None:
        """Report the end of the run."""
        for observer in self._observers:
            observer.on_finish(rounds_executed)


# --------------------------------------------------------------------------- #
# Shipped observers
# --------------------------------------------------------------------------- #


class BatchTraceRecorder(BatchObserver):
    """Record the full state history of every replica as a :class:`BatchTrace`.

    Requires a constant-state engine (``states`` must not be ``None``).  The
    per-replica slices of the recorded trace are byte-identical to the
    sequential single-run recorder under matched seeds.
    """

    def __init__(self) -> None:
        self._info: Optional[BatchRunInfo] = None
        self._rows: List[np.ndarray] = []
        self._rounds_executed: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self._info = info
        self._rows = []
        self._rounds_executed = None

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._info is None:
            raise SimulationError(
                "BatchTraceRecorder.on_round called before on_start"
            )
        if states is None:
            raise ConfigurationError(
                "trace recording requires a constant-state protocol; memory "
                "engines report no state array"
            )
        self._rows.append(np.asarray(states, dtype=np.int8).copy())

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds_executed = np.asarray(rounds_executed, dtype=np.int64).copy()

    def trace(self) -> BatchTrace:
        """The recorded batch trace; valid once at least round 0 was seen."""
        if self._info is None or not self._rows:
            raise SimulationError("no trace has been recorded yet")
        rounds = self._rounds_executed
        if rounds is None:
            # Mid-run view (or a caller that never finished): every replica
            # is credited with everything recorded so far.
            rounds = np.full(
                self._info.num_replicas, len(self._rows) - 1, dtype=np.int64
            )
        return BatchTrace(
            states=np.stack(self._rows),
            rounds_executed=rounds,
            beeping_values=self._info.beeping_values,
            leader_values=self._info.leader_values,
            protocol_name=self._info.protocol_name,
            topology_name=self._info.topology_name,
            seeds=self._info.seeds,
        )

    def result(self) -> BatchTrace:
        return self.trace()

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> BatchTrace:
        """Merge per-run traces (any replica counts) in replica order.

        Handles both merge paths of the execution layer: the sequential
        backend's one-``R = 1``-trace-per-replica list and the sharded
        backends' one-trace-per-shard list.  Shorter replicas are padded
        with their frozen final row by :meth:`BatchTrace.from_traces`, so
        the merged trace is byte-identical to recording the whole batch at
        once.
        """
        traces: List[object] = []
        for result in results:
            if not isinstance(result, BatchTrace):
                raise ConfigurationError(
                    "BatchTraceRecorder.merge_results expects BatchTrace "
                    "results (one per replica or per shard)"
                )
            if result.num_replicas == 1:
                traces.append(result.replica(0))
            else:
                traces.extend(result.to_traces())
        return BatchTrace.from_traces(traces)


class BatchLeaderCountTracker(BatchObserver):
    """Track per-replica leader counts and convergence rounds over time."""

    def __init__(self) -> None:
        self.history: List[np.ndarray] = []
        self._first_single: Optional[np.ndarray] = None
        self._rounds_executed: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self.history = []
        self._first_single = None
        self._rounds_executed = None

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        counts = leaders.sum(axis=1).astype(np.int64)
        self.history.append(counts)
        if self._first_single is None:
            self._first_single = np.full(counts.shape[0], -1, dtype=np.int64)
        single = counts == 1
        update = np.asarray(active_mask, dtype=bool)
        fresh = single & (self._first_single == -1)
        self._first_single[update & fresh] = round_index
        self._first_single[update & ~single] = -1

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds_executed = np.asarray(rounds_executed, dtype=np.int64).copy()

    @property
    def convergence_round(self) -> Optional[np.ndarray]:
        """Per-replica first round of the current single-leader streak (-1: none)."""
        return None if self._first_single is None else self._first_single.copy()

    def counts_matrix(self) -> np.ndarray:
        """``(T + 1, R)`` leader counts (frozen rows repeated for retirees)."""
        if not self.history:
            raise SimulationError("no rounds observed yet")
        return np.stack(self.history)

    def result(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-replica leader-count trajectories, truncated at retirement."""
        matrix = self.counts_matrix()
        rounds = self._rounds_executed
        if rounds is None:
            rounds = np.full(matrix.shape[1], matrix.shape[0] - 1, dtype=np.int64)
        return tuple(
            tuple(int(c) for c in matrix[: rounds[r] + 1, r])
            for r in range(matrix.shape[1])
        )

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> Tuple[Tuple[int, ...], ...]:
        """Concatenate per-run trajectory tuples (any replica counts).

        Each result is one run's per-replica trajectories — a single
        replica on the sequential backend's merge path, a whole shard on
        the sharded backends' — flattened in replica order.
        """
        merged: List[Tuple[int, ...]] = []
        for result in results:
            for trajectory in tuple(result):  # type: ignore[arg-type]
                merged.append(tuple(int(c) for c in trajectory))
        return tuple(merged)


class BatchBeepCountTracker(BatchObserver):
    """Accumulate ``N^beep_t(u)`` for every replica and node, on-line."""

    def __init__(self, keep_history: bool = False) -> None:
        self._counts: Optional[np.ndarray] = None
        self._keep_history = keep_history
        self.history: List[np.ndarray] = []

    def on_start(self, info: BatchRunInfo) -> None:
        self._counts = np.zeros((info.num_replicas, info.n), dtype=np.int64)
        self.history = []

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if self._counts is None:
            raise SimulationError(
                "BatchBeepCountTracker.on_round called before on_start"
            )
        if beeping is None:
            raise ConfigurationError(
                "beep counting requires a constant-state protocol; memory "
                "engines report no beeping classification"
            )
        active = np.asarray(active_mask, dtype=bool)
        self._counts[active] += beeping[active].astype(np.int64)
        if self._keep_history:
            self.history.append(self._counts.copy())

    @property
    def counts(self) -> np.ndarray:
        """Current ``(R, n)`` cumulative beep counts."""
        if self._counts is None:
            raise SimulationError("no rounds observed yet")
        return self._counts.copy()

    def result(self) -> np.ndarray:
        return self.counts

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> np.ndarray:
        return np.vstack([np.asarray(result) for result in results])


class BatchSingleLeaderStopper(BatchObserver):
    """Retire replicas once a single-leader configuration persists.

    The batched analogue of the single-run
    :class:`~repro.beeping.observers.SingleLeaderStopper`: with
    ``patience=0`` a replica is retired the round its leader count reaches
    one — exactly the round the engines' built-in ``stop_at_single_leader``
    retires it (the parity tests assert matching round counts).
    """

    def __init__(self, patience: int = 0) -> None:
        if patience < 0:
            raise SimulationError(f"patience must be non-negative; got {patience}")
        self._patience = patience
        self._consecutive: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        self._consecutive = None

    def should_retire(
        self,
        round_index: int,
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> Optional[np.ndarray]:
        counts = leaders.sum(axis=1)
        if self._consecutive is None:
            self._consecutive = np.zeros(counts.shape[0], dtype=np.int64)
        active = np.asarray(active_mask, dtype=bool)
        single = counts == 1
        self._consecutive[active & single] += 1
        self._consecutive[active & ~single] = 0
        return active & (self._consecutive > self._patience)


class BatchStateHistogramTracker(BatchObserver):
    """Per-round histograms of state values, for every replica."""

    def __init__(self) -> None:
        self.histograms: List[Tuple[Dict[int, int], ...]] = []

    def on_start(self, info: BatchRunInfo) -> None:
        self.histograms = []

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        if states is None:
            raise ConfigurationError(
                "state histograms require a constant-state protocol"
            )
        row: List[Dict[int, int]] = []
        for replica in range(states.shape[0]):
            values, counts = np.unique(states[replica], return_counts=True)
            row.append({int(v): int(c) for v, c in zip(values, counts)})
        self.histograms.append(tuple(row))

    def result(self) -> Tuple[Tuple[Dict[int, int], ...], ...]:
        return tuple(self.histograms)


# --------------------------------------------------------------------------- #
# Leader extinction (the invariant-violation observer)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class LeaderExtinctionReport:
    """Per-replica account of Lemma 9 violations (leaderless rounds).

    On a static connected graph BFW always keeps at least one leader
    (Lemma 9); under edge churn colliding elimination waves can destroy
    *every* leader, after which the configuration is absorbing.  This report
    quantifies that failure mode for a batch.

    Attributes
    ----------
    extinction_round:
        ``(R,)`` first round with zero leaders; ``-1`` where the invariant
        held for the whole run.
    extinction_events:
        ``(R,)`` number of transitions from ``>= 1`` leaders to zero (under
        BFW the leaderless state is absorbing, so this is 0 or 1; baselines
        whose candidate sets fluctuate may re-enter).
    leaderless_final:
        ``(R,)`` whether the run *ended* leaderless.
    rounds_observed:
        ``(R,)`` rounds each replica executed.
    """

    extinction_round: np.ndarray
    extinction_events: np.ndarray
    leaderless_final: np.ndarray
    rounds_observed: np.ndarray

    @property
    def num_replicas(self) -> int:
        """Number of replicas covered by the report."""
        return int(self.extinction_round.shape[0])

    @property
    def extinct(self) -> np.ndarray:
        """``(R,)`` mask of replicas that ever lost every leader."""
        return self.extinction_round >= 0

    @property
    def extinction_rate(self) -> float:
        """Fraction of replicas that ever reached a leaderless round."""
        return float(self.extinct.mean()) if self.num_replicas else 0.0

    @property
    def absorbed_rate(self) -> float:
        """Fraction of replicas that *ended* leaderless."""
        return (
            float(self.leaderless_final.mean()) if self.num_replicas else 0.0
        )

    def mean_extinction_round(self) -> Optional[float]:
        """Mean first-extinction round over extinct replicas (``None`` if none)."""
        extinct = self.extinct
        if not extinct.any():
            return None
        return float(self.extinction_round[extinct].mean())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LeaderExtinctionReport):
            return NotImplemented
        return (
            bool(np.array_equal(self.extinction_round, other.extinction_round))
            and bool(
                np.array_equal(self.extinction_events, other.extinction_events)
            )
            and bool(
                np.array_equal(self.leaderless_final, other.leaderless_final)
            )
            and bool(np.array_equal(self.rounds_observed, other.rounds_observed))
        )

    def __hash__(self) -> int:
        return id(self)


class LeaderExtinctionObserver(BatchObserver):
    """Count leader-extinction events — Lemma 9 violations — per replica.

    Works for constant-state *and* memory engines (it only reads the leader
    mask), which is what lets ``repro extinction`` quantify the measured
    leader-extinction rate under churn at sweep scale.
    """

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._extinction_round: Optional[np.ndarray] = None
        self._events: Optional[np.ndarray] = None
        self._previous_zero: Optional[np.ndarray] = None
        self._final_zero: Optional[np.ndarray] = None
        self._rounds: Optional[np.ndarray] = None

    def on_start(self, info: BatchRunInfo) -> None:
        # A reused observer starts every run clean (the arrays themselves
        # are sized lazily from the first round's leader mask).
        self._reset()

    def on_round(
        self,
        round_index: int,
        states: Optional[np.ndarray],
        beeping: Optional[np.ndarray],
        leaders: np.ndarray,
        active_mask: np.ndarray,
    ) -> None:
        zero = leaders.sum(axis=1) == 0
        if self._extinction_round is None:
            num_replicas = zero.shape[0]
            self._extinction_round = np.full(num_replicas, -1, dtype=np.int64)
            self._events = np.zeros(num_replicas, dtype=np.int64)
            self._previous_zero = np.zeros(num_replicas, dtype=bool)
            self._final_zero = np.zeros(num_replicas, dtype=bool)
        active = np.asarray(active_mask, dtype=bool)
        assert self._events is not None and self._previous_zero is not None
        became_zero = active & zero & ~self._previous_zero
        self._events[became_zero] += 1
        first = became_zero & (self._extinction_round == -1)
        self._extinction_round[first] = round_index
        self._previous_zero[active] = zero[active]
        self._final_zero[active] = zero[active]

    def on_finish(self, rounds_executed: np.ndarray) -> None:
        self._rounds = np.asarray(rounds_executed, dtype=np.int64).copy()

    def report(self) -> LeaderExtinctionReport:
        """The per-replica extinction report (valid once rounds were seen)."""
        if self._extinction_round is None:
            raise SimulationError("no rounds observed yet")
        rounds = self._rounds
        if rounds is None:
            rounds = np.zeros(self._extinction_round.shape[0], dtype=np.int64)
        return LeaderExtinctionReport(
            extinction_round=self._extinction_round.copy(),
            extinction_events=self._events.copy(),
            leaderless_final=self._final_zero.copy(),
            rounds_observed=rounds.copy(),
        )

    def result(self) -> LeaderExtinctionReport:
        return self.report()

    @classmethod
    def merge_results(cls, results: Sequence[object]) -> LeaderExtinctionReport:
        reports: List[LeaderExtinctionReport] = []
        for result in results:
            if not isinstance(result, LeaderExtinctionReport):
                raise ConfigurationError(
                    "LeaderExtinctionObserver.merge_results expects "
                    "LeaderExtinctionReport values"
                )
            reports.append(result)
        if not reports:
            raise ConfigurationError("cannot merge 0 extinction reports")
        return LeaderExtinctionReport(
            extinction_round=np.concatenate(
                [r.extinction_round for r in reports]
            ),
            extinction_events=np.concatenate(
                [r.extinction_events for r in reports]
            ),
            leaderless_final=np.concatenate(
                [r.leaderless_final for r in reports]
            ),
            rounds_observed=np.concatenate(
                [r.rounds_observed for r in reports]
            ),
        )


# --------------------------------------------------------------------------- #
# Serialisable observer specifications
# --------------------------------------------------------------------------- #

#: Registry of spec kinds to observer factories ``(**params) -> BatchObserver``.
OBSERVER_KINDS: Dict[str, Callable[..., BatchObserver]] = {
    "trace": BatchTraceRecorder,
    "leader-counts": BatchLeaderCountTracker,
    "beep-counts": BatchBeepCountTracker,
    "leader-extinction": LeaderExtinctionObserver,
}


def register_observer_kind(
    kind: str, factory: Callable[..., BatchObserver]
) -> None:
    """Register a new observer kind for :class:`ObserverSpec` cells."""
    OBSERVER_KINDS[kind] = factory


def _ensure_kind(kind: str) -> None:
    """Make sure ``kind`` is registered, importing late-bound providers.

    The telemetry layer registers its streaming-reducer and spill-trace
    kinds when :mod:`repro.telemetry` is imported, but this module cannot
    import it eagerly (telemetry's reducers sit on top of the analysis
    stack, which imports the engines, which import this module).  Resolving
    lazily also covers spawn workers: a pickled :class:`ObserverSpec`
    arrives without re-running ``__post_init__``, so the registry there may
    not have seen the telemetry import yet.
    """
    if kind in OBSERVER_KINDS:
        return
    if kind.startswith("streaming-") or kind == "spill-trace":
        import repro.telemetry  # noqa: F401  (import registers the kinds)


@dataclass(frozen=True)
class ObserverSpec:
    """Pure-data description of a batch observer attached to a cell.

    Mirrors :class:`~repro.dynamics.schedules.ScheduleSpec`: plain picklable
    data, so observed :class:`~repro.exec.ExecutionCell` objects still ship
    to spawn-started worker processes, which build the actual observers with
    :func:`build_observer`.
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _ensure_kind(self.kind)
        if self.kind not in OBSERVER_KINDS:
            raise ConfigurationError(
                f"unknown observer kind {self.kind!r}; "
                f"known: {', '.join(sorted(OBSERVER_KINDS))}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @property
    def label(self) -> str:
        """Display label such as ``"trace"`` or ``"beep-counts[keep_history=True]"``."""
        if not self.params:
            return self.kind
        rendered = ",".join(
            f"{key}={value}" for key, value in sorted(self.params.items())
        )
        return f"{self.kind}[{rendered}]"


def build_observer(spec: "ObserverSpec | BatchObserver") -> BatchObserver:
    """Instantiate an observer from a spec (or pass an instance through)."""
    if isinstance(spec, BatchObserver):
        return spec
    if not isinstance(spec, ObserverSpec):
        raise ConfigurationError(
            f"expected an ObserverSpec or BatchObserver; got {type(spec).__name__}"
        )
    _ensure_kind(spec.kind)
    factory = OBSERVER_KINDS[spec.kind]
    try:
        return factory(**spec.params)
    except TypeError as error:
        raise ConfigurationError(
            f"invalid parameters for observer kind {spec.kind!r}: {error}"
        ) from None


def build_observers(
    specs: Sequence["ObserverSpec | BatchObserver"],
) -> Tuple[BatchObserver, ...]:
    """Instantiate one observer per spec, in spec order."""
    return tuple(build_observer(spec) for spec in specs)


def merge_observations(
    spec: ObserverSpec, results: Sequence[object]
) -> object:
    """Merge per-run observations into one batch observation, replica order.

    Two callers: the sequential execution backend merges one ``R = 1``
    observation per replica, and the sharding merge path
    (:func:`~repro.exec.cells.merge_cell_outcomes`) merges one multi-replica
    observation per shard.  Either way the merged value is byte-identical to
    what a single batched run of the whole cell observes.
    """
    _ensure_kind(spec.kind)
    factory = OBSERVER_KINDS[spec.kind]
    merge = getattr(factory, "merge_results", None)
    if merge is None:
        raise ConfigurationError(
            f"observer kind {spec.kind!r} does not support per-replica merging"
        )
    return merge(results)
