"""Batched execution traces: the state history of all replicas at once.

A :class:`BatchTrace` is the ``(R, n)``-shaped sibling of
:class:`~repro.beeping.trace.ExecutionTrace`: one ``(T + 1, R, n)`` integer
array holds the per-round configurations of every replica of a batch, next
to the per-replica number of executed rounds.  Replicas retire at different
rounds, so rows past a replica's last executed round hold its *frozen* final
configuration — exactly what the batched engines keep in their state array.
That convention makes :meth:`BatchTrace.replica` exact: slicing replica
``r``'s first ``rounds_executed[r] + 1`` rows reproduces the standalone
single-run trace byte for byte (the parity harness enforces this), while the
full array stays directly consumable by the batch entry points of
:mod:`repro.analysis` — no per-replica Python loops.

Traces recorded replica by replica (the sequential execution backend) are
merged back into the same representation by :meth:`BatchTrace.from_traces`,
which pads shorter replicas with their final row — bit-identical to what the
batched recorder produces, so observed cells yield byte-identical
observations on every :mod:`repro.exec` backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover
    # Runtime imports happen inside the methods: importing the beeping
    # package here would re-enter it while its observers module is loading
    # this package's observer layer (beeping.observers -> batch.observers ->
    # batch.trace must therefore stay free of module-level beeping imports).
    from repro.beeping.trace import ExecutionTrace


@dataclass(frozen=True, eq=False)
class BatchTrace:
    """Complete state history of a batch of finite-state executions.

    Attributes
    ----------
    states:
        Integer array of shape ``(T + 1, R, n)``; ``states[t, r, u]`` is the
        state value of node ``u`` of replica ``r`` in round ``t``.  For
        rounds past ``rounds_executed[r]`` the row repeats replica ``r``'s
        final configuration (the replica is retired and frozen).
    rounds_executed:
        Integer array of shape ``(R,)``; replica ``r`` executed rounds
        ``1 .. rounds_executed[r]`` (round 0 is the initial configuration).
    beeping_values, leader_values:
        The state values classified as beeping / leader.
    protocol_name, topology_name:
        Provenance metadata shared by every replica.
    seeds:
        Per-replica integer seeds where known, ``None`` otherwise.
    """

    states: np.ndarray
    rounds_executed: np.ndarray
    beeping_values: Tuple[int, ...]
    leader_values: Tuple[int, ...]
    protocol_name: str = ""
    topology_name: str = ""
    seeds: Tuple[Optional[int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "states", np.asarray(self.states, dtype=np.int8)
        )
        object.__setattr__(
            self,
            "rounds_executed",
            np.asarray(self.rounds_executed, dtype=np.int64),
        )
        if self.states.ndim != 3:
            raise TraceError(
                f"batch trace states must be a 3-D (rounds, replicas, nodes) "
                f"array; got shape {self.states.shape}"
            )
        if self.rounds_executed.shape != (self.states.shape[1],):
            raise TraceError(
                f"rounds_executed has shape {self.rounds_executed.shape}; "
                f"expected ({self.states.shape[1]},)"
            )
        if self.states.shape[0] == 0:
            raise TraceError("a batch trace needs at least the round-0 row")
        if self.rounds_executed.size and (
            (self.rounds_executed < 0).any()
            or (self.rounds_executed > self.num_rounds).any()
        ):
            raise TraceError(
                f"rounds_executed outside recorded range 0..{self.num_rounds}"
            )
        if not self.seeds:
            object.__setattr__(self, "seeds", (None,) * self.num_replicas)
        elif len(self.seeds) != self.num_replicas:
            raise TraceError(
                f"{len(self.seeds)} seeds for {self.num_replicas} replicas"
            )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def num_rounds(self) -> int:
        """Number of recorded transition rounds ``T`` (rows minus round 0)."""
        return self.states.shape[0] - 1

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R``."""
        return self.states.shape[1]

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.states.shape[2]

    def valid_mask(self) -> np.ndarray:
        """``(T + 1, R)`` mask of rows a replica actually executed.

        Row ``t`` of replica ``r`` is live for ``t <= rounds_executed[r]``;
        later rows repeat the frozen final configuration.
        """
        rounds = np.arange(self.states.shape[0])[:, None]
        return rounds <= self.rounds_executed[None, :]

    # ------------------------------------------------------------------ #
    # Batch-shaped views (what the analysis entry points consume)
    # ------------------------------------------------------------------ #

    def _membership(self, values: Tuple[int, ...]) -> np.ndarray:
        mask = np.zeros(self.states.shape, dtype=bool)
        for value in values:
            mask |= self.states == value
        return mask

    def beeping_history(self) -> np.ndarray:
        """``(T + 1, R, n)`` boolean array: who beeps in every round."""
        return self._membership(self.beeping_values)

    def leader_history(self) -> np.ndarray:
        """``(T + 1, R, n)`` boolean array: who is a leader in every round."""
        return self._membership(self.leader_values)

    def leader_counts(self) -> np.ndarray:
        """``(T + 1, R)`` leader counts for every round and replica."""
        return self.leader_history().sum(axis=2)

    # ------------------------------------------------------------------ #
    # Per-replica views
    # ------------------------------------------------------------------ #

    def replica(self, index: int) -> "ExecutionTrace":
        """Replica ``index`` as a standalone :class:`ExecutionTrace`.

        Byte-identical to the trace a single sequential run seeded with
        ``seeds[index]`` records (the parity harness enforces this for
        every registered protocol, on static and dynamic schedules).
        """
        from repro.beeping.trace import ExecutionTrace

        if not 0 <= index < self.num_replicas:
            raise TraceError(
                f"replica {index} outside batch of {self.num_replicas}"
            )
        last = int(self.rounds_executed[index])
        return ExecutionTrace(
            states=np.ascontiguousarray(self.states[: last + 1, index, :]),
            beeping_values=self.beeping_values,
            leader_values=self.leader_values,
            protocol_name=self.protocol_name,
            topology_name=self.topology_name,
            seed=self.seeds[index],
        )

    def to_traces(self) -> Tuple["ExecutionTrace", ...]:
        """All replicas as standalone traces, in batch order."""
        return tuple(self.replica(r) for r in range(self.num_replicas))

    # ------------------------------------------------------------------ #
    # Assembly from single runs (the sequential backend's merge path)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_traces(cls, traces: Sequence["ExecutionTrace"]) -> "BatchTrace":
        """Merge per-replica single-run traces into one batch trace.

        Shorter replicas are padded with their final row — the frozen-state
        convention of the batched recorder — so a merge of sequential traces
        is bit-identical to the batched engine's recording under matched
        seeds.  All traces must agree on node count, state-value classes and
        provenance metadata.
        """
        traces = tuple(traces)
        if not traces:
            raise TraceError("cannot merge a batch trace from 0 traces")
        first = traces[0]
        for trace in traces[1:]:
            if trace.n != first.n:
                raise TraceError(
                    f"cannot merge traces with different node counts "
                    f"({first.n} vs {trace.n})"
                )
            if (
                trace.beeping_values != first.beeping_values
                or trace.leader_values != first.leader_values
                or trace.protocol_name != first.protocol_name
                or trace.topology_name != first.topology_name
            ):
                raise TraceError(
                    "cannot merge traces of different protocols or graphs"
                )
        rounds = np.array([trace.num_rounds for trace in traces], dtype=np.int64)
        total = int(rounds.max())
        states = np.empty(
            (total + 1, len(traces), first.n), dtype=np.int8
        )
        for index, trace in enumerate(traces):
            last = trace.num_rounds
            states[: last + 1, index, :] = trace.states
            if last < total:
                states[last + 1 :, index, :] = trace.states[last]
        return cls(
            states=states,
            rounds_executed=rounds,
            beeping_values=first.beeping_values,
            leader_values=first.leader_values,
            protocol_name=first.protocol_name,
            topology_name=first.topology_name,
            seeds=tuple(trace.seed for trace in traces),
        )

    # ------------------------------------------------------------------ #
    # Equality (used by the cross-backend observation parity tests)
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchTrace):
            return NotImplemented
        return (
            self.states.shape == other.states.shape
            and bool(np.array_equal(self.states, other.states))
            and bool(np.array_equal(self.rounds_executed, other.rounds_executed))
            and self.beeping_values == other.beeping_values
            and self.leader_values == other.leader_values
            and self.protocol_name == other.protocol_name
            and self.topology_name == other.topology_name
            and self.seeds == other.seeds
        )

    def __hash__(self) -> int:  # frozen dataclass with eq=False would supply one
        return id(self)
