"""The batched Monte-Carlo engine: all replicas of a sweep in one array.

Every statistical claim of the paper is reproduced by running dozens of
independently seeded replicas of the same (protocol, graph) cell.  The
:class:`~repro.beeping.engine.VectorizedEngine` already advances all *nodes*
of one execution with a handful of array operations, but a sweep still pays
the Python-level round loop once per seed.  :class:`BatchedEngine` amortises
that loop across the whole cell:

* the states of ``R`` replicas live in one ``(R, n)`` int array;
* the beep masks of all replicas are one boolean gather, and "who hears a
  beep" is one sparse matrix product against the ``(n, R)`` stacked beep
  columns (the adjacency matrix is symmetric, so the transpose trick costs
  nothing);
* every probabilistic transition of the round is resolved by one ``(R, n)``
  uniform block, filled row by row from per-replica generator streams so
  that each replica consumes exactly the randomness its standalone run
  would;
* replicas that reach a single-leader configuration are *retired in place*:
  they drop out of the active index, stop consuming randomness, and stop
  costing work, while the batch keeps advancing the stragglers.

Because the per-replica streams and the per-round order of operations match
:meth:`VectorizedEngine.run` exactly, replica ``r`` of a batch seeded with
``seeds[r]`` reproduces the standalone run bit for bit — same convergence
round, same final leader, same leader-count trajectory.  The parity tests in
``tests/batch/`` enforce this on paths, cycles, and random geometric graphs.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.batch.kernels import (
    KernelPolicy,
    compiled_fused_kernel,
    fused_round_block,
    resolve_kernel,
    resolve_namespace,
    run_xp_rounds,
)
from repro.batch.observers import (
    BatchObserver,
    BatchRunInfo,
    ObserverPipeline,
)
from repro.batch.results import BatchResult
from repro.batch.streams import (
    DEFAULT_RNG_BUFFER_BYTES,
    ReplicaStreams,
    SeedLike,
    prefetch_depth,
)
from repro.beeping.engine import CompiledProtocol, check_schedule, compile_protocol
from repro.beeping.simulator import default_round_budget
from repro.core.protocol import BeepingProtocol
from repro.dynamics.schedules import TopologySchedule
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.topology import Topology


def dense_adjacency_preferred(
    n: int, nnz: int, byte_budget: int = 4 << 20
) -> bool:
    """Whether a graph's hear-mask should use a dense float32 adjacency.

    The explicit crossover rule behind ``_adjacency_for``:

    * **byte budget** — a dense float32 copy costing at most
      ``byte_budget`` bytes (default 4 MiB, i.e. every graph up to 1024
      nodes) is always worth it: one BLAS matmul replaces ~25 µs of scipy
      dispatch per round, which dominates once the batch tail is thin;
    * **density rule** — above the budget, densify only when the dense
      copy is no larger than the CSR form it replaces (float64 data +
      int32 indices per edge slot, int32 row pointers), i.e. when the
      graph is so dense that CSR stops saving memory — near-clique graphs
      stay matmul-friendly at any size, while a million-node cycle stays
      CSR.
    """
    dense_bytes = 4 * n * n
    if dense_bytes <= byte_budget:
        return True
    csr_bytes = 12 * nnz + 4 * (n + 1)
    return dense_bytes <= csr_bytes


class BatchedEngine:
    """Simulate ``R`` independent replicas of a compiled protocol at once.

    Parameters
    ----------
    topology:
        The communication graph shared by every replica (the initial graph
        when a schedule is set).
    protocol:
        A constant-state beeping protocol; compiled once at construction.
    schedule:
        Optional :class:`~repro.dynamics.schedules.TopologySchedule`.  The
        adjacency used in round ``r`` is that of ``schedule.topology_at(r)``,
        swapped once per round for the whole batch — one rebuild serves all
        ``R`` replicas, and distinct graphs are compiled to dense/CSR form
        exactly once (schedules deduplicate revisited edge sets).  A static
        schedule reproduces the scheduleless run bit for bit.  State-aware
        schedules (whose graphs depend on the replica's states) are only
        accepted for single-replica batches, because all replicas of a batch
        share one adjacency per round by construction.
    kernel:
        Round-kernel spec resolved through
        :func:`repro.batch.kernels.resolve_kernel`: ``"auto"`` (default,
        numba-compiled fused kernel when numba is importable, interpreted
        numpy path otherwise), ``"numba"`` (demand the compiled kernel),
        ``"numpy"`` (force the interpreted path), ``"python"`` (the fused
        kernel uncompiled — parity testing without numba), or
        ``"xp:<namespace>"`` (the array-namespace variant, e.g.
        ``"xp:numpy"``/``"xp:cupy"``).  Runs that need per-round Python
        callbacks (observers, schedules, heartbeats) fall back to the
        interpreted path with identical records; ``last_kernel`` records
        what each run actually used.
    """

    #: Byte budget for an always-densified adjacency (the crossover
    #: heuristic's first rule; 4 MiB keeps every graph up to 1024 nodes
    #: dense, the historical behaviour).  Above it, a graph densifies
    #: only when the dense copy beats CSR on bytes — see
    #: :func:`dense_adjacency_preferred`.
    DENSE_ADJACENCY_BYTES = 4 << 20

    #: Memory cap (bytes) for the prefetched per-replica uniform blocks
    #: (the block depth itself comes from
    #: :func:`repro.batch.streams.prefetch_depth`, the single source of
    #: truth shared with the fused kernels).
    RNG_BUFFER_BYTES = DEFAULT_RNG_BUFFER_BYTES

    #: Maximum number of schedule graphs whose compiled (sparse, dense)
    #: adjacencies are kept alive.  Schedules deduplicate revisited edge
    #: sets, so periodic scenarios fit entirely; pure random churn cycles
    #: through the cache, paying one recompilation per round — the same
    #: price an unbounded cache would pay anyway, without growing a dense
    #: n x n float32 copy per round for the engine's lifetime.
    SWAP_CACHE_LIMIT = 64

    #: Byte budget for the cached dense adjacencies; on dense-eligible
    #: graphs near the ``DENSE_ADJACENCY_BYTES`` budget (4 MB per float32
    #: copy) this, not the entry count, is the binding bound.
    SWAP_CACHE_BYTES = 64 << 20

    def __init__(
        self,
        topology: Topology,
        protocol: BeepingProtocol,
        schedule: Optional[TopologySchedule] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self._topology = topology
        self._protocol = protocol
        self._compiled = compile_protocol(protocol)
        # Resolved once per engine: an explicit kernel="numba" without
        # numba (or an unimportable xp namespace) fails here, not
        # mid-sweep.  Per-run observer/schedule/heartbeat fallbacks are
        # decided in run() — see KernelPolicy.fallback_reason.
        self._kernel_policy: KernelPolicy = resolve_kernel(kernel)
        self.last_kernel: Optional[dict] = None
        self._adjacency = topology.sparse_adjacency()
        schedule = check_schedule(topology, schedule)
        if schedule is not None and schedule.is_static:
            # The identity schedule *is* today's fast path: adopt its (only)
            # graph up front and skip the per-round dispatch entirely, so
            # bit-identity with a scheduleless run holds by construction.
            self._adjacency = schedule.topology_at(0).sparse_adjacency()
            schedule = None
        self._schedule = schedule
        # A float32 matmul counts beeping neighbours exactly (degrees are far
        # below 2**24); on small graphs it avoids ~25 µs of scipy dispatch
        # overhead per round, which dominates once the batch tail is thin.
        self._dense_adjacency: Optional[np.ndarray] = None
        # Plain-int adjacency-representation counters: how many distinct
        # graphs this engine compiled to each form (sampled as the
        # engine.adjacency_dense gauge once per run).
        self._adjacency_dense_builds = 0
        self._adjacency_csr_builds = 0
        if dense_adjacency_preferred(
            topology.n, self._adjacency.nnz, self.DENSE_ADJACENCY_BYTES
        ):
            self._dense_adjacency = (
                self._adjacency.toarray().astype(np.float32)
            )
            self._adjacency_dense_builds += 1
        else:
            self._adjacency_csr_builds += 1
        # Batch-local table copies tuned for the hot loop: intp-typed
        # successor tables make every gather conversion-free (numpy converts
        # non-intp index arrays on each fancy-indexing call), and a float32
        # beep lookup feeds the matmul without a per-round astype.
        compiled = self._compiled
        self._succ_primary_ip = compiled.succ_primary.astype(np.intp)
        self._succ_secondary_ip = compiled.succ_secondary.astype(np.intp)
        self._beep_f32 = compiled.is_beeping.astype(np.float32)
        # Swap cache for dynamic topologies: schedule graphs are deduplicated
        # objects, so one dense/CSR compilation per distinct graph serves
        # every later round (and every replica) that revisits it.  Bounded
        # LRU (entry count and dense-adjacency bytes): entries hold a
        # reference to their topology, so a live id key can never be
        # recycled by the allocator.
        dense_bytes = 4 * topology.n * topology.n if self._dense_adjacency is not None else 1
        self._swap_cache_limit = max(
            2, min(self.SWAP_CACHE_LIMIT, self.SWAP_CACHE_BYTES // dense_bytes)
        )
        self._swap_cache: "OrderedDict[int, Tuple[Topology, object, Optional[np.ndarray]]]" = OrderedDict(
            [(id(topology), (topology, self._adjacency, self._dense_adjacency))]
        )
        # Plain-int swap-cache counters, sampled once per run by the
        # telemetry layer; per-round cost is one integer increment.
        self._swap_cache_hits = 0
        self._swap_cache_misses = 0

    def _adjacency_for(self, topology: Topology):
        """Sparse and (optionally) dense adjacency of a schedule graph, memoised."""
        entry = self._swap_cache.get(id(topology))
        if entry is None:
            self._swap_cache_misses += 1
            sparse_adjacency = topology.sparse_adjacency()
            dense = None
            if dense_adjacency_preferred(
                topology.n, sparse_adjacency.nnz, self.DENSE_ADJACENCY_BYTES
            ):
                dense = sparse_adjacency.toarray().astype(np.float32)
                self._adjacency_dense_builds += 1
            else:
                self._adjacency_csr_builds += 1
            entry = (topology, sparse_adjacency, dense)
            self._swap_cache[id(topology)] = entry
            if len(self._swap_cache) > self._swap_cache_limit:
                self._swap_cache.popitem(last=False)
        else:
            self._swap_cache_hits += 1
            self._swap_cache.move_to_end(id(topology))
        return entry[1], entry[2]

    def _cache_stats(self) -> dict:
        stats = {
            "swap_cache_hits": self._swap_cache_hits,
            "swap_cache_misses": self._swap_cache_misses,
            "adjacency_dense_builds": self._adjacency_dense_builds,
            "adjacency_csr_builds": self._adjacency_csr_builds,
        }
        if self._schedule is not None:
            stats.update(self._schedule.cache_stats())
        return stats

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def schedule(self) -> Optional[TopologySchedule]:
        """The topology schedule, or ``None`` for a static graph."""
        return self._schedule

    @property
    def protocol(self) -> BeepingProtocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def compiled(self) -> CompiledProtocol:
        """The compiled lookup tables shared by all replicas."""
        return self._compiled

    def run(
        self,
        seeds: Union[Sequence[SeedLike], ReplicaStreams],
        max_rounds: Optional[int] = None,
        initial_states: Optional[np.ndarray] = None,
        record_leader_counts: bool = True,
        stop_at_single_leader: bool = True,
        observers: Sequence[BatchObserver] = (),
    ) -> BatchResult:
        """Advance all replicas to convergence or the round budget.

        Parameters
        ----------
        seeds:
            One seed (or generator) per replica — replica ``r`` reproduces
            ``VectorizedEngine.run(rng=seeds[r])`` exactly — or a prebuilt
            :class:`ReplicaStreams`.  Generator objects may be advanced up
            to a prefetch block past the rounds their replica consumed (the
            results are unaffected; see :class:`ReplicaStreams`).
        max_rounds:
            Shared round budget; defaults to :func:`default_round_budget`.
        initial_states:
            ``None`` (every node starts in the protocol's initial state), a
            ``(n,)`` vector shared by all replicas, or a ``(R, n)`` array of
            per-replica starts.
        record_leader_counts:
            Whether to keep per-replica leader-count trajectories (needed
            for trajectory-level parity checks; cheap, on by default).
        stop_at_single_leader:
            Retire replicas as soon as their leader count reaches one.
        observers:
            :class:`~repro.batch.observers.BatchObserver` instances reported
            every round with the whole ``(R, n)`` batch (retired rows
            frozen).  Observers never consume randomness, so attaching them
            does not perturb replica parity; their retire requests retire
            replicas exactly like the built-in single-leader stop.
        """
        run_started = time.perf_counter()
        streams = (
            seeds if isinstance(seeds, ReplicaStreams) else ReplicaStreams(seeds)
        )
        num_replicas = len(streams)
        if max_rounds is None:
            max_rounds = default_round_budget(self._topology)
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0; got {max_rounds}")

        schedule = self._schedule
        if schedule is not None:
            if schedule.state_aware and num_replicas > 1:
                raise ConfigurationError(
                    "state-aware schedules depend on one replica's states, "
                    "but all replicas of a batch share the per-round "
                    f"adjacency; got {num_replicas} replicas — run them "
                    "sequentially or one replica per batch"
                )
            schedule.begin_run()

        n = self._topology.n
        compiled = self._compiled
        states = self._initial_batch(initial_states, num_replicas, n)

        pipeline: Optional[ObserverPipeline] = None
        if observers:
            pipeline = ObserverPipeline(
                observers,
                BatchRunInfo(
                    num_replicas=num_replicas,
                    n=n,
                    protocol_name=compiled.protocol_name,
                    topology_name=self._topology.name,
                    beeping_values=compiled.beeping_values,
                    leader_values=compiled.leader_values,
                    seeds=streams.seed_values,
                ),
            )

        counts = compiled.is_leader[states].sum(axis=1).astype(np.int64)
        convergence = np.where(counts == 1, 0, -1).astype(np.int64)
        rounds_executed = np.zeros(num_replicas, dtype=np.int64)
        count_rows: Optional[List[np.ndarray]] = (
            [counts.copy()] if record_leader_counts else None
        )

        active_mask = np.ones(num_replicas, dtype=bool)
        retire_now = np.zeros(num_replicas, dtype=bool)
        if stop_at_single_leader:
            retire_now |= counts == 1
        if pipeline is not None:
            requested = pipeline.observe_round(
                0,
                states,
                compiled.is_beeping[states],
                compiled.is_leader[states],
                active_mask.copy(),
            )
            if requested is not None:
                retire_now |= requested
        if retire_now.any():
            active_mask[retire_now] = False
            if pipeline is not None:
                pipeline.notify_retire(np.flatnonzero(retire_now), 0)
        active = np.flatnonzero(active_mask)

        dense = self._dense_adjacency
        sparse_adjacency = self._adjacency
        beep_f32 = self._beep_f32
        is_leader = compiled.is_leader
        succ_primary = self._succ_primary_ip
        succ_secondary = self._succ_secondary_ip
        primary_probability = compiled.primary_probability

        # In-flight heartbeat: looked up once per run; None costs a single
        # is-not-None check per round, and beats never touch the replica
        # streams, so records stay byte-identical with heartbeats on or off.
        from repro.telemetry.heartbeat import current_heartbeat

        heartbeat = current_heartbeat()

        # Prefetched uniforms: one Generator call per replica per `depth`
        # rounds instead of one per round (see ReplicaStreams.fill_blocks).
        # The depth formula lives in streams.prefetch_depth so the fused
        # kernels and this loop can never drift on buffer geometry.
        depth = prefetch_depth(num_replicas, n, self.RNG_BUFFER_BYTES)

        # Kernel selection, once per run: fused and xp kernels execute a
        # whole RNG block per call, so any run needing per-round Python
        # callbacks falls back to this interpreted path — consuming the
        # exact same uniform blocks, so records are identical either way.
        policy = self._kernel_policy
        fallback = policy.fallback_reason(
            observers=pipeline is not None,
            schedule=schedule is not None,
            heartbeat=heartbeat is not None,
            needs_dense=dense is None,
        )
        kernel_label = "numpy" if fallback is not None else policy.resolved
        compile_seconds: Optional[float] = None

        round_index = 0
        if kernel_label in ("numba", "python"):
            if kernel_label == "numba":
                kernel_fn, compile_seconds = compiled_fused_kernel()
            else:
                kernel_fn = fused_round_block
            # Initial states may be a read-only broadcast view; the kernel
            # transitions rows in place, so materialise a contiguous batch
            # (the interpreted loop rebinds `states` instead — same values).
            if not states.flags.writeable or not states.flags.c_contiguous:
                states = np.ascontiguousarray(states)
            indptr = np.ascontiguousarray(sparse_adjacency.indptr)
            indices = np.ascontiguousarray(sparse_adjacency.indices)
            record = count_rows is not None
            count_block = np.zeros(
                (depth if record else 0, num_replicas), dtype=np.int64
            )
            rng_buffer = np.empty((depth, num_replicas, n), dtype=np.float64)
            while round_index < max_rounds and active.size:
                # Fill the whole block for every active replica — exactly
                # the generator consumption of the interpreted loop, even
                # when fewer rounds than `depth` remain in the budget.
                streams.fill_blocks(active, rng_buffer)
                budget = min(depth, max_rounds - round_index)
                consumed = int(
                    kernel_fn(
                        states,
                        active_mask,
                        counts,
                        convergence,
                        rounds_executed,
                        indptr,
                        indices,
                        compiled.is_beeping,
                        is_leader,
                        succ_primary,
                        succ_secondary,
                        primary_probability,
                        rng_buffer,
                        round_index,
                        budget,
                        stop_at_single_leader,
                        record,
                        count_block,
                    )
                )
                if record:
                    for offset in range(consumed):
                        count_rows.append(count_block[offset].copy())
                round_index += consumed
                active = np.flatnonzero(active_mask)
        elif policy.xp_namespace is not None and fallback is None:
            states, round_index = run_xp_rounds(
                resolve_namespace(policy.xp_namespace),
                np.ascontiguousarray(states),
                active_mask,
                counts,
                convergence,
                rounds_executed,
                dense,
                beep_f32,
                is_leader,
                succ_primary,
                succ_secondary,
                primary_probability,
                streams.fill_blocks,
                depth,
                max_rounds,
                stop_at_single_leader,
                count_rows,
            )
            active = np.flatnonzero(active_mask)

        rng_buffer = np.empty((depth, num_replicas, n), dtype=np.float64)
        rng_position = depth

        while round_index < max_rounds and active.size:
            round_index += 1
            full = active.size == num_replicas

            sub = states if full else states[active]
            if schedule is not None:
                observed = sub[0] if schedule.state_aware else None
                topology = schedule.topology_at(round_index, states=observed)
                if topology.n != n:
                    raise ConfigurationError(
                        f"schedule changed the node count to {topology.n} in "
                        f"round {round_index}; expected {n}"
                    )
                sparse_adjacency, dense = self._adjacency_for(topology)
            beeping = beep_f32[sub]
            if beeping.any():
                # One product for the whole batch: the adjacency is
                # symmetric, so row r of the stacked result is exactly what
                # replica r's standalone run computes.  float32 counts the
                # beeping neighbours exactly (degrees are far below 2**24).
                if dense is not None:
                    heard = (beeping + np.matmul(beeping, dense)) > 0
                else:
                    heard = (beeping + sparse_adjacency.dot(beeping.T).T) > 0
            else:
                heard = beeping > 0
            heard_index = heard.astype(np.intp)

            primary = succ_primary[sub, heard_index]
            secondary = succ_secondary[sub, heard_index]
            probability = primary_probability[sub, heard_index]
            if rng_position == depth:
                streams.fill_blocks(active, rng_buffer)
                rng_position = 0
            uniforms = (
                rng_buffer[rng_position]
                if full
                else rng_buffer[rng_position, active]
            )
            rng_position += 1
            new_states = np.where(uniforms < probability, primary, secondary)
            if full:
                states = new_states
            else:
                states[active] = new_states

            active_counts = is_leader[new_states].sum(axis=1)
            hit = active_counts == 1
            if stop_at_single_leader:
                # Hot path: a hit retires this round (an active replica can
                # never carry an older streak — it would already have
                # retired), so the streak bookkeeping degenerates to
                # "convergence = retirement round" and per-round count
                # writes are only needed when trajectories are recorded.
                if count_rows is not None:
                    counts[active] = active_counts
                    count_rows.append(counts.copy())
                retire = hit
            else:
                # Streak bookkeeping matching the standalone engine: a
                # count of one sets the convergence round if unset;
                # anything else clears it.  Retired rows stay frozen.
                counts[active] = active_counts
                if count_rows is not None:
                    count_rows.append(counts.copy())
                previous = convergence[active]
                convergence[active] = np.where(
                    hit, np.where(previous == -1, round_index, previous), -1
                )
                retire = np.zeros(active.size, dtype=bool)
            if pipeline is not None:
                requested = pipeline.observe_round(
                    round_index,
                    states,
                    compiled.is_beeping[states],
                    is_leader[states],
                    active_mask.copy(),
                )
                if requested is not None:
                    retire = retire | requested[active]
            if retire.any():
                # Retirement-time bookkeeping: a retiring replica stops
                # consuming randomness and work from here on.
                retired = active[retire]
                if stop_at_single_leader:
                    # Observers may retire replicas that did not converge;
                    # only the hits carry a convergence round.
                    convergence[retired] = np.where(hit[retire], round_index, -1)
                    counts[retired] = active_counts[retire]
                rounds_executed[retired] = round_index
                active_mask[retired] = False
                active = np.flatnonzero(active_mask)
                if pipeline is not None:
                    pipeline.notify_retire(retired, round_index)
            if heartbeat is not None and heartbeat.due(round_index):
                # Retired rows carry their final round in rounds_executed;
                # still-active rows have advanced round_index rounds each
                # but are only written back at loop exit.
                heartbeat.beat(
                    engine="batched",
                    round_index=round_index,
                    replicas=num_replicas,
                    active=int(active.size),
                    converged=int((convergence >= 0).sum()),
                    leaderless=int((active_counts == 0).sum()),
                    rounds_advanced=int(
                        rounds_executed.sum() + active.size * round_index
                    ),
                    kernel=kernel_label,
                )

        if active.size:
            # Replicas still active when the budget ran out (or that never
            # entered the loop) executed every round and keep their last
            # leader count.
            rounds_executed[active] = round_index
            counts[active] = is_leader[states[active]].sum(axis=1)

        if pipeline is not None:
            pipeline.finish(rounds_executed.copy())

        converged = (convergence != -1) & (counts == 1)
        leader_node = np.where(
            counts == 1, is_leader[states].argmax(axis=1), -1
        ).astype(np.int64)

        leader_counts: Optional[tuple] = None
        if count_rows is not None:
            # Replica r was active for rounds 1..rounds_executed[r], so its
            # trajectory is a prefix column of the stacked count rows.
            stacked = np.stack(count_rows)
            leader_counts = tuple(
                tuple(int(c) for c in stacked[: rounds_executed[r] + 1, r])
                for r in range(num_replicas)
            )

        result = BatchResult(
            converged=converged,
            convergence_round=np.where(converged, convergence, -1),
            rounds_executed=rounds_executed,
            final_leader_count=counts,
            leader_node=leader_node,
            seeds=streams.seed_values,
            leader_counts=leader_counts,
            final_states=states.astype(np.int8),
            protocol_name=compiled.protocol_name,
            topology_name=self._topology.name,
        )

        # What actually ran, for callers and telemetry: the resolved
        # kernel, the per-run fallback (if any), the compile cost, and
        # the parity gate the kernel is held to ("bitwise" everywhere the
        # host RNG feeds the kernel; "distributional" on device xp
        # namespaces, per ROADMAP).
        self.last_kernel = {
            "requested": policy.requested,
            "resolved": policy.resolved,
            "active": kernel_label,
            "fallback": fallback,
            "compile_seconds": compile_seconds,
            "parity": "bitwise" if kernel_label == "numpy" else policy.parity,
        }

        # One telemetry sample per run (a no-op unless a MetricsRegistry is
        # installed); imported lazily to keep the engine importable without
        # pulling the telemetry stack.
        from repro.telemetry.metrics import sample_engine_run

        gauges = {
            "engine.adjacency_dense": (
                1.0 if self._dense_adjacency is not None else 0.0
            ),
            "engine.kernel_parity_bitwise": (
                1.0 if self.last_kernel["parity"] == "bitwise" else 0.0
            ),
        }
        if compile_seconds is not None:
            gauges["engine.kernel_compile_seconds"] = float(compile_seconds)
        sample_engine_run(
            "batched",
            rounds_advanced=int(rounds_executed.sum()),
            replicas=num_replicas,
            wall_seconds=time.perf_counter() - run_started,
            replicas_converged=int(converged.sum()),
            replicas_leaderless=int((counts == 0).sum()),
            cache_stats=self._cache_stats(),
            kernel=kernel_label,
            gauges=gauges,
        )
        return result

    def _initial_batch(
        self,
        initial_states: Optional[np.ndarray],
        num_replicas: int,
        n: int,
    ) -> np.ndarray:
        # States are kept in intp so that every fancy-indexing gather of the
        # hot loop avoids numpy's internal index-array conversion.
        compiled = self._compiled
        if initial_states is None:
            return np.full(
                (num_replicas, n), compiled.initial_state, dtype=np.intp
            )
        array = np.asarray(initial_states, dtype=np.intp)
        if array.shape == (n,):
            array = np.broadcast_to(array, (num_replicas, n))
        elif array.shape != (num_replicas, n):
            raise SimulationError(
                f"initial_states has shape {array.shape}; expected "
                f"({n},) or ({num_replicas}, {n})"
            )
        if (array < 0).any() or (array >= compiled.num_states).any():
            raise SimulationError("initial_states contains invalid state values")
        return array.copy()


def run_batch(
    topology: Topology,
    protocol: Optional[BeepingProtocol] = None,
    seeds: Sequence[SeedLike] = (0,),
    max_rounds: Optional[int] = None,
    kernel: Optional[str] = None,
) -> BatchResult:
    """Convenience wrapper: run a batch of BFW (or a given protocol) replicas.

    Examples
    --------
    >>> from repro.graphs import cycle_graph
    >>> result = run_batch(cycle_graph(16), seeds=range(8))
    >>> bool(result.converged.all())
    True
    >>> result.num_replicas
    8
    """
    from repro.core.bfw import BFWProtocol

    engine = BatchedEngine(topology, protocol or BFWProtocol(), kernel=kernel)
    return engine.run(list(seeds), max_rounds=max_rounds)
