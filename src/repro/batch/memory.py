"""Batched execution of the Table-1 memory baselines.

:class:`~repro.batch.engine.BatchedEngine` amortises the Python round loop
across all replicas of a constant-state protocol, but the memory baselines
(ID broadcast, the Emek–Keren-style epoch knockout, the Gilbert–Newport
clique knockout) kept paying the far steeper per-node Python loop of
:class:`~repro.beeping.simulator.MemorySimulator` once per seed.  This module
closes that gap: each baseline's per-node memory is re-expressed as a set of
``(R, n)`` (and, for identifier bits, ``(R, n, L)``) numpy arrays, and one
:class:`BatchedMemoryEngine` round advances every replica of the batch with a
handful of array operations.

Exact parity with the sequential simulator is the design constraint, and it
pins down the randomness discipline:

* ``MemorySimulator`` seeds one generator per run and consumes it in node
  order — unconditionally at memory creation, and *conditionally* during
  updates (the baselines draw their next coin behind a short-circuiting
  ``candidate and rng.random() < p``, so eliminated nodes stop consuming
  randomness).  The batch therefore draws per replica per round exactly the
  uniforms the surviving candidates of that replica would have drawn, in node
  order (:func:`draw_uniform_where`); a ``Generator.random(k)`` call yields
  the same doubles as ``k`` scalar ``random()`` calls, so the streams match
  bit for bit.
* Convergence bookkeeping mirrors ``MemorySimulator.run`` — the two-round
  single-leader stability window, the convergence round resetting whenever
  the candidate count leaves one, and the all-terminated early exit — and a
  replica that trips either stop condition is *retired in place*: it drops
  out of the active row index and stops consuming randomness and work.

Replica ``r`` of a batch seeded with ``seeds[r]`` is therefore identical,
field for field, to ``MemorySimulator(topology, protocol).run(rng=seeds[r])``.
The shared harness in ``tests/batch/parity_harness.py`` enforces this for
every supported baseline on paths, cycles and random graphs.

Supporting a new baseline means registering a :class:`MemoryBatchState`
compiler for its protocol type with :func:`register_memory_batch_compiler`;
protocols without one (and standalone runners such as the pipelined-IDs
election) transparently keep the per-seed fallback path in
:class:`~repro.experiments.montecarlo.MonteCarloRunner`.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Dict, List, Optional, Sequence, Type, Union

import numpy as np

from repro.baselines.emek_keren import EmekKerenStyleElection
from repro.baselines.gilbert_newport import GilbertNewportKnockout
from repro.baselines.id_broadcast import IDBroadcastElection
from repro.batch.observers import (
    BatchObserver,
    BatchRunInfo,
    ObserverPipeline,
)
from repro.batch.results import BatchResult
from repro.batch.streams import ReplicaStreams, SeedLike
from repro.beeping.simulator import default_round_budget
from repro.core.protocol import MemoryProtocol
from repro.errors import ConfigurationError
from repro.graphs.topology import Topology


def draw_uniform_where(
    streams: ReplicaStreams, rows: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Per-replica conditional uniforms, consumed in node order.

    ``mask[i]`` marks the nodes of replica ``rows[i]`` that draw this round.
    Row ``i`` consumes exactly ``mask[i].sum()`` doubles from its own stream —
    the same count, order and values as the sequential simulator's
    short-circuited per-node ``rng.random()`` calls.  Positions that drew
    nothing hold 1.0, so ``draws < p`` is ``False`` there for any valid ``p``.
    """
    out = np.ones(mask.shape, dtype=np.float64)
    for i, row in enumerate(rows):
        node_mask = mask[i]
        count = int(node_mask.sum())
        if count:
            out[i, node_mask] = streams.generator(int(row)).random(count)
    return out


class MemoryBatchState(abc.ABC):
    """Vectorised batch state of one memory-baseline family.

    An instance owns the full ``(R, n)`` state arrays of a batch and exposes
    the per-round operations on an arbitrary subset of replicas (``rows`` is
    the array of *global* replica indices still active, which is also how the
    per-replica streams are addressed).  Implementations must consume
    randomness exactly as ``n`` sequential ``create_memory`` /
    ``update`` calls of the underlying protocol would.
    """

    @abc.abstractmethod
    def initialise(
        self, num_replicas: int, n: int, streams: ReplicaStreams
    ) -> None:
        """Create the initial memories of every replica (consuming init draws)."""

    @abc.abstractmethod
    def beep_mask(self, round_index: int, rows: np.ndarray) -> np.ndarray:
        """``wants_to_beep`` of every node of the given replicas; ``(len(rows), n)``."""

    @abc.abstractmethod
    def update(
        self,
        heard: np.ndarray,
        round_index: int,
        rows: np.ndarray,
        streams: ReplicaStreams,
    ) -> None:
        """Apply one synchronous memory update to the given replicas."""

    @abc.abstractmethod
    def leader_mask(self, rows: np.ndarray) -> np.ndarray:
        """``is_leader`` of every node of the given replicas; ``(len(rows), n)``."""

    def terminated_rows(self, rows: np.ndarray) -> np.ndarray:
        """Replicas whose every node reports termination; ``(len(rows),)``.

        Baselines without termination detection never terminate.
        """
        return np.zeros(len(rows), dtype=bool)


class _GilbertNewportBatch(MemoryBatchState):
    """Batch state of the clique knockout: candidacy plus the pre-drawn coin."""

    def __init__(self, protocol: GilbertNewportKnockout, topology: Topology) -> None:
        self._p = protocol.beep_probability

    def initialise(self, num_replicas: int, n: int, streams: ReplicaStreams) -> None:
        self._candidate = np.ones((num_replicas, n), dtype=bool)
        draws = np.empty((num_replicas, n), dtype=np.float64)
        for row in range(num_replicas):
            draws[row] = streams.generator(row).random(n)
        self._beep_now = draws < self._p

    def beep_mask(self, round_index: int, rows: np.ndarray) -> np.ndarray:
        return self._candidate[rows] & self._beep_now[rows]

    def update(
        self,
        heard: np.ndarray,
        round_index: int,
        rows: np.ndarray,
        streams: ReplicaStreams,
    ) -> None:
        candidate = self._candidate[rows]
        # A candidate that listened while somebody beeped withdraws.
        candidate &= self._beep_now[rows] | ~heard
        draws = draw_uniform_where(streams, rows, candidate)
        self._candidate[rows] = candidate
        self._beep_now[rows] = candidate & (draws < self._p)

    def leader_mask(self, rows: np.ndarray) -> np.ndarray:
        return self._candidate[rows]


class _EmekKerenBatch(MemoryBatchState):
    """Batch state of the epoch knockout: per-epoch wave flags and the coin."""

    def __init__(self, protocol: EmekKerenStyleElection, topology: Topology) -> None:
        self._p = protocol.beep_probability
        self._clock = protocol.clock

    def initialise(self, num_replicas: int, n: int, streams: ReplicaStreams) -> None:
        shape = (num_replicas, n)
        self._candidate = np.ones(shape, dtype=bool)
        self._initiated = np.zeros(shape, dtype=bool)
        self._relay_next = np.zeros(shape, dtype=bool)
        self._relayed = np.zeros(shape, dtype=bool)
        self._heard_epoch = np.zeros(shape, dtype=bool)
        draws = np.empty(shape, dtype=np.float64)
        for row in range(num_replicas):
            draws[row] = streams.generator(row).random(n)
        self._beep_start = draws < self._p

    def beep_mask(self, round_index: int, rows: np.ndarray) -> np.ndarray:
        if self._clock.is_phase_start(round_index):
            return self._candidate[rows] & self._beep_start[rows]
        return self._relay_next[rows].copy()

    def update(
        self,
        heard: np.ndarray,
        round_index: int,
        rows: np.ndarray,
        streams: ReplicaStreams,
    ) -> None:
        candidate = self._candidate[rows]
        relayed = self._relayed[rows]
        heard_epoch = self._heard_epoch[rows]
        if self._clock.is_phase_start(round_index):
            # The epoch's first round was just played: an initiating candidate
            # counts as having relayed, and the per-epoch flags reset.
            initiated = candidate & self._beep_start[rows]
            relayed = initiated.copy()
            heard_epoch = np.zeros_like(heard)
        else:
            initiated = self._initiated[rows]
            # A relay scheduled last round was just emitted.
            relayed = relayed | self._relay_next[rows]
        heard_epoch = heard_epoch | heard
        if self._clock.is_phase_end(round_index):
            relay_next = np.zeros_like(heard)
            candidate = candidate & ~(~initiated & heard_epoch)
            # Draw the next epoch's coin — surviving candidates only, matching
            # the sequential `candidate and rng.random() < p` short-circuit.
            draws = draw_uniform_where(streams, rows, candidate)
            self._beep_start[rows] = candidate & (draws < self._p)
        else:
            # Relay the first beep heard this epoch exactly once.
            relay_next = heard & ~relayed
        self._candidate[rows] = candidate
        self._initiated[rows] = initiated
        self._relay_next[rows] = relay_next
        self._relayed[rows] = relayed
        self._heard_epoch[rows] = heard_epoch

    def leader_mask(self, rows: np.ndarray) -> np.ndarray:
        return self._candidate[rows]


class _IDBroadcastBatch(MemoryBatchState):
    """Batch state of the bit-by-bit broadcast: ``(R, n, L)`` identifier bits."""

    def __init__(self, protocol: IDBroadcastElection, topology: Topology) -> None:
        self._clock = protocol.clock
        self._num_bits = protocol.id_bit_length
        self._mode = protocol.id_mode
        self._id_high = max(2, protocol.declared_n ** 3)

    def initialise(self, num_replicas: int, n: int, streams: ReplicaStreams) -> None:
        if self._mode == "unique":
            identifiers = np.broadcast_to(
                np.arange(1, n + 1, dtype=np.int64), (num_replicas, n)
            )
        else:
            identifiers = np.empty((num_replicas, n), dtype=np.int64)
            for row in range(num_replicas):
                identifiers[row] = streams.generator(row).integers(
                    1, self._id_high, size=n
                )
        shifts = np.arange(self._num_bits - 1, -1, -1)
        self._bits = ((identifiers[:, :, None] >> shifts) & 1).astype(bool)
        shape = (num_replicas, n)
        self._candidate = np.ones(shape, dtype=bool)
        self._relay_next = np.zeros(shape, dtype=bool)
        self._relayed = np.zeros(shape, dtype=bool)
        self._heard_phase = np.zeros(shape, dtype=bool)
        self._terminated = np.zeros(shape, dtype=bool)

    def beep_mask(self, round_index: int, rows: np.ndarray) -> np.ndarray:
        if self._clock.is_finished(round_index - 1):
            return np.zeros((len(rows), self._candidate.shape[1]), dtype=bool)
        if self._clock.is_phase_start(round_index):
            phase = self._clock.phase_of(round_index)
            mask = self._candidate[rows] & self._bits[rows, :, phase]
        else:
            mask = self._relay_next[rows]
        return mask & ~self._terminated[rows]

    def update(
        self,
        heard: np.ndarray,
        round_index: int,
        rows: np.ndarray,
        streams: ReplicaStreams,
    ) -> None:
        live = ~self._terminated[rows]
        phase = self._clock.phase_of(round_index)
        candidate = self._candidate[rows]
        relayed = self._relayed[rows]
        heard_phase = self._heard_phase[rows]
        bit = self._bits[rows, :, phase]
        if self._clock.is_phase_start(round_index):
            relayed = candidate & bit
            heard_phase = np.zeros_like(heard)
        else:
            relayed = relayed | self._relay_next[rows]
        heard_phase = heard_phase | heard
        terminated = self._terminated[rows]
        if self._clock.is_phase_end(round_index):
            relay_next = np.zeros_like(heard)
            # A 0-bit candidate that heard a wave this phase has lost.
            candidate = candidate & ~(~bit & heard_phase)
            if phase == self._num_bits - 1:
                terminated = np.ones_like(terminated)
        else:
            relay_next = heard & ~relayed
        self._candidate[rows] = np.where(live, candidate, self._candidate[rows])
        self._relay_next[rows] = np.where(live, relay_next, self._relay_next[rows])
        self._relayed[rows] = np.where(live, relayed, self._relayed[rows])
        self._heard_phase[rows] = np.where(
            live, heard_phase, self._heard_phase[rows]
        )
        self._terminated[rows] = np.where(live, terminated, self._terminated[rows])

    def leader_mask(self, rows: np.ndarray) -> np.ndarray:
        return self._candidate[rows]

    def terminated_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._terminated[rows].all(axis=1)


#: Compilers mapping a memory-protocol type to its batch-state factory.
MemoryBatchCompiler = Callable[[MemoryProtocol, Topology], MemoryBatchState]

_MEMORY_BATCH_COMPILERS: Dict[Type[MemoryProtocol], MemoryBatchCompiler] = {
    GilbertNewportKnockout: _GilbertNewportBatch,
    EmekKerenStyleElection: _EmekKerenBatch,
    IDBroadcastElection: _IDBroadcastBatch,
}


def register_memory_batch_compiler(
    protocol_type: Type[MemoryProtocol], compiler: MemoryBatchCompiler
) -> None:
    """Register a batch-state compiler for a memory-protocol type."""
    _MEMORY_BATCH_COMPILERS[protocol_type] = compiler


def _find_compiler(protocol: object) -> Optional[MemoryBatchCompiler]:
    for cls in type(protocol).__mro__:
        compiler = _MEMORY_BATCH_COMPILERS.get(cls)
        if compiler is not None:
            return compiler
    return None


def supports_batched_memory(protocol: object) -> bool:
    """Whether ``protocol`` has a registered vectorised batch implementation."""
    return isinstance(protocol, MemoryProtocol) and _find_compiler(protocol) is not None


def compile_memory_protocol(
    protocol: MemoryProtocol, topology: Topology
) -> MemoryBatchState:
    """Build the batch state for ``protocol``.

    Raises
    ------
    ConfigurationError
        If no batch compiler is registered for the protocol's type.
    """
    compiler = _find_compiler(protocol)
    if compiler is None:
        raise ConfigurationError(
            f"memory protocol {getattr(protocol, 'name', protocol)!r} has no "
            "registered batch implementation; run it through MemorySimulator "
            "or register one with register_memory_batch_compiler()"
        )
    return compiler(protocol, topology)


class BatchedMemoryEngine:
    """Simulate ``R`` independent replicas of a memory baseline at once.

    Parameters
    ----------
    topology:
        The communication graph shared by every replica.
    protocol:
        A memory protocol with a registered batch compiler (see
        :func:`supports_batched_memory`).
    """

    #: Graphs up to this many nodes use a dense float32 adjacency so the
    #: hear-mask is one BLAS matmul (same trade-off as ``BatchedEngine``).
    DENSE_ADJACENCY_MAX_NODES = 1024

    def __init__(self, topology: Topology, protocol: MemoryProtocol) -> None:
        self._topology = topology
        self._protocol = protocol
        self._compiler = _find_compiler(protocol)
        if self._compiler is None:
            raise ConfigurationError(
                f"memory protocol {getattr(protocol, 'name', protocol)!r} has "
                "no registered batch implementation"
            )
        self._adjacency = topology.sparse_adjacency()
        self._dense_adjacency: Optional[np.ndarray] = None
        if topology.n <= self.DENSE_ADJACENCY_MAX_NODES:
            self._dense_adjacency = self._adjacency.toarray().astype(np.float32)

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> MemoryProtocol:
        """The protocol being simulated."""
        return self._protocol

    def run(
        self,
        seeds: Union[Sequence[SeedLike], ReplicaStreams],
        max_rounds: Optional[int] = None,
        record_leader_counts: bool = True,
        stop_at_single_leader: bool = True,
        stability_window: int = 2,
        observers: Sequence[BatchObserver] = (),
    ) -> BatchResult:
        """Advance all replicas until they stop or exhaust the round budget.

        The parameters and per-replica semantics are those of
        :meth:`repro.beeping.simulator.MemorySimulator.run`: a replica stops
        once every node reports termination, or (with
        ``stop_at_single_leader``) once a single candidate has persisted for
        ``stability_window`` consecutive rounds.  Unlike the constant-state
        batch engine, no randomness is prefetched — each replica's generator
        is left in exactly the state its standalone run would leave it in.

        ``observers`` receive the shared
        :class:`~repro.batch.observers.BatchObserver` hooks with
        ``states=None`` and ``beeping=None`` (memory protocols have no
        state classes); the per-round ``(R, n)`` leader mask and the retire
        machinery work exactly as on the constant-state engine.
        """
        run_started = time.perf_counter()
        streams = (
            seeds if isinstance(seeds, ReplicaStreams) else ReplicaStreams(seeds)
        )
        num_replicas = len(streams)
        if max_rounds is None:
            max_rounds = default_round_budget(self._topology)
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0; got {max_rounds}")

        n = self._topology.n
        state = self._compiler(self._protocol, self._topology)
        state.initialise(num_replicas, n, streams)

        pipeline: Optional[ObserverPipeline] = None
        if observers:
            pipeline = ObserverPipeline(
                observers,
                BatchRunInfo(
                    num_replicas=num_replicas,
                    n=n,
                    protocol_name=self._protocol.name,
                    topology_name=self._topology.name,
                    seeds=streams.seed_values,
                ),
            )

        all_rows = np.arange(num_replicas)
        leaders_full = state.leader_mask(all_rows)
        counts = leaders_full.sum(axis=1).astype(np.int64)
        convergence = np.where(counts == 1, 0, -1).astype(np.int64)
        consecutive = np.where(counts == 1, 1, 0).astype(np.int64)
        rounds_executed = np.zeros(num_replicas, dtype=np.int64)
        count_rows: Optional[List[np.ndarray]] = (
            [counts.copy()] if record_leader_counts else None
        )
        window = max(1, stability_window)

        active_mask = np.ones(num_replicas, dtype=bool)
        if pipeline is not None:
            requested = pipeline.observe_round(
                0, None, None, leaders_full, active_mask.copy()
            )
            if requested is not None and requested.any():
                active_mask[requested] = False
                pipeline.notify_retire(np.flatnonzero(requested), 0)
        active = np.flatnonzero(active_mask)

        # In-flight heartbeat: looked up once per run; None costs a single
        # is-not-None check per round, and beats never touch the replica
        # streams, so records stay byte-identical with heartbeats on or off.
        from repro.telemetry.heartbeat import current_heartbeat

        heartbeat = current_heartbeat()

        round_index = 0
        while round_index < max_rounds and active.size:
            beeping = state.beep_mask(round_index, active)
            heard = self._heard(beeping)
            state.update(heard, round_index, active, streams)
            round_index += 1
            rounds_executed[active] = round_index

            if pipeline is not None:
                leaders_full = state.leader_mask(all_rows)
                active_counts = leaders_full[active].sum(axis=1)
            else:
                active_counts = state.leader_mask(active).sum(axis=1)
            counts[active] = active_counts
            hit = active_counts == 1
            previous = convergence[active]
            # The convergence round resets whenever the count leaves one,
            # exactly as the sequential simulator tracks it.
            convergence[active] = np.where(
                hit, np.where(previous == -1, round_index, previous), -1
            )
            consecutive[active] = np.where(hit, consecutive[active] + 1, 0)
            if count_rows is not None:
                count_rows.append(counts.copy())

            finished = state.terminated_rows(active)
            if stop_at_single_leader:
                finished = finished | (consecutive[active] >= window)
            if pipeline is not None:
                requested = pipeline.observe_round(
                    round_index, None, None, leaders_full, active_mask.copy()
                )
                if requested is not None:
                    finished = finished | requested[active]
            if finished.any():
                retired = active[finished]
                active_mask[retired] = False
                active = np.flatnonzero(active_mask)
                if pipeline is not None:
                    pipeline.notify_retire(retired, round_index)
            if heartbeat is not None and heartbeat.due(round_index):
                heartbeat.beat(
                    engine="batched-memory",
                    round_index=round_index,
                    replicas=num_replicas,
                    active=int(active.size),
                    converged=int((convergence >= 0).sum()),
                    leaderless=int((active_counts == 0).sum()),
                    rounds_advanced=int(rounds_executed.sum()),
                )

        if pipeline is not None:
            pipeline.finish(rounds_executed.copy())

        converged = (convergence != -1) & (counts == 1)
        final_leaders = state.leader_mask(all_rows)
        leader_node = np.where(
            counts == 1, final_leaders.argmax(axis=1), -1
        ).astype(np.int64)

        leader_counts: Optional[tuple] = None
        if count_rows is not None:
            stacked = np.stack(count_rows)
            leader_counts = tuple(
                tuple(int(c) for c in stacked[: rounds_executed[r] + 1, r])
                for r in range(num_replicas)
            )

        result = BatchResult(
            converged=converged,
            convergence_round=np.where(converged, convergence, -1),
            rounds_executed=rounds_executed,
            final_leader_count=counts,
            leader_node=leader_node,
            seeds=streams.seed_values,
            leader_counts=leader_counts,
            final_states=None,
            protocol_name=self._protocol.name,
            topology_name=self._topology.name,
        )

        # One telemetry sample per run (a no-op unless a MetricsRegistry is
        # installed); imported lazily to keep the engine importable without
        # pulling the telemetry stack.
        from repro.telemetry.metrics import sample_engine_run

        sample_engine_run(
            "batched-memory",
            rounds_advanced=int(rounds_executed.sum()),
            replicas=num_replicas,
            wall_seconds=time.perf_counter() - run_started,
            replicas_converged=int(converged.sum()),
            replicas_leaderless=int((counts == 0).sum()),
        )
        return result

    def _heard(self, beeping: np.ndarray) -> np.ndarray:
        """Who hears a beep, per replica: one stacked product for the batch."""
        if not beeping.any():
            return beeping.copy()
        as_float = beeping.astype(np.float32)
        if self._dense_adjacency is not None:
            neighbour = np.matmul(as_float, self._dense_adjacency)
        else:
            neighbour = self._adjacency.dot(as_float.T).T
        return (as_float + neighbour) > 0
