"""Per-replica random-number streams for the batched engine.

The batched engine advances ``R`` independent replicas in lockstep, but each
replica must consume randomness from *its own* generator so that replica
``r`` of a batch is bit-for-bit identical to a standalone
:class:`~repro.beeping.engine.VectorizedEngine` run seeded the same way.
This module owns that bookkeeping: turning a heterogeneous sequence of seeds
(ints, generators, ``None``) into one generator per replica, and filling the
per-round ``(R, n)`` uniform block row by row from the streams that are
still active.

Drawing row by row costs ``R`` calls to ``Generator.random`` per round —
each a single C call — which is negligible next to the Python-level round
loop the batch amortises away, and it is the only scheme that preserves
exact parity with the single-run engine (independent ``Generator`` streams
cannot be merged into one draw).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

SeedLike = Union[int, np.random.Generator, None]

#: Default memory cap (bytes) for the prefetched per-replica uniform blocks.
DEFAULT_RNG_BUFFER_BYTES = 8 << 20

#: Prefetching more than this many rounds ahead stops paying for itself.
MAX_PREFETCH_DEPTH = 128


def prefetch_depth(
    num_replicas: int,
    n: int,
    buffer_bytes: int = DEFAULT_RNG_BUFFER_BYTES,
    max_depth: int = MAX_PREFETCH_DEPTH,
) -> int:
    """Rounds of uniforms to prefetch per :meth:`ReplicaStreams.fill_blocks`.

    The single source of truth for the RNG-buffer geometry shared by the
    interpreted round loop and the fused kernels: both consume blocks of
    exactly this many ``(R, n)`` float64 uniform rounds, so the two paths
    cannot drift in how far they advance the per-replica generators (the
    buffer's *depth*, not just its contents, is part of the byte-parity
    contract — a replica's stream is advanced in whole blocks).
    """
    itemsize = np.dtype(np.float64).itemsize
    return max(
        1, min(max_depth, buffer_bytes // max(1, itemsize * num_replicas * n))
    )


class ReplicaStreams:
    """One independent ``numpy`` generator per replica of a batch.

    Parameters
    ----------
    seeds:
        One entry per replica: an integer seed (recorded as provenance and
        passed to :func:`numpy.random.default_rng`), an existing generator
        (used as-is, recorded seed ``None``), or ``None`` (OS entropy).

    .. warning::
        The batched engine prefetches uniforms in blocks, so a stream may be
        advanced up to a block beyond the rounds its replica actually
        consumed.  The replica's *results* are unaffected, but a caller who
        passes a ``Generator`` object and keeps drawing from it afterwards
        will not observe the post-run state a standalone
        ``VectorizedEngine.run`` would leave.  Pass integer seeds when the
        generator's state matters beyond the run.
    """

    def __init__(self, seeds: Sequence[SeedLike]) -> None:
        if len(seeds) == 0:
            raise ConfigurationError("a batch needs at least one replica seed")
        self._seed_values: Tuple[Optional[int], ...] = tuple(
            int(seed) if isinstance(seed, (int, np.integer)) else None
            for seed in seeds
        )
        self._generators: List[np.random.Generator] = [
            seed if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
            for seed in seeds
        ]

    def __len__(self) -> int:
        return len(self._generators)

    @property
    def seed_values(self) -> Tuple[Optional[int], ...]:
        """Integer seed per replica where known, ``None`` otherwise."""
        return self._seed_values

    def generator(self, replica: int) -> np.random.Generator:
        """The generator backing one replica's stream."""
        return self._generators[replica]

    def fill_blocks(self, active: np.ndarray, out: np.ndarray) -> None:
        """Prefetch ``out.shape[0]`` rounds of uniforms for each active replica.

        ``out`` has shape ``(depth, R, n)``; ``out[k, r]`` receives the
        ``k``-th upcoming round of replica ``r``'s stream.  A single
        ``Generator.random((depth, n))`` call produces exactly the same
        numbers as ``depth`` successive ``random(n)`` calls (the generator
        emits one flat stream of doubles, filled row-major), so prefetching
        preserves bit-for-bit parity with the standalone engine while
        amortising the per-replica Python call over ``depth`` rounds.
        """
        depth, _, n = out.shape
        for replica in active:
            out[:, replica, :] = self._generators[replica].random((depth, n))


def independent_streams(master_seed: int, count: int) -> ReplicaStreams:
    """``count`` statistically independent streams spawned from one seed.

    Uses ``SeedSequence.spawn``, so streams do not overlap.  Note these are
    *not* the streams of any integer-seeded single run; for parity with a
    loop over ``VectorizedEngine.run(rng=seed)`` build the streams from the
    same integer seeds instead (see
    :func:`repro.experiments.seeds.trial_seeds`).
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1; got {count}")
    sequence = np.random.SeedSequence(master_seed)
    return ReplicaStreams(
        [np.random.default_rng(child) for child in sequence.spawn(count)]
    )
