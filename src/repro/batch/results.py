"""Result container for batched Monte-Carlo executions.

A :class:`BatchResult` is the ``(R, n)``-shaped sibling of
:class:`~repro.beeping.simulator.SimulationResult`: per-replica convergence
flags, convergence rounds, executed rounds, final leader counts and leader
node ids, stored as flat numpy arrays so that sweep aggregation stays
vectorised.  Individual replicas can still be viewed as ordinary
:class:`SimulationResult` objects for drop-in reuse by existing reporting
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.beeping.simulator import SimulationResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched run: ``R`` independent replicas on one graph.

    Attributes
    ----------
    converged:
        Boolean array of shape ``(R,)``.
    convergence_round:
        Int array of shape ``(R,)``; ``-1`` where the replica did not
        converge within its budget.
    rounds_executed:
        Int array of shape ``(R,)``; rounds actually simulated per replica
        (retired replicas stop early).
    final_leader_count:
        Int array of shape ``(R,)``.
    leader_node:
        Int array of shape ``(R,)``; the elected node id where exactly one
        leader remains, ``-1`` otherwise.
    seeds:
        Per-replica integer seed where known, ``None`` otherwise.
    leader_counts:
        Optional per-replica leader-count trajectories (round 0 included).
    final_states:
        Optional ``(R, n)`` array of final integer states (absent when the
        batch was assembled from memory-protocol runs).
    protocol_name, topology_name:
        Provenance metadata.
    """

    converged: np.ndarray
    convergence_round: np.ndarray
    rounds_executed: np.ndarray
    final_leader_count: np.ndarray
    leader_node: np.ndarray
    seeds: Tuple[Optional[int], ...]
    leader_counts: Optional[Tuple[Tuple[int, ...], ...]] = None
    final_states: Optional[np.ndarray] = None
    protocol_name: str = ""
    topology_name: str = ""

    def __post_init__(self) -> None:
        shapes = {
            self.converged.shape,
            self.convergence_round.shape,
            self.rounds_executed.shape,
            self.final_leader_count.shape,
            self.leader_node.shape,
            (len(self.seeds),),
        }
        if len(shapes) != 1:
            raise ConfigurationError(
                f"inconsistent per-replica array shapes in BatchResult: {shapes}"
            )

    @property
    def num_replicas(self) -> int:
        """Number of replicas ``R`` in the batch."""
        return int(self.converged.shape[0])

    @property
    def convergence_rate(self) -> float:
        """Fraction of replicas that elected a single leader in budget."""
        return float(self.converged.mean()) if self.num_replicas else 0.0

    @property
    def total_replica_rounds(self) -> int:
        """Sum of simulated rounds over all replicas (throughput unit)."""
        return int(self.rounds_executed.sum())

    def effective_rounds(self) -> np.ndarray:
        """Convergence round where converged, executed rounds otherwise.

        This is the quantity every sweep aggregates (mean/median/q95 rounds).
        """
        return np.where(
            self.converged, self.convergence_round, self.rounds_executed
        ).astype(np.int64)

    def replica(self, index: int) -> SimulationResult:
        """View replica ``index`` as an ordinary :class:`SimulationResult`."""
        converged = bool(self.converged[index])
        counts: Tuple[int, ...] = ()
        if self.leader_counts is not None:
            counts = tuple(self.leader_counts[index])
        return SimulationResult(
            converged=converged,
            convergence_round=(
                int(self.convergence_round[index]) if converged else None
            ),
            rounds_executed=int(self.rounds_executed[index]),
            final_leader_count=int(self.final_leader_count[index]),
            leader_counts=counts,
            protocol_name=self.protocol_name,
            topology_name=self.topology_name,
            seed=self.seeds[index],
        )

    def to_simulation_results(self) -> Tuple[SimulationResult, ...]:
        """All replicas as standalone results, in batch order."""
        return tuple(self.replica(i) for i in range(self.num_replicas))

    def as_dicts(self) -> List[Dict[str, object]]:
        """Per-replica plain dictionaries for JSON/CSV serialisation."""
        return [
            {
                "replica": index,
                "seed": self.seeds[index],
                "converged": bool(self.converged[index]),
                "convergence_round": (
                    int(self.convergence_round[index])
                    if self.converged[index]
                    else None
                ),
                "rounds_executed": int(self.rounds_executed[index]),
                "final_leader_count": int(self.final_leader_count[index]),
                "leader_node": int(self.leader_node[index]),
                "protocol_name": self.protocol_name,
                "topology_name": self.topology_name,
            }
            for index in range(self.num_replicas)
        ]

    @classmethod
    def concatenate(cls, batches: Sequence["BatchResult"]) -> "BatchResult":
        """Merge shard batches back into one batch, in shard order.

        The inverse of slicing a seed list into sub-cells: every per-replica
        array is concatenated, so the merged batch is byte-identical to a
        single run over the concatenated seed list (the batched engines are
        batch-size independent — each replica consumes only its own RNG
        stream).  Optional fields (``leader_counts``, ``final_states``) must
        be present in all shards or in none: the shards of one cell all run
        the same code path, so a mixture indicates mismatched batches.
        """
        batches = list(batches)
        if not batches:
            raise ConfigurationError("cannot concatenate 0 batch results")
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        for batch in batches[1:]:
            if (
                batch.protocol_name != first.protocol_name
                or batch.topology_name != first.topology_name
            ):
                raise ConfigurationError(
                    f"cannot concatenate batches from different runs: "
                    f"{(first.protocol_name, first.topology_name)} vs "
                    f"{(batch.protocol_name, batch.topology_name)}"
                )
        with_counts = sum(b.leader_counts is not None for b in batches)
        if with_counts not in (0, len(batches)):
            raise ConfigurationError(
                "cannot concatenate batches where only some shards recorded "
                "leader-count trajectories"
            )
        with_states = sum(b.final_states is not None for b in batches)
        if with_states not in (0, len(batches)):
            raise ConfigurationError(
                "cannot concatenate batches where only some shards recorded "
                "final states"
            )
        return cls(
            converged=np.concatenate([b.converged for b in batches]),
            convergence_round=np.concatenate(
                [b.convergence_round for b in batches]
            ),
            rounds_executed=np.concatenate(
                [b.rounds_executed for b in batches]
            ),
            final_leader_count=np.concatenate(
                [b.final_leader_count for b in batches]
            ),
            leader_node=np.concatenate([b.leader_node for b in batches]),
            seeds=tuple(seed for b in batches for seed in b.seeds),
            leader_counts=(
                tuple(counts for b in batches for counts in b.leader_counts)
                if with_counts
                else None
            ),
            final_states=(
                np.concatenate([b.final_states for b in batches], axis=0)
                if with_states
                else None
            ),
            protocol_name=first.protocol_name,
            topology_name=first.topology_name,
        )

    @classmethod
    def from_simulation_results(
        cls,
        results: Sequence[SimulationResult],
        seeds: Optional[Sequence[Optional[int]]] = None,
        leader_nodes: Optional[Sequence[int]] = None,
    ) -> "BatchResult":
        """Assemble a batch from per-replica single runs (the fallback path).

        Memory-protocol baselines do not expose final state vectors, so
        ``final_states`` is left ``None`` and ``leader_node`` defaults to
        ``-1`` unless provided.
        """
        if not results:
            raise ConfigurationError("cannot assemble a BatchResult from 0 runs")
        if seeds is None:
            seeds = [result.seed for result in results]
        if len(seeds) != len(results):
            raise ConfigurationError(
                f"{len(seeds)} seeds for {len(results)} results"
            )
        if leader_nodes is None:
            leader_nodes = [-1] * len(results)
        return cls(
            converged=np.array([r.converged for r in results], dtype=bool),
            convergence_round=np.array(
                [
                    r.convergence_round if r.convergence_round is not None else -1
                    for r in results
                ],
                dtype=np.int64,
            ),
            rounds_executed=np.array(
                [r.rounds_executed for r in results], dtype=np.int64
            ),
            final_leader_count=np.array(
                [r.final_leader_count for r in results], dtype=np.int64
            ),
            leader_node=np.array(leader_nodes, dtype=np.int64),
            seeds=tuple(
                int(seed) if seed is not None else None for seed in seeds
            ),
            leader_counts=tuple(tuple(r.leader_counts) for r in results),
            final_states=None,
            protocol_name=results[0].protocol_name,
            topology_name=results[0].topology_name,
        )
