"""Synchronous stone-age model and the adapter for running beeping protocols."""

from repro.stoneage.adapter import (
    BEEP,
    SILENT,
    BeepingToStoneAgeAdapter,
    run_in_stone_age_model,
)
from repro.stoneage.model import (
    Observation,
    StoneAgeProtocol,
    StoneAgeResult,
    StoneAgeSimulator,
)

__all__ = [
    "BEEP",
    "BeepingToStoneAgeAdapter",
    "Observation",
    "SILENT",
    "StoneAgeProtocol",
    "StoneAgeResult",
    "StoneAgeSimulator",
    "run_in_stone_age_model",
]
