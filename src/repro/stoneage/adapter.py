"""Running beeping protocols in the synchronous stone-age model.

The paper remarks that BFW "can also be implemented in a synchronous version
of the stone-age model".  The reason is that with the two-symbol alphabet
``{BEEP, SILENT}`` and bounded-counting threshold ``b = 1``, a stone-age node
observes exactly one bit about its neighbourhood — "is some neighbour
displaying BEEP?" — which is the same information a beeping-model node gets
by listening.  The adapter below wraps any
:class:`~repro.core.protocol.BeepingProtocol` as a
:class:`~repro.stoneage.model.StoneAgeProtocol`, so that the equivalence can
be tested executably (experiment E9): with identical randomness-free inputs
the two simulators must produce identical leader-count trajectories in
distribution, and the wrapped protocol must satisfy the same invariants.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from repro.core.protocol import BeepingProtocol
from repro.errors import ConfigurationError
from repro.graphs.topology import Topology
from repro.stoneage.model import (
    Observation,
    StoneAgeProtocol,
    StoneAgeResult,
    StoneAgeSimulator,
)

#: The symbol displayed by a beeping node.
BEEP = "beep"
#: The symbol displayed by a listening node.
SILENT = "silent"


class BeepingToStoneAgeAdapter(StoneAgeProtocol):
    """Wrap a beeping protocol as a stone-age protocol with alphabet {beep, silent}.

    Parameters
    ----------
    protocol:
        Any constant-state beeping protocol (BFW and its variants).
    """

    alphabet: Tuple[Hashable, ...] = (BEEP, SILENT)

    def __init__(self, protocol: BeepingProtocol) -> None:
        protocol.validate()
        self._protocol = protocol
        self.name = f"stone-age({protocol.name})"

    @property
    def wrapped(self) -> BeepingProtocol:
        """The underlying beeping protocol."""
        return self._protocol

    @property
    def initial_state(self) -> Hashable:
        return self._protocol.initial_state

    def message(self, state: Hashable) -> Hashable:
        return BEEP if self._protocol.is_beeping(state) else SILENT

    def transition(
        self, state: Hashable, observation: Observation, rng: np.random.Generator
    ) -> Hashable:
        # A node "hears a beep" (δ⊤) if it is beeping itself, or if at least
        # one neighbour displays the BEEP symbol — observable even with b = 1.
        heard = self._protocol.is_beeping(state) or observation.at_least(BEEP, 1)
        return self._protocol.transition(state, heard, rng)

    def is_leader(self, state: Hashable) -> bool:
        return self._protocol.is_leader(state)


def run_in_stone_age_model(
    topology: Topology,
    protocol: BeepingProtocol,
    max_rounds: int,
    rng=None,
    threshold: int = 1,
    record_states: bool = False,
) -> StoneAgeResult:
    """Run a beeping protocol inside the stone-age simulator.

    Parameters
    ----------
    threshold:
        The bounded-counting threshold ``b``.  Any ``b ≥ 1`` yields the same
        behaviour for two-symbol protocols, since only the "at least one
        beeping neighbour" predicate is consulted; ``b = 1`` is the minimal
        (and default) choice.
    """
    if max_rounds < 0:
        raise ConfigurationError(f"max_rounds must be >= 0; got {max_rounds}")
    adapter = BeepingToStoneAgeAdapter(protocol)
    simulator = StoneAgeSimulator(topology, adapter, threshold=threshold)
    return simulator.run(
        max_rounds=max_rounds, rng=rng, record_states=record_states
    )
