"""A synchronous variant of the stone-age model of Emek and Wattenhofer [13].

In the stone-age model every node runs a finite-state machine and displays a
message drawn from a finite alphabet.  When a node is activated it observes,
for every message ``σ`` in the alphabet, the number of neighbours currently
displaying ``σ`` — but only up to a fixed *bounded-counting* threshold ``b``
(the "one-two-many" principle).  The original model is asynchronous; the
paper states that BFW can be implemented in a *synchronous* version, which is
what this module provides: all nodes are activated simultaneously in
discrete rounds.

With alphabet ``{beep, silent}`` and threshold ``b = 1`` the observation a
node makes ("is at least one neighbour displaying *beep*?") is exactly the
information available in the beeping model, which is how the adapter in
:mod:`repro.stoneage.adapter` runs beeping protocols unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.topology import Topology


@dataclass(frozen=True)
class Observation:
    """What a node observes about its neighbourhood in one round.

    Attributes
    ----------
    counts:
        For every message symbol, the number of neighbours displaying it,
        *clamped* at the threshold ``b``.
    threshold:
        The bounded-counting threshold ``b``.
    """

    counts: Mapping[Hashable, int]
    threshold: int

    def at_least(self, symbol: Hashable, count: int = 1) -> bool:
        """Whether at least ``count`` neighbours display ``symbol``.

        ``count`` may not exceed the threshold, since larger counts are not
        observable in the model.
        """
        if count > self.threshold:
            raise ConfigurationError(
                f"cannot observe counts above the threshold b={self.threshold}"
            )
        return self.counts.get(symbol, 0) >= count


class StoneAgeProtocol(abc.ABC):
    """A protocol for the synchronous stone-age model.

    Each node has an internal state and displays a message derived from that
    state; transitions may depend on the bounded neighbourhood observation.
    """

    #: Human-readable name.
    name: str = "stone-age-protocol"

    #: The message alphabet displayed by nodes.
    alphabet: Tuple[Hashable, ...] = ()

    @property
    @abc.abstractmethod
    def initial_state(self) -> Hashable:
        """The state every node starts in."""

    @abc.abstractmethod
    def message(self, state: Hashable) -> Hashable:
        """The symbol a node in ``state`` displays."""

    @abc.abstractmethod
    def transition(
        self, state: Hashable, observation: Observation, rng: np.random.Generator
    ) -> Hashable:
        """The next state given the current state and the observation."""

    def is_leader(self, state: Hashable) -> bool:
        """Whether ``state`` is interpreted as a leader state (default: no)."""
        return False


class StoneAgeSimulator:
    """Synchronous simulator for the stone-age model.

    Parameters
    ----------
    topology:
        The communication graph.
    protocol:
        The protocol to run.
    threshold:
        The bounded-counting threshold ``b ≥ 1``.
    """

    def __init__(
        self, topology: Topology, protocol: StoneAgeProtocol, threshold: int = 1
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(f"threshold b must be >= 1; got {threshold}")
        self._topology = topology
        self._protocol = protocol
        self._threshold = threshold

    @property
    def topology(self) -> Topology:
        """The communication graph."""
        return self._topology

    @property
    def protocol(self) -> StoneAgeProtocol:
        """The protocol being simulated."""
        return self._protocol

    @property
    def threshold(self) -> int:
        """The bounded-counting threshold ``b``."""
        return self._threshold

    def run(
        self,
        max_rounds: int,
        rng: RngLike = None,
        initial_states: Optional[Sequence[Hashable]] = None,
        record_states: bool = False,
    ) -> "StoneAgeResult":
        """Execute the protocol for up to ``max_rounds`` rounds.

        Parameters
        ----------
        max_rounds:
            Number of synchronous rounds to simulate.
        rng:
            Seed or generator for probabilistic transitions.
        initial_states:
            Per-node initial states; defaults to the protocol's initial state.
        record_states:
            Whether to record the full state history.
        """
        generator = as_rng(rng)
        n = self._topology.n
        if initial_states is None:
            states: List[Hashable] = [self._protocol.initial_state] * n
        else:
            states = list(initial_states)
            if len(states) != n:
                raise SimulationError(
                    f"{len(states)} initial states given for {n} nodes"
                )

        history: List[Tuple[Hashable, ...]] = []
        leader_counts: List[int] = []

        def record() -> None:
            if record_states:
                history.append(tuple(states))
            leader_counts.append(
                sum(1 for state in states if self._protocol.is_leader(state))
            )

        record()
        for _ in range(max_rounds):
            messages = [self._protocol.message(state) for state in states]
            new_states: List[Hashable] = []
            for node in range(n):
                counts: Dict[Hashable, int] = {}
                for neighbour in self._topology.neighbors(node):
                    symbol = messages[neighbour]
                    current = counts.get(symbol, 0)
                    if current < self._threshold:
                        counts[symbol] = current + 1
                observation = Observation(counts=counts, threshold=self._threshold)
                new_states.append(
                    self._protocol.transition(states[node], observation, generator)
                )
            states = new_states
            record()

        return StoneAgeResult(
            final_states=tuple(states),
            leader_counts=tuple(leader_counts),
            history=tuple(history),
            protocol_name=self._protocol.name,
            topology_name=self._topology.name,
        )


@dataclass(frozen=True)
class StoneAgeResult:
    """Outcome of a stone-age simulation."""

    final_states: Tuple[Hashable, ...]
    leader_counts: Tuple[int, ...]
    history: Tuple[Tuple[Hashable, ...], ...]
    protocol_name: str = ""
    topology_name: str = ""

    @property
    def final_leader_count(self) -> int:
        """Number of leaders at the end of the run."""
        return self.leader_counts[-1] if self.leader_counts else 0

    def convergence_round(self) -> Optional[int]:
        """First round from which the leader count is one and stays one."""
        counts = np.asarray(self.leader_counts)
        if len(counts) == 0 or counts[-1] != 1:
            return None
        not_single = np.flatnonzero(counts != 1)
        if len(not_single) == 0:
            return 0
        return int(not_single[-1]) + 1
