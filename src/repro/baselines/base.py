"""Shared infrastructure for the Table-1 baseline protocols.

Each baseline is annotated with a :class:`BaselineInfo` record mirroring the
columns of the paper's Table 1 (round complexity, unique identifiers,
knowledge, safety, number of states, termination detection), so that the
table generator can print the qualitative columns next to the measured
round counts.

The baselines that broadcast information by beep waves share the same
phase/flooding skeleton, provided here as :class:`PhaseClock` and
:class:`FloodingState`: a phase lasts a fixed number of rounds (derived from
the known diameter), a wave is initiated in the first round of a phase, and
every node relays the first beep it hears within the phase exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BaselineInfo:
    """Qualitative properties of a protocol, as listed in Table 1.

    Attributes
    ----------
    reference:
        Bibliographic reference the baseline is modelled after (e.g. "[14]").
    round_complexity:
        The asymptotic round complexity claimed by the reference.
    unique_ids:
        Whether unique identifiers are required.
    knowledge:
        Global knowledge required: subset of ``{"n", "D"}`` as a display
        string (``"none"`` when empty).
    safety:
        How the "never more than one leader" condition is guaranteed
        (``"det."``, ``"w.h.p."`` or ``"eventual"`` for protocols that only
        solve eventual leader election).
    states:
        Asymptotic number of memory states per node.
    termination_detection:
        Whether nodes detect that the election has terminated.
    """

    reference: str
    round_complexity: str
    unique_ids: bool
    knowledge: str
    safety: str
    states: str
    termination_detection: bool

    def as_row(self) -> Tuple[str, str, str, str, str, str]:
        """The Table-1 row (without the protocol name and measurements)."""
        return (
            self.round_complexity,
            "yes" if self.unique_ids else "no",
            self.knowledge,
            self.safety,
            self.states,
            "yes" if self.termination_detection else "no",
        )


@dataclass
class PhaseClock:
    """Bookkeeping for protocols organised in fixed-length phases.

    Parameters
    ----------
    phase_length:
        Number of rounds per phase; must be at least ``D + 2`` for a wave
        initiated in the first round of the phase to reach every node and for
        eliminations to be evaluated in the last round.
    num_phases:
        Total number of phases the protocol runs for (``None`` for unbounded).
    """

    phase_length: int
    num_phases: Optional[int] = None

    def __post_init__(self) -> None:
        if self.phase_length < 2:
            raise ConfigurationError(
                f"phase length must be at least 2; got {self.phase_length}"
            )
        if self.num_phases is not None and self.num_phases < 1:
            raise ConfigurationError(
                f"number of phases must be >= 1; got {self.num_phases}"
            )

    def phase_of(self, round_index: int) -> int:
        """The phase index containing ``round_index``."""
        return round_index // self.phase_length

    def round_in_phase(self, round_index: int) -> int:
        """The offset of ``round_index`` within its phase."""
        return round_index % self.phase_length

    def is_phase_start(self, round_index: int) -> bool:
        """Whether ``round_index`` is the first round of a phase."""
        return self.round_in_phase(round_index) == 0

    def is_phase_end(self, round_index: int) -> bool:
        """Whether ``round_index`` is the last round of a phase."""
        return self.round_in_phase(round_index) == self.phase_length - 1

    def is_finished(self, round_index: int) -> bool:
        """Whether all phases have completed by ``round_index`` (inclusive)."""
        if self.num_phases is None:
            return False
        return round_index >= self.phase_length * self.num_phases - 1

    @property
    def total_rounds(self) -> Optional[int]:
        """Total number of rounds across all phases (``None`` if unbounded)."""
        if self.num_phases is None:
            return None
        return self.phase_length * self.num_phases


@dataclass
class FloodingState:
    """Per-node wave-relaying bookkeeping within one phase.

    A node relays the first beep it hears in a phase exactly once, one round
    after hearing it; this makes a wave initiated in the first round of a
    phase reach every node within ``D`` rounds and then die out.
    """

    relay_pending: bool = False
    relayed_this_phase: bool = False
    heard_this_phase: bool = False

    def reset_for_new_phase(self) -> None:
        """Clear the per-phase flags at a phase boundary."""
        self.relay_pending = False
        self.relayed_this_phase = False
        self.heard_this_phase = False

    def observe(self, heard_beep: bool) -> None:
        """Record what the node heard this round and schedule a relay if needed."""
        if heard_beep:
            self.heard_this_phase = True
            if not self.relayed_this_phase:
                self.relay_pending = True

    def pop_relay(self) -> bool:
        """Whether the node should beep now to relay; clears the pending flag."""
        if self.relay_pending and not self.relayed_this_phase:
            self.relay_pending = False
            self.relayed_this_phase = True
            return True
        return False


def phase_length_for_diameter(diameter: int, slack: int = 2) -> int:
    """The phase length used by the wave-based baselines: ``D + slack``."""
    if diameter < 1:
        raise ConfigurationError(f"diameter must be >= 1; got {diameter}")
    if slack < 2:
        raise ConfigurationError(f"slack must be >= 2; got {slack}")
    return diameter + slack
