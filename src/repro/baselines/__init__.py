"""Baseline leader-election algorithms for the Table-1 comparison."""

from repro.baselines.base import (
    BaselineInfo,
    FloodingState,
    PhaseClock,
    phase_length_for_diameter,
)
from repro.baselines.emek_keren import EmekKerenStyleElection
from repro.baselines.gilbert_newport import GilbertNewportKnockout
from repro.baselines.id_broadcast import IDBroadcastElection
from repro.baselines.pipelined_ids import (
    PipelinedElectionOutcome,
    PipelinedIDElection,
)

__all__ = [
    "BaselineInfo",
    "EmekKerenStyleElection",
    "FloodingState",
    "GilbertNewportKnockout",
    "IDBroadcastElection",
    "PhaseClock",
    "PipelinedElectionOutcome",
    "PipelinedIDElection",
    "phase_length_for_diameter",
]
