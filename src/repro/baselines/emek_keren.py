"""A diameter-aware epoch protocol, modelled after Emek and Keren [12].

[12] gives a self-stabilising leader-election protocol for weak communication
models that uses ``O(D)`` states, knows the diameter ``D`` (but neither ``n``
nor identifiers), has no termination detection, and stabilises in
``O(D log n)`` rounds w.h.p.  Its essential mechanism — synchronising the
network into epochs of length ``Θ(D)`` and letting candidates knock each
other out once per epoch via flooded waves — is what this baseline
reproduces (without the self-stabilisation machinery, since all our
experiments start from a clean initial configuration).

The epoch structure:

* Epochs last ``D + 2`` rounds.  In the first round of an epoch every
  remaining candidate beeps with probability 1/2.
* During the epoch every node relays the first beep it hears exactly once,
  so initiated waves flood the whole graph before the epoch ends.
* In the last round of the epoch, a candidate that did *not* initiate a wave
  this epoch but heard one withdraws.

Whenever at least two candidates remain, an epoch eliminates at least one of
them with probability at least ``1/4``, so ``O(log n)`` epochs —
``O(D log n)`` rounds — suffice w.h.p., matching the complexity reported in
Table 1 for [12].  The per-node memory is the epoch phase counter
(``O(D)`` states) plus a constant number of flags.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.base import BaselineInfo, PhaseClock, phase_length_for_diameter
from repro.core.protocol import MemoryProtocol
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class _EpochMemory:
    """Per-node memory of the epoch protocol."""

    candidate: bool
    initiated_this_epoch: bool = False
    relay_next: bool = False
    relayed: bool = False
    heard_this_epoch: bool = False
    beep_at_epoch_start: bool = False


class EmekKerenStyleElection(MemoryProtocol):
    """Epoch-synchronised knockout election that knows the diameter.

    Parameters
    ----------
    diameter:
        The (known) diameter of the communication graph, or an upper bound.
    beep_probability:
        Probability with which a candidate initiates a wave at the start of
        each epoch.
    """

    name = "emek-keren-epochs"
    requires_unique_ids = False
    required_knowledge = ("D",)

    info = BaselineInfo(
        reference="[12]-style",
        round_complexity="O(D log n)",
        unique_ids=False,
        knowledge="D",
        safety="w.h.p.",
        states="O(D)",
        termination_detection=False,
    )

    def __init__(self, diameter: int, beep_probability: float = 0.5) -> None:
        if diameter < 1:
            raise ConfigurationError(f"diameter must be >= 1; got {diameter}")
        if not 0.0 < beep_probability < 1.0:
            raise ConfigurationError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._diameter = diameter
        self._p = beep_probability
        self._clock = PhaseClock(
            phase_length=phase_length_for_diameter(diameter), num_phases=None
        )

    @property
    def clock(self) -> PhaseClock:
        """The epoch clock (exposed for tests)."""
        return self._clock

    @property
    def beep_probability(self) -> float:
        """Probability of initiating a wave at the start of each epoch."""
        return self._p

    @property
    def epoch_length(self) -> int:
        """Number of rounds per epoch."""
        return self._clock.phase_length

    def create_memory(
        self, node: int, n: int, rng: np.random.Generator
    ) -> _EpochMemory:
        return _EpochMemory(
            candidate=True,
            beep_at_epoch_start=bool(rng.random() < self._p),
        )

    def wants_to_beep(self, memory: _EpochMemory, round_index: int) -> bool:
        if self._clock.is_phase_start(round_index):
            return memory.candidate and memory.beep_at_epoch_start
        return memory.relay_next

    def update(
        self,
        memory: _EpochMemory,
        heard_beep: bool,
        round_index: int,
        rng: np.random.Generator,
    ) -> _EpochMemory:
        candidate = memory.candidate
        relay_next = memory.relay_next
        relayed = memory.relayed
        heard_this_epoch = memory.heard_this_epoch
        initiated = memory.initiated_this_epoch
        beep_at_epoch_start = memory.beep_at_epoch_start

        if self._clock.is_phase_start(round_index):
            # The epoch's first round was just played.
            initiated = candidate and beep_at_epoch_start
            relayed = initiated
            relay_next = False
            heard_this_epoch = False

        elif relay_next:
            relay_next = False
            relayed = True

        if heard_beep:
            heard_this_epoch = True
            if not relayed and not relay_next and not self._clock.is_phase_end(
                round_index
            ):
                relay_next = True

        if self._clock.is_phase_end(round_index):
            if candidate and not initiated and heard_this_epoch:
                candidate = False
            # Draw the coin for the next epoch's first round.
            beep_at_epoch_start = bool(candidate and rng.random() < self._p)

        return replace(
            memory,
            candidate=candidate,
            initiated_this_epoch=initiated,
            relay_next=relay_next,
            relayed=relayed,
            heard_this_epoch=heard_this_epoch,
            beep_at_epoch_start=beep_at_epoch_start,
        )

    def is_leader(self, memory: _EpochMemory) -> bool:
        return memory.candidate
