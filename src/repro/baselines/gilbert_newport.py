"""A constant-state knockout election for single-hop networks, after Gilbert
and Newport [17].

[17] studies what constant-state, identifier-free protocols can compute in
the single-hop (clique) beeping model, and leader election is solved there by
repeated randomised knockout: in every round each remaining candidate beeps
with probability 1/2, and a candidate that *listened* while some other node
beeped withdraws.  Two facts make this work on a clique:

* at least one candidate always survives (the beeping candidates never
  withdraw in that round), and
* whenever at least two candidates remain, the number of candidates strictly
  decreases in a round with constant probability, so a single candidate
  remains after ``O(log n)`` rounds in expectation and
  ``O(log n + log(1/ε))`` rounds with probability ``1 − ε``.

The protocol is uniform, uses a constant number of states and no
identifiers; unlike [17] we do not implement the termination-detection
add-on (which is where the ``log(1/ε)`` state blow-up of the original paper
comes from), so the variant here solves *eventual* leader election —
matching the row of Table 1 it represents and making it directly comparable
with BFW on cliques.

On graphs that are not cliques the knockout only acts within
neighbourhoods: two non-adjacent candidates can never eliminate each other,
so the protocol converges to a maximal independent set of candidates rather
than a single leader.  The Table-1 experiment therefore only runs it on
cliques, and the test suite checks the multi-leader outcome on a path as a
negative control.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.base import BaselineInfo
from repro.core.protocol import MemoryProtocol
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class _KnockoutMemory:
    """Per-node memory: candidacy plus the pre-drawn coin for the next round."""

    candidate: bool
    beep_now: bool


class GilbertNewportKnockout(MemoryProtocol):
    """Randomised knockout election for cliques with constant state.

    Parameters
    ----------
    beep_probability:
        Probability with which a remaining candidate beeps each round
        (1/2 in [17]).
    """

    name = "gilbert-newport-knockout"
    requires_unique_ids = False
    required_knowledge = ()

    info = BaselineInfo(
        reference="[17]-style (clique only)",
        round_complexity="O(log n)  (single-hop)",
        unique_ids=False,
        knowledge="none",
        safety="w.h.p.",
        states="O(1)",
        termination_detection=False,
    )

    def __init__(self, beep_probability: float = 0.5) -> None:
        if not 0.0 < beep_probability < 1.0:
            raise ConfigurationError(
                f"beep probability must lie strictly in (0, 1); got {beep_probability}"
            )
        self._p = beep_probability

    @property
    def beep_probability(self) -> float:
        """Per-round beeping probability of a candidate."""
        return self._p

    def create_memory(
        self, node: int, n: int, rng: np.random.Generator
    ) -> _KnockoutMemory:
        return _KnockoutMemory(
            candidate=True, beep_now=bool(rng.random() < self._p)
        )

    def wants_to_beep(self, memory: _KnockoutMemory, round_index: int) -> bool:
        return memory.candidate and memory.beep_now

    def update(
        self,
        memory: _KnockoutMemory,
        heard_beep: bool,
        round_index: int,
        rng: np.random.Generator,
    ) -> _KnockoutMemory:
        candidate = memory.candidate
        if candidate and not memory.beep_now and heard_beep:
            # Listened while somebody beeped: withdraw.
            candidate = False
        beep_now = bool(candidate and rng.random() < self._p)
        return replace(memory, candidate=candidate, beep_now=beep_now)

    def is_leader(self, memory: _KnockoutMemory) -> bool:
        return memory.candidate
