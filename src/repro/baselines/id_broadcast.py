"""Bit-by-bit ID broadcast election — the classical O(D log n) baseline.

This baseline captures the algorithmic shape shared by the deterministic
protocol of Förster, Seidel and Wattenhofer [14] and the candidate-broadcast
phases of Ghaffari and Haeupler [15]: every node holds an identifier of
``Θ(log n)`` bits, and the maximum identifier is elected by broadcasting it
bit by bit with beep waves, one bit per phase of ``Θ(D)`` rounds.

Concretely, with identifiers of ``L`` bits (most significant bit first):

* In the first round of phase ``i``, every remaining candidate whose ``i``-th
  bit is 1 beeps, initiating a wave.
* During the phase, every node relays the first beep it hears exactly once
  (one round after hearing it), so the wave floods the graph in ``≤ D``
  rounds and then dies out.
* In the last round of the phase, a candidate whose ``i``-th bit is 0 and
  that heard a beep during the phase withdraws: some other candidate has a
  larger identifier.

After all ``L`` phases only the candidates holding the maximum identifier
remain — exactly one when identifiers are unique (the ``unique`` mode), or
exactly one with high probability when identifiers are drawn at random from
a polynomially large range (the ``random`` mode, which matches the
"no unique IDs but knows n" row of Table 1).

The protocol needs to know (an upper bound on) the diameter ``D`` to size its
phases and (an upper bound on) ``n`` to size identifiers, uses ``Θ(log n)``
bits of memory per node, and detects termination after the last phase — all
properties reported in Table 1 for this family of algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineInfo, PhaseClock, phase_length_for_diameter
from repro.core.protocol import MemoryProtocol
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class _NodeMemory:
    """Immutable per-node memory of the ID-broadcast protocol."""

    node: int
    id_bits: Tuple[bool, ...]
    candidate: bool
    relay_next: bool = False
    relayed: bool = False
    heard_in_phase: bool = False
    terminated: bool = False


class IDBroadcastElection(MemoryProtocol):
    """Leader election by bit-by-bit broadcast of the maximum identifier.

    Parameters
    ----------
    diameter:
        The (known) diameter of the communication graph, or an upper bound.
    n:
        The (known) number of nodes, or an upper bound; used to size the
        identifier space.
    id_mode:
        ``"unique"`` — node ``u`` uses identifier ``u + 1`` (the
        "Unique IDs: yes" rows of Table 1); ``"random"`` — each node draws a
        uniform identifier from ``[1, n³]``, unique w.h.p. (the
        "Unique IDs: no, knows n" row).
    id_bit_length:
        Override the identifier length in bits (defaults to ``⌈log₂(n+1)⌉``
        for unique mode and ``⌈3 log₂(n+1)⌉`` for random mode).
    """

    name = "id-broadcast"
    requires_unique_ids = True
    required_knowledge = ("n", "D")

    info = BaselineInfo(
        reference="[14]/[15]-style",
        round_complexity="O(D log n)",
        unique_ids=True,
        knowledge="n, D",
        safety="det.",
        states="Omega(n)",
        termination_detection=True,
    )

    def __init__(
        self,
        diameter: int,
        n: int,
        id_mode: str = "unique",
        id_bit_length: Optional[int] = None,
    ) -> None:
        if diameter < 1:
            raise ConfigurationError(f"diameter must be >= 1; got {diameter}")
        if n < 1:
            raise ConfigurationError(f"n must be >= 1; got {n}")
        if id_mode not in ("unique", "random"):
            raise ConfigurationError(
                f"id_mode must be 'unique' or 'random'; got {id_mode!r}"
            )
        self._diameter = diameter
        self._n = n
        self._id_mode = id_mode
        if id_bit_length is None:
            base_bits = max(1, math.ceil(math.log2(n + 1)))
            id_bit_length = base_bits if id_mode == "unique" else 3 * base_bits
        if id_bit_length < 1:
            raise ConfigurationError(
                f"id_bit_length must be >= 1; got {id_bit_length}"
            )
        self._bits = id_bit_length
        self._clock = PhaseClock(
            phase_length=phase_length_for_diameter(diameter),
            num_phases=id_bit_length,
        )
        if id_mode == "unique":
            self.requires_unique_ids = True
            self.name = "id-broadcast-unique"
        else:
            self.requires_unique_ids = False
            self.name = "id-broadcast-random"
            self.info = replace(
                self.info,
                reference="[11]-style (randomised IDs)",
                unique_ids=False,
                knowledge="n, D",
                safety="w.h.p.",
            )

    @property
    def clock(self) -> PhaseClock:
        """The phase clock (exposed for tests and the experiment harness)."""
        return self._clock

    @property
    def id_mode(self) -> str:
        """Identifier mode: ``"unique"`` or ``"random"``."""
        return self._id_mode

    @property
    def id_bit_length(self) -> int:
        """Number of identifier bits broadcast (one phase per bit)."""
        return self._bits

    @property
    def declared_n(self) -> int:
        """The network size (or upper bound) the protocol was told."""
        return self._n

    @property
    def total_rounds(self) -> int:
        """Worst-case number of rounds before termination is declared."""
        total = self._clock.total_rounds
        assert total is not None
        return total

    # ------------------------------------------------------------------ #
    # MemoryProtocol interface
    # ------------------------------------------------------------------ #

    def create_memory(self, node: int, n: int, rng: np.random.Generator) -> _NodeMemory:
        if self._id_mode == "unique":
            identifier = node + 1
        else:
            identifier = int(rng.integers(1, max(2, self._n**3)))
        bits = _to_bits(identifier, self._bits)
        return _NodeMemory(node=node, id_bits=bits, candidate=True)

    def wants_to_beep(self, memory: _NodeMemory, round_index: int) -> bool:
        if memory.terminated or self._clock.is_finished(round_index - 1):
            return False
        if self._clock.is_phase_start(round_index):
            phase = self._clock.phase_of(round_index)
            return memory.candidate and memory.id_bits[phase]
        return memory.relay_next

    def update(
        self,
        memory: _NodeMemory,
        heard_beep: bool,
        round_index: int,
        rng: np.random.Generator,
    ) -> _NodeMemory:
        if memory.terminated:
            return memory
        phase = self._clock.phase_of(round_index)
        offset = self._clock.round_in_phase(round_index)

        candidate = memory.candidate
        relay_next = memory.relay_next
        relayed = memory.relayed
        heard_in_phase = memory.heard_in_phase

        if offset == 0:
            # The first round of a phase was just played: reset per-phase
            # flags; an initiating candidate counts as having relayed.
            initiated = candidate and memory.id_bits[phase]
            relayed = initiated
            relay_next = False
            heard_in_phase = False
        elif relay_next:
            # The relay scheduled last round was just emitted.
            relay_next = False
            relayed = True

        if heard_beep:
            heard_in_phase = True
            if not relayed and not relay_next and not self._clock.is_phase_end(
                round_index
            ):
                relay_next = True

        terminated = memory.terminated
        if self._clock.is_phase_end(round_index):
            if candidate and not memory.id_bits[phase] and heard_in_phase:
                candidate = False
            if phase == self._bits - 1:
                terminated = True

        return replace(
            memory,
            candidate=candidate,
            relay_next=relay_next,
            relayed=relayed,
            heard_in_phase=heard_in_phase,
            terminated=terminated,
        )

    def is_leader(self, memory: _NodeMemory) -> bool:
        return memory.candidate

    def has_terminated(self, memory: _NodeMemory) -> bool:
        return memory.terminated


def _to_bits(value: int, length: int) -> Tuple[bool, ...]:
    """Big-endian bit representation of ``value`` on ``length`` bits."""
    if value < 0:
        raise ConfigurationError(f"identifier must be non-negative; got {value}")
    return tuple(bool((value >> (length - 1 - i)) & 1) for i in range(length))
