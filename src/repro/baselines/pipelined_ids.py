"""An O(D + log n)-shaped election, modelled after Dufoulon, Burman and
Beauquier [11].

The time-optimal beeping algorithms first shrink the candidate set locally
(so that surviving candidates are sparse) in ``O(log n)`` rounds, and then
let the surviving candidates compete globally by *pipelining* the broadcast
of their identifiers, overlapping the ``Θ(log n)`` bits with the ``Θ(D)``
propagation so that the total cost is ``O(D + log n)`` instead of
``O(D · log n)``.

Reproducing the exact bit-level pipelining machinery of [11] (interval
encodings, collision-resolution gadgets) is outside the scope of a
shape-faithful baseline.  Instead, this module implements the two stages at
the information level:

1. **Local knockout** (beeping-faithful): for ``2⌈log₂ n⌉`` rounds every
   remaining candidate beeps with probability 1/2 and withdraws if it
   listened while hearing a beep.  This is exactly the coin-flipping
   knockout used by the preamble of [11] (and by [17] on cliques), and it is
   implementable with beeps and constant per-round state.
2. **Pipelined maximum-identifier dissemination** (information-level
   idealisation): every node repeatedly forwards the largest identifier it
   has seen; after ``ecc ≤ D`` rounds every node knows the global maximum,
   and the unique candidate holding it remains leader.  In the real
   algorithm this information travels as pipelined beep waves at the same
   asymptotic cost (``D + O(log n)`` rounds); we charge the idealised stage
   ``D + ⌈log₂ n⌉`` rounds so that the *reported round count* matches the
   reference's complexity shape.

The substitution is documented in DESIGN.md/EXPERIMENTS.md: Table 1 compares
round complexities and knowledge assumptions, and both are preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineInfo
from repro.beeping.simulator import SimulationResult
from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError
from repro.graphs.topology import Topology


@dataclass(frozen=True)
class PipelinedElectionOutcome:
    """Detailed outcome of a pipelined-ID election run."""

    winner: int
    knockout_rounds: int
    dissemination_rounds: int
    candidates_after_knockout: int

    @property
    def total_rounds(self) -> int:
        """Total charged round count (knockout + pipelined dissemination)."""
        return self.knockout_rounds + self.dissemination_rounds


class PipelinedIDElection:
    """Standalone runner for the O(D + log n)-shaped election.

    Unlike the other baselines this class is not a
    :class:`~repro.core.protocol.MemoryProtocol`: its second stage is an
    information-level idealisation that needs neighbour-to-neighbour value
    exchange, so it drives the topology directly and reports a
    :class:`~repro.beeping.simulator.SimulationResult` with the charged round
    count.

    Parameters
    ----------
    knockout_factor:
        The local-knockout stage runs for ``knockout_factor · ⌈log₂ n⌉``
        rounds (default 2).
    """

    name = "pipelined-ids"
    requires_unique_ids = False
    required_knowledge = ("n",)

    info = BaselineInfo(
        reference="[11]-style (pipelined)",
        round_complexity="O(D + log n)",
        unique_ids=False,
        knowledge="n",
        safety="w.h.p.",
        states="Omega(n)",
        termination_detection=True,
    )

    def __init__(self, knockout_factor: int = 2) -> None:
        if knockout_factor < 1:
            raise ConfigurationError(
                f"knockout_factor must be >= 1; got {knockout_factor}"
            )
        self._knockout_factor = knockout_factor

    def run(
        self,
        topology: Topology,
        rng: RngLike = None,
        max_rounds: Optional[int] = None,
    ) -> SimulationResult:
        """Run the election and return a standard :class:`SimulationResult`.

        ``max_rounds`` is accepted for interface compatibility; the algorithm
        always terminates after its fixed schedule, and the result's
        ``rounds_executed`` is the charged round count.
        """
        outcome = self.run_detailed(topology, rng=rng)
        seed_value = rng if isinstance(rng, int) else None
        total = outcome.total_rounds
        if max_rounds is not None and total > max_rounds:
            # The schedule exceeded the caller's budget: report non-convergence.
            return SimulationResult(
                converged=False,
                convergence_round=None,
                rounds_executed=max_rounds,
                final_leader_count=outcome.candidates_after_knockout,
                protocol_name=self.name,
                topology_name=topology.name,
                seed=seed_value,
            )
        return SimulationResult(
            converged=True,
            convergence_round=total,
            rounds_executed=total,
            final_leader_count=1,
            leader_counts=(),
            protocol_name=self.name,
            topology_name=topology.name,
            seed=seed_value,
        )

    def run_batch(
        self,
        topology: Topology,
        seeds: Sequence[RngLike],
        max_rounds: Optional[int] = None,
    ):
        """Run one seeded replica per entry of ``seeds``, all at once.

        Replica for replica identical to looping :meth:`run` over the seeds:
        each replica consumes its own ``as_rng(seed)`` stream in exactly the
        order the single-run path consumes it (one ``random(n)`` draw per
        knockout round while more than one candidate survives, then one
        ``integers`` draw for the identifiers), so the batch entry point is
        byte-compatible with the loop — and with any seed-list sharding of
        the batch.  Unlike the loop, the batch records the elected node per
        replica in ``leader_node``.

        Returns
        -------
        repro.batch.results.BatchResult
        """
        from repro.batch.results import BatchResult

        if len(seeds) == 0:
            raise ConfigurationError(
                "run_batch needs at least one seed; got an empty sequence"
            )
        generators = [as_rng(seed) for seed in seeds]
        num_replicas = len(generators)
        n = topology.n
        log_n = max(1, math.ceil(math.log2(max(2, n))))

        # Stage 1 — local coin-flipping knockout, all replicas together.
        # The RNG draws stay per-replica (each replica owns its stream) and
        # are skipped exactly when the single-run loop would have broken out.
        candidate = np.ones((num_replicas, n), dtype=bool)
        adjacency = topology.sparse_adjacency()
        knockout_rounds = self._knockout_factor * log_n
        for _ in range(knockout_rounds):
            active = np.flatnonzero(candidate.sum(axis=1) > 1)
            if active.size == 0:
                break
            beeps = np.zeros((active.size, n), dtype=bool)
            for row, replica in enumerate(active):
                beeps[row] = candidate[replica] & (
                    generators[replica].random(n) < 0.5
                )
            heard = adjacency.dot(beeps.astype(np.int32).T).T > 0
            candidate[active] &= beeps | ~heard
        candidates_after_knockout = candidate.sum(axis=1).astype(np.int64)

        # Stage 2 — pipelined maximum-identifier dissemination, vectorised
        # over replicas through a padded neighbour-index matrix.
        identifiers = np.stack(
            [
                generator.integers(1, max(2, n**3), size=n)
                for generator in generators
            ]
        )
        best = np.where(candidate, identifiers, 0).astype(np.int64)
        neighbour_index = _neighbour_index_matrix(topology)
        steps = np.zeros(num_replicas, dtype=np.int64)
        done = np.zeros(num_replicas, dtype=bool)
        step = 0
        while not done.all():
            step += 1
            rows = np.flatnonzero(~done)
            neighbour_best = _neighbourhood_max_rows(neighbour_index, best[rows])
            updated = np.maximum(best[rows], neighbour_best)
            finished = (updated == best[rows]).all(axis=1)
            steps[rows[finished]] = step
            done[rows[finished]] = True
            best[rows] = updated

        converged = np.ones(num_replicas, dtype=bool)
        total_rounds = knockout_rounds + steps + log_n
        rounds_executed = total_rounds.copy()
        convergence_round = total_rounds.copy()
        final_leader_count = np.ones(num_replicas, dtype=np.int64)
        leader_node = np.full(num_replicas, -1, dtype=np.int64)
        for replica in range(num_replicas):
            winner_id = int(best[replica].max())
            winners = np.flatnonzero(
                candidate[replica] & (identifiers[replica] == winner_id)
            )
            leader_node[replica] = (
                int(winners.min())
                if len(winners) > 0
                else int(np.argmax(best[replica]))
            )
        if max_rounds is not None:
            exceeded = total_rounds > max_rounds
            converged[exceeded] = False
            convergence_round[exceeded] = -1
            rounds_executed[exceeded] = max_rounds
            final_leader_count[exceeded] = candidates_after_knockout[exceeded]
            leader_node[exceeded] = -1
        return BatchResult(
            converged=converged,
            convergence_round=convergence_round,
            rounds_executed=rounds_executed,
            final_leader_count=final_leader_count,
            leader_node=leader_node,
            seeds=tuple(
                int(seed) if isinstance(seed, (int, np.integer)) else None
                for seed in seeds
            ),
            leader_counts=tuple(() for _ in generators),
            final_states=None,
            protocol_name=self.name,
            topology_name=topology.name,
        )

    def run_detailed(
        self, topology: Topology, rng: RngLike = None
    ) -> PipelinedElectionOutcome:
        """Run the election and return the per-stage details."""
        generator = as_rng(rng)
        n = topology.n
        log_n = max(1, math.ceil(math.log2(max(2, n))))

        # Stage 1 — local coin-flipping knockout (beeping-faithful).
        candidate = np.ones(n, dtype=bool)
        adjacency = topology.sparse_adjacency()
        knockout_rounds = self._knockout_factor * log_n
        for _ in range(knockout_rounds):
            if candidate.sum() <= 1:
                break
            beeps = candidate & (generator.random(n) < 0.5)
            heard = adjacency.dot(beeps.astype(np.int32)) > 0
            # A candidate that listened while a neighbour beeped withdraws.
            candidate &= beeps | ~heard

        # Stage 2 — pipelined dissemination of the maximum identifier
        # (information-level idealisation of the beep-wave pipelining).
        identifiers = generator.integers(1, max(2, n**3), size=n)
        best = np.where(candidate, identifiers, 0).astype(np.int64)
        dissemination_steps = 0
        while True:
            neighbour_best = _neighbourhood_max(topology, best)
            updated = np.maximum(best, neighbour_best)
            dissemination_steps += 1
            if np.array_equal(updated, best):
                break
            best = updated
        winner_id = int(best.max())
        winners = np.flatnonzero(candidate & (identifiers == winner_id))
        # Random identifiers collide only with polynomially small probability;
        # break a residual tie by smallest node index, as [11] does with IDs.
        winner = int(winners.min()) if len(winners) > 0 else int(np.argmax(best))

        dissemination_rounds = dissemination_steps + log_n
        return PipelinedElectionOutcome(
            winner=winner,
            knockout_rounds=knockout_rounds,
            dissemination_rounds=dissemination_rounds,
            candidates_after_knockout=int(candidate.sum()),
        )


def _neighbourhood_max(topology: Topology, values: np.ndarray) -> np.ndarray:
    """For each node, the maximum of ``values`` over its neighbours."""
    result = np.zeros_like(values)
    for node in topology.nodes():
        neighbours = topology.neighbors(node)
        if neighbours:
            result[node] = max(values[neighbour] for neighbour in neighbours)
    return result


def _neighbour_index_matrix(topology: Topology) -> np.ndarray:
    """``(n, max_degree)`` neighbour indices, padded with the sentinel ``n``.

    The sentinel points one past the real nodes; callers append a zero
    column to their value arrays so padding (and isolated nodes) contribute
    ``0`` to the maximum — the same "0 for no neighbours" convention as
    :func:`_neighbourhood_max`.
    """
    n = topology.n
    neighbour_lists = [topology.neighbors(node) for node in topology.nodes()]
    max_degree = max((len(nbrs) for nbrs in neighbour_lists), default=0)
    index = np.full((n, max(1, max_degree)), n, dtype=np.int64)
    for node, neighbours in enumerate(neighbour_lists):
        if neighbours:
            index[node, : len(neighbours)] = neighbours
    return index


def _neighbourhood_max_rows(
    neighbour_index: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`_neighbourhood_max` over an ``(R, n)`` value array.

    ``values`` must be non-negative (identifiers are ≥ 0 here), so the zero
    padding column never wins a maximum it should not.
    """
    padded = np.concatenate(
        [values, np.zeros((values.shape[0], 1), dtype=values.dtype)], axis=1
    )
    return padded[:, neighbour_index].max(axis=2)
