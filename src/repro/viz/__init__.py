"""Terminal visualisation: ASCII plots, tables and space–time diagrams."""

from repro.viz.ascii_plot import ascii_plot, sparkline
from repro.viz.spacetime import (
    STATE_GLYPHS,
    leader_count_timeline,
    spacetime_diagram,
)
from repro.viz.table_format import (
    format_cell,
    render_markdown_table,
    render_table,
)

__all__ = [
    "STATE_GLYPHS",
    "ascii_plot",
    "format_cell",
    "leader_count_timeline",
    "render_markdown_table",
    "render_table",
    "sparkline",
    "spacetime_diagram",
]
