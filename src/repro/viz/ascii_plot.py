"""ASCII line/scatter plots for terminal-only environments.

The reproduction runs in environments without a display or plotting
libraries, so the figure experiments render their series as ASCII plots —
good enough to eyeball scaling shapes (straight lines in log–log space) and
to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Symbols cycled through for multiple series on the same plot.
SERIES_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    title: Optional[str] = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter plot.

    Parameters
    ----------
    series:
        Mapping from series label to a sequence of ``(x, y)`` points.
    width, height:
        Plot area dimensions in characters.
    logx, logy:
        Use logarithmic axes (points with non-positive coordinates are
        rejected when the corresponding axis is logarithmic).
    title, xlabel, ylabel:
        Optional annotations.
    """
    if width < 10 or height < 5:
        raise ConfigurationError("plot area must be at least 10x5 characters")
    points: List[Tuple[float, float, str]] = []
    for index, (label, data) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for x, y in data:
            if logx and x <= 0:
                raise ConfigurationError(f"non-positive x={x} on a log axis")
            if logy and y <= 0:
                raise ConfigurationError(f"non-positive y={y} on a log axis")
            points.append((float(x), float(y), marker))
    if not points:
        raise ConfigurationError("nothing to plot")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [tx(x) for x, _, _ in points]
    ys = [ty(y) for _, y, _ in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        column = int(round((tx(x) - x_min) / x_span * (width - 1)))
        row = int(round((ty(y) - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{_fmt(y_max, logy)}"
    bottom_label = f"{_fmt(y_min, logy)}"
    label_width = max(len(top_label), len(bottom_label), len(ylabel))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and ylabel:
            prefix = ylabel.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width
        + "  "
        + _fmt(x_min, logx)
        + " " * max(1, width - len(_fmt(x_min, logx)) - len(_fmt(x_max, logx)))
        + _fmt(x_max, logx)
    )
    lines.append(x_axis)
    if xlabel:
        lines.append(" " * label_width + "  " + xlabel.center(width))
    legend = "   ".join(
        f"{SERIES_MARKERS[index % len(SERIES_MARKERS)]} = {label}"
        for index, label in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def _fmt(value: float, is_log: bool) -> str:
    if is_log:
        return f"1e{value:.1f}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line sparkline of a series (used for leader-count trajectories)."""
    if not values:
        raise ConfigurationError("nothing to plot")
    blocks = " .:-=+*#%@"
    data = list(values)
    if len(data) > width:
        # Downsample by taking the maximum of each bucket, preserving peaks.
        bucket = len(data) / width
        data = [
            max(data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    low, high = min(data), max(data)
    span = high - low or 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))] for value in data
    )
