"""Plain-text and Markdown table rendering for experiment reports.

The benchmark harness prints its regenerated tables to stdout; these helpers
keep the formatting consistent (column alignment, numeric rounding) across
all experiments without pulling in heavyweight dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_cell(value: object, float_digits: int = 2) -> str:
    """Render a single cell: floats are rounded, everything else is ``str()``-ed."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_digits: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have the same length as ``headers``.
    float_digits:
        Number of decimal places for float cells.
    title:
        Optional title printed above the table.
    """
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = [format_cell(value, float_digits) for value in row]
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row {cells!r} has {len(cells)} cells; expected {len(headers)}"
            )
        formatted_rows.append(cells)

    widths = [len(str(header)) for header in headers]
    for cells in formatted_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(
        str(header).ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for cells in formatted_rows:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
        )
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_digits: int = 2,
) -> str:
    """Render a GitHub-flavoured Markdown table (used by EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        cells = [format_cell(value, float_digits) for value in row]
        if len(cells) != len(headers):
            raise ConfigurationError(
                f"row {cells!r} has {len(cells)} cells; expected {len(headers)}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
