"""Space–time diagrams of beep waves on path and cycle graphs.

On a path, plotting node index horizontally and time vertically turns an
execution into a picture in which beep waves appear as diagonal streaks
moving one node per round, leaders appear as the sources of those streaks,
and wave collisions/eliminations are plainly visible — the best way to *see*
the mechanism behind Theorem 2's ``D²`` behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.beeping.trace import ExecutionTrace
from repro.core.states import State
from repro.errors import ConfigurationError

#: Character used for each state in the diagram.
STATE_GLYPHS = {
    State.W_LEADER: "L",
    State.B_LEADER: "!",
    State.F_LEADER: "l",
    State.W_FOLLOWER: ".",
    State.B_FOLLOWER: "*",
    State.F_FOLLOWER: ",",
}


def spacetime_diagram(
    trace: ExecutionTrace,
    max_rounds: Optional[int] = None,
    round_stride: int = 1,
    show_round_numbers: bool = True,
) -> str:
    """Render a trace as a space–time diagram (one row per round).

    Glyph legend: ``L`` waiting leader, ``!`` beeping leader, ``l`` frozen
    leader, ``.`` waiting non-leader, ``*`` beeping non-leader, ``,`` frozen
    non-leader.

    Parameters
    ----------
    trace:
        Any BFW-family trace (states must be :class:`~repro.core.states.State`
        values).
    max_rounds:
        Limit on the number of rounds rendered (earliest rounds are kept).
    round_stride:
        Render only every ``round_stride``-th round, for long executions.
    show_round_numbers:
        Prefix every row with its round index.
    """
    if round_stride < 1:
        raise ConfigurationError(f"round_stride must be >= 1; got {round_stride}")
    last_round = trace.num_rounds if max_rounds is None else min(
        trace.num_rounds, max_rounds
    )
    width = len(str(last_round))
    lines: List[str] = []
    legend = "legend: L=waiting leader  !=beeping leader  l=frozen leader  " \
             ".=waiting  *=beeping  ,=frozen"
    lines.append(legend)
    for round_index in range(0, last_round + 1, round_stride):
        row = "".join(
            STATE_GLYPHS[State(int(value))] for value in trace.states[round_index]
        )
        if show_round_numbers:
            lines.append(f"{round_index:>{width}} |{row}|")
        else:
            lines.append(f"|{row}|")
    return "\n".join(lines)


def leader_count_timeline(trace: ExecutionTrace, width: int = 60) -> str:
    """A compact one-line rendering of the leader count over time."""
    from repro.viz.ascii_plot import sparkline

    counts = trace.leader_counts()
    return (
        f"leaders {counts[0]} -> {counts[-1]} over {trace.num_rounds} rounds: "
        + sparkline([float(c) for c in counts], width=width)
    )
