"""Population-protocols substrate and classic leader-election protocols."""

from repro.population.protocols import (
    FOLLOWER,
    INFECTED,
    LEADER,
    SUSCEPTIBLE,
    CoinedElimination,
    EpidemicBroadcast,
    PairwiseElimination,
)
from repro.population.scheduler import (
    PopulationProtocol,
    PopulationResult,
    PopulationScheduler,
)

__all__ = [
    "CoinedElimination",
    "EpidemicBroadcast",
    "FOLLOWER",
    "INFECTED",
    "LEADER",
    "PairwiseElimination",
    "PopulationProtocol",
    "PopulationResult",
    "PopulationScheduler",
    "SUSCEPTIBLE",
]
