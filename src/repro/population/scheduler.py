"""A population-protocols substrate (random pairwise interactions).

The related-work section of the paper compares the beeping model with
population protocols [3], where at every time step a uniformly random
*ordered* pair of adjacent agents (initiator, responder) interacts and both
update their states according to a joint transition function.  Leader
election in this model is the subject of a rich literature (Table 1's
population-protocols row and experiment E10); this module provides the
scheduler and the measurement conventions (interactions vs. parallel time).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rng import RngLike, as_rng
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.topology import Topology


class PopulationProtocol(abc.ABC):
    """A population protocol: joint transition on (initiator, responder) states."""

    #: Human-readable name.
    name: str = "population-protocol"

    @property
    @abc.abstractmethod
    def initial_state(self) -> Hashable:
        """The state every agent starts in."""

    @abc.abstractmethod
    def interact(
        self,
        initiator_state: Hashable,
        responder_state: Hashable,
        rng: np.random.Generator,
    ) -> Tuple[Hashable, Hashable]:
        """The new (initiator, responder) states after an interaction."""

    @abc.abstractmethod
    def is_leader(self, state: Hashable) -> bool:
        """Whether ``state`` is a leader state."""


@dataclass(frozen=True)
class PopulationResult:
    """Outcome of a population-protocol execution.

    Attributes
    ----------
    converged:
        Whether a single leader remained at the end.
    convergence_interactions:
        Number of interactions after which a single leader remained for good
        (``None`` if the execution did not converge).
    interactions_executed:
        Total number of interactions simulated.
    final_leader_count:
        Number of leaders at the end.
    parallel_time:
        ``interactions / n`` — the standard parallel-time normalisation.
    """

    converged: bool
    convergence_interactions: Optional[int]
    interactions_executed: int
    final_leader_count: int
    n: int
    protocol_name: str = ""
    topology_name: str = ""

    @property
    def parallel_time(self) -> float:
        """Interactions divided by the population size."""
        return self.interactions_executed / max(1, self.n)

    @property
    def convergence_parallel_time(self) -> Optional[float]:
        """Convergence interactions divided by the population size."""
        if self.convergence_interactions is None:
            return None
        return self.convergence_interactions / max(1, self.n)


class PopulationScheduler:
    """Random-scheduler simulator for population protocols on a graph.

    At each step an edge of the communication graph is drawn uniformly at
    random and oriented uniformly at random (initiator, responder); the
    classical "complete interaction graph" setting is recovered by passing a
    clique topology.
    """

    def __init__(self, topology: Topology, protocol: PopulationProtocol) -> None:
        if topology.num_edges == 0:
            raise ConfigurationError(
                "population protocols need at least one edge to interact over"
            )
        self._topology = topology
        self._protocol = protocol
        self._edges = np.asarray(topology.edges, dtype=np.int64)

    @property
    def topology(self) -> Topology:
        """The interaction graph."""
        return self._topology

    @property
    def protocol(self) -> PopulationProtocol:
        """The protocol being simulated."""
        return self._protocol

    def run(
        self,
        max_interactions: int,
        rng: RngLike = None,
        check_interval: Optional[int] = None,
        stop_at_single_leader: bool = True,
        initial_states: Optional[Sequence[Hashable]] = None,
    ) -> PopulationResult:
        """Simulate up to ``max_interactions`` pairwise interactions.

        Parameters
        ----------
        max_interactions:
            Budget of interactions.
        rng:
            Seed or generator.
        check_interval:
            How often (in interactions) to re-count leaders; defaults to
            ``n`` (i.e. once per unit of parallel time).
        stop_at_single_leader:
            Stop early once a single leader remains (sound whenever the
            protocol never creates new leaders, which holds for the
            protocols shipped in :mod:`repro.population.protocols`).
        initial_states:
            Per-agent initial states, overriding the protocol's default (used
            e.g. to seed a single infected agent for broadcast measurements).
        """
        if max_interactions < 0:
            raise ConfigurationError(
                f"max_interactions must be >= 0; got {max_interactions}"
            )
        generator = as_rng(rng)
        n = self._topology.n
        if check_interval is None:
            check_interval = max(1, n)

        if initial_states is None:
            states: List[Hashable] = [self._protocol.initial_state] * n
        else:
            states = list(initial_states)
            if len(states) != n:
                raise SimulationError(
                    f"{len(states)} initial states given for {n} agents"
                )
        leader_count = sum(
            1 for state in states if self._protocol.is_leader(state)
        )
        convergence: Optional[int] = 0 if leader_count == 1 else None

        interactions = 0
        num_edges = len(self._edges)
        while interactions < max_interactions:
            batch = min(check_interval, max_interactions - interactions)
            edge_indices = generator.integers(0, num_edges, size=batch)
            orientations = generator.random(batch) < 0.5
            for edge_index, flip in zip(edge_indices, orientations):
                u, v = self._edges[edge_index]
                initiator, responder = (int(v), int(u)) if flip else (int(u), int(v))
                states[initiator], states[responder] = self._protocol.interact(
                    states[initiator], states[responder], generator
                )
            interactions += batch

            leader_count = sum(
                1 for state in states if self._protocol.is_leader(state)
            )
            if leader_count == 1:
                if convergence is None:
                    convergence = interactions
                if stop_at_single_leader:
                    break
            else:
                convergence = None

        return PopulationResult(
            converged=leader_count == 1 and convergence is not None,
            convergence_interactions=convergence if leader_count == 1 else None,
            interactions_executed=interactions,
            final_leader_count=leader_count,
            n=n,
            protocol_name=self._protocol.name,
            topology_name=self._topology.name,
        )
