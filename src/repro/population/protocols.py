"""Classic population-protocol leader election and helper protocols.

These protocols populate the population-protocols row of the related-work
comparison (experiment E10):

* :class:`PairwiseElimination` — the folklore two-state protocol: every agent
  starts as a leader, and when two leaders interact one of them (the
  responder) survives.  On the clique it converges after ``Θ(n²)`` expected
  interactions (``Θ(n)`` parallel time), which is the lower bound for
  constant-state protocols [10]; the benchmark verifies this quadratic
  scaling empirically.
* :class:`CoinedElimination` — a small refinement where the surviving leader
  is chosen by a fair coin rather than by the initiator/responder role;
  included to show the constant-factor (not asymptotic) effect of the
  tie-breaking rule.
* :class:`EpidemicBroadcast` — a one-way infection protocol used to measure
  the broadcast time of an interaction graph; the recent graph-general
  bounds for population leader election are expressed in terms of this
  quantity ("O(Broadcast time · log n)" in [2]), so the benchmark reports it
  alongside.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import numpy as np

from repro.population.scheduler import PopulationProtocol

#: State constants shared by the election protocols.
LEADER = "L"
FOLLOWER = "F"

#: State constants for the epidemic protocol.
INFECTED = "I"
SUSCEPTIBLE = "S"


class PairwiseElimination(PopulationProtocol):
    """Two-state leader election: when two leaders meet, the initiator yields."""

    name = "pp-pairwise-elimination"

    @property
    def initial_state(self) -> Hashable:
        return LEADER

    def interact(
        self,
        initiator_state: Hashable,
        responder_state: Hashable,
        rng: np.random.Generator,
    ) -> Tuple[Hashable, Hashable]:
        if initiator_state == LEADER and responder_state == LEADER:
            return FOLLOWER, LEADER
        return initiator_state, responder_state

    def is_leader(self, state: Hashable) -> bool:
        return state == LEADER


class CoinedElimination(PopulationProtocol):
    """Two-state leader election where a fair coin picks the survivor."""

    name = "pp-coined-elimination"

    @property
    def initial_state(self) -> Hashable:
        return LEADER

    def interact(
        self,
        initiator_state: Hashable,
        responder_state: Hashable,
        rng: np.random.Generator,
    ) -> Tuple[Hashable, Hashable]:
        if initiator_state == LEADER and responder_state == LEADER:
            if rng.random() < 0.5:
                return LEADER, FOLLOWER
            return FOLLOWER, LEADER
        return initiator_state, responder_state

    def is_leader(self, state: Hashable) -> bool:
        return state == LEADER


class EpidemicBroadcast(PopulationProtocol):
    """One-way infection used to measure broadcast (epidemic) time.

    Agent 0's role is played by treating the *leader* predicate as "has been
    infected"; the scheduler cannot single out an agent, so instead every
    interaction where exactly one endpoint is infected infects the other.
    The protocol is seeded by the scheduler convention that the initial state
    is ``SUSCEPTIBLE``; tests construct runs by patching a single infected
    agent through a custom initial state (see the benchmark for usage).
    """

    name = "pp-epidemic-broadcast"

    @property
    def initial_state(self) -> Hashable:
        return SUSCEPTIBLE

    def interact(
        self,
        initiator_state: Hashable,
        responder_state: Hashable,
        rng: np.random.Generator,
    ) -> Tuple[Hashable, Hashable]:
        if INFECTED in (initiator_state, responder_state):
            return INFECTED, INFECTED
        return initiator_state, responder_state

    def is_leader(self, state: Hashable) -> bool:
        return state == INFECTED
