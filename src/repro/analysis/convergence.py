"""Convergence detection and summary statistics for leader-election runs.

Definition 1 (eventual leader election) asks for a round ``T`` from which a
single, fixed node is the only one in a leader state.  Nodes cannot detect
this themselves (the paper's protocols have no termination detection); the
*harness* detects it retrospectively from traces or leader-count histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.batch.trace import BatchTrace
from repro.beeping.simulator import SimulationResult
from repro.beeping.trace import ExecutionTrace
from repro.errors import ConvergenceError


@dataclass(frozen=True)
class ConvergenceSummary:
    """Summary of one execution's convergence behaviour.

    Attributes
    ----------
    converged:
        Whether a stable single-leader configuration was reached.
    convergence_round:
        First round from which exactly one leader remains (``None`` if the
        execution did not converge within its budget).
    winner:
        The surviving leader, when known from a trace.
    rounds_executed:
        Total number of simulated rounds.
    initial_leader_count, final_leader_count:
        Leader counts at the start and end of the execution.
    """

    converged: bool
    convergence_round: Optional[int]
    winner: Optional[int]
    rounds_executed: int
    initial_leader_count: int
    final_leader_count: int


def summarize_trace(trace: ExecutionTrace) -> ConvergenceSummary:
    """Build a :class:`ConvergenceSummary` from a full execution trace."""
    convergence_round = trace.convergence_round()
    winner: Optional[int] = None
    if convergence_round is not None:
        leaders = trace.leaders(trace.num_rounds)
        winner = leaders[0] if len(leaders) == 1 else None
    return ConvergenceSummary(
        converged=convergence_round is not None,
        convergence_round=convergence_round,
        winner=winner,
        rounds_executed=trace.num_rounds,
        initial_leader_count=trace.leader_count(0),
        final_leader_count=trace.leader_count(trace.num_rounds),
    )


def summarize_batch(trace: BatchTrace) -> Tuple[ConvergenceSummary, ...]:
    """One :class:`ConvergenceSummary` per replica of a batch trace.

    The batch entry point of :func:`summarize_trace`: the convergence
    rounds of all replicas come from one vectorised pass over the shared
    ``(T + 1, R)`` leader-count array — entry ``r`` equals
    ``summarize_trace(trace.replica(r))``.
    """
    counts = trace.leader_counts()
    rounds = trace.rounds_executed
    total_rows, num_replicas = counts.shape
    replica_index = np.arange(num_replicas)
    row_index = np.arange(total_rows)[:, None]
    valid = row_index <= rounds[None, :]
    final_counts = counts[rounds, replica_index]
    converged = final_counts == 1
    # Last live row where the configuration was NOT single-leader; the
    # convergence round is the row after it (0 if every live row is single).
    not_single = (counts != 1) & valid
    last_not_single = np.where(not_single, row_index, -1).max(axis=0)
    convergence = last_not_single + 1

    final_leaders = trace.leader_history()[rounds, replica_index]
    summaries = []
    for replica in range(num_replicas):
        winner: Optional[int] = None
        if converged[replica]:
            elected = np.flatnonzero(final_leaders[replica])
            winner = int(elected[0]) if len(elected) == 1 else None
        summaries.append(
            ConvergenceSummary(
                converged=bool(converged[replica]),
                convergence_round=(
                    int(convergence[replica]) if converged[replica] else None
                ),
                winner=winner,
                rounds_executed=int(rounds[replica]),
                initial_leader_count=int(counts[0, replica]),
                final_leader_count=int(final_counts[replica]),
            )
        )
    return tuple(summaries)


def summarize_result(result: SimulationResult) -> ConvergenceSummary:
    """Build a :class:`ConvergenceSummary` from a :class:`SimulationResult`."""
    if result.trace is not None:
        return summarize_trace(result.trace)
    counts = result.leader_counts
    return ConvergenceSummary(
        converged=result.converged,
        convergence_round=result.convergence_round,
        winner=None,
        rounds_executed=result.rounds_executed,
        initial_leader_count=counts[0] if counts else -1,
        final_leader_count=result.final_leader_count,
    )


def convergence_round_from_counts(leader_counts: Sequence[int]) -> Optional[int]:
    """First index from which the count is 1 and stays 1 until the end."""
    if not leader_counts or leader_counts[-1] != 1:
        return None
    counts = np.asarray(leader_counts)
    not_single = np.flatnonzero(counts != 1)
    if len(not_single) == 0:
        return 0
    return int(not_single[-1]) + 1


def require_convergence(result: SimulationResult) -> int:
    """Return the convergence round, raising if the run did not converge.

    Raises
    ------
    ConvergenceError
        If the execution ended with more than one leader, with a message that
        includes the budget that was exhausted — typically a signal that the
        experiment's ``max_rounds`` needs to be raised.
    """
    if not result.converged or result.convergence_round is None:
        raise ConvergenceError(
            f"execution of {result.protocol_name!r} on {result.topology_name!r} did "
            f"not converge within {result.rounds_executed} rounds "
            f"({result.final_leader_count} leaders remain)"
        )
    return result.convergence_round


def elimination_times(trace: ExecutionTrace) -> Tuple[Tuple[int, int], ...]:
    """For each node that was ever eliminated: ``(node, round of elimination)``.

    The elimination round of a node is the first round in which it is no
    longer in a leader state, having been in one in the previous round.
    Nodes that start as non-leaders or survive as the final leader are not
    listed.
    """
    events = []
    previous = trace.leader_mask(0)
    for round_index in range(1, trace.num_rounds + 1):
        current = trace.leader_mask(round_index)
        eliminated = previous & ~current
        for node in np.flatnonzero(eliminated):
            events.append((int(node), round_index))
        previous = current
    return tuple(events)


def half_life_round(trace: ExecutionTrace) -> Optional[int]:
    """First round in which at most half of the initial leaders remain.

    A useful summary of the elimination dynamics that is less noisy than the
    full convergence time on graphs with many initial leaders.
    """
    initial = trace.leader_count(0)
    if initial == 0:
        return None
    target = initial / 2.0
    for round_index in trace.rounds():
        if trace.leader_count(round_index) <= target:
            return round_index
    return None
