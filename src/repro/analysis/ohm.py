"""Ohm's law (Corollary 8): flow along a path = difference of endpoint beep counts.

Corollary 8 is the linchpin of the paper's correctness argument: combined
with the trivial bound ``|ν_t(ω)| ≤ |ω|`` it yields Lemma 11
(``|N^beep_t(u) − N^beep_t(v)| ≤ dis(u, v)``), and through Claim 10 it implies
that a leader with a maximal beep count can never be eliminated (Lemma 9).

This module verifies the law exactly on recorded traces, both for explicit
paths and for randomly sampled paths of a topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.beep_counts import beep_count_matrix, beep_count_matrix_batch
from repro.analysis.flow import flow_history_batch, path_flow, validate_path
from repro.batch.trace import BatchTrace
from repro.beeping.trace import ExecutionTrace
from repro.core.rng import RngLike, as_rng
from repro.errors import InvariantViolation
from repro.graphs.topology import Topology


@dataclass(frozen=True)
class OhmViolation:
    """A single violation of Corollary 8 found on a trace (should never happen)."""

    round_index: int
    path: Tuple[int, ...]
    flow: int
    beep_difference: int

    def message(self) -> str:
        """A human-readable description of the violation."""
        return (
            f"Ohm's law violated in round {self.round_index} on path {self.path}: "
            f"flow = {self.flow} but N^beep difference = {self.beep_difference}"
        )


def check_ohms_law(
    trace: ExecutionTrace,
    path: Sequence[int],
    topology: Optional[Topology] = None,
    raise_on_violation: bool = True,
) -> List[OhmViolation]:
    """Verify ``ν_t(ω) = N^beep_t(v_1) − N^beep_t(v_k)`` for every recorded round.

    Parameters
    ----------
    trace:
        A recorded execution started from a configuration satisfying Eq. (2).
    path:
        Vertex sequence of the path ``ω``.
    topology:
        When given, the path is first validated against the graph.
    raise_on_violation:
        If ``True`` (default), raise :class:`InvariantViolation` at the first
        violation; otherwise collect and return all of them.
    """
    if topology is not None:
        validate_path(topology, path)
    violations: List[OhmViolation] = []
    if len(path) < 2:
        return violations
    counts = beep_count_matrix(trace)
    start, end = path[0], path[-1]
    for round_index in trace.rounds():
        flow = path_flow(trace, path, round_index)
        difference = int(counts[round_index, start] - counts[round_index, end])
        if flow != difference:
            violation = OhmViolation(
                round_index=round_index,
                path=tuple(path),
                flow=flow,
                beep_difference=difference,
            )
            if raise_on_violation:
                raise InvariantViolation(violation.message())
            violations.append(violation)
    return violations


def check_ohms_law_batch(
    trace: BatchTrace,
    path: Sequence[int],
    topology: Optional[Topology] = None,
    raise_on_violation: bool = True,
) -> Tuple[List[OhmViolation], ...]:
    """Verify Corollary 8 on every replica of a batch at once.

    The batch entry point of :func:`check_ohms_law`: flows come from
    :func:`~repro.analysis.flow.flow_history_batch` and beep counts from
    :func:`~repro.analysis.beep_counts.beep_count_matrix_batch`, both one
    vectorised pass over the shared ``(T + 1, R, n)`` state array.  Only
    rounds a replica actually executed are checked (rows past retirement
    repeat the frozen configuration while the cumulative counts keep
    growing, so the law is not meaningful there).  Per replica, the
    returned violation list is exactly what
    ``check_ohms_law(trace.replica(r), path, raise_on_violation=False)``
    produces.
    """
    if topology is not None:
        validate_path(topology, path)
    violations: Tuple[List[OhmViolation], ...] = tuple(
        [] for _ in range(trace.num_replicas)
    )
    if len(path) < 2:
        return violations
    flows = flow_history_batch(trace, path)
    counts = beep_count_matrix_batch(trace)
    start, end = path[0], path[-1]
    differences = counts[:, :, start] - counts[:, :, end]
    mismatch = (flows != differences) & trace.valid_mask()
    for t, r in zip(*np.nonzero(mismatch)):
        violation = OhmViolation(
            round_index=int(t),
            path=tuple(path),
            flow=int(flows[t, r]),
            beep_difference=int(differences[t, r]),
        )
        if raise_on_violation:
            raise InvariantViolation(
                f"replica {int(r)}: {violation.message()}"
            )
        violations[int(r)].append(violation)
    return violations


def sample_random_path(
    topology: Topology,
    length: int,
    rng: RngLike = None,
    start: Optional[int] = None,
) -> Tuple[int, ...]:
    """Sample a random walk of ``length`` edges in the graph.

    Definition 4 allows repeated vertices and edges, so a random walk is a
    perfectly valid path for the flow machinery — and a convenient way to
    stress-test Ohm's law on paths that are not shortest paths.
    """
    generator = as_rng(rng)
    if start is None:
        start = int(generator.integers(0, topology.n))
    walk = [start]
    current = start
    for _ in range(length):
        neighbours = topology.neighbors(current)
        current = int(neighbours[generator.integers(0, len(neighbours))])
        walk.append(current)
    return tuple(walk)


def check_ohms_law_on_random_paths(
    trace: ExecutionTrace,
    topology: Topology,
    num_paths: int = 10,
    max_length: int = 20,
    rng: RngLike = None,
) -> int:
    """Verify Ohm's law on several random walks; returns the number of paths checked.

    Raises
    ------
    InvariantViolation
        If any sampled path violates the law in any round.
    """
    generator = as_rng(rng)
    checked = 0
    for _ in range(num_paths):
        length = int(generator.integers(1, max_length + 1))
        path = sample_random_path(topology, length, rng=generator)
        check_ohms_law(trace, path, topology=topology, raise_on_violation=True)
        checked += 1
    return checked


def check_distance_bound(
    trace: ExecutionTrace,
    topology: Topology,
    round_index: Optional[int] = None,
    node_pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> None:
    """Verify Lemma 11: ``|N^beep_t(u) − N^beep_t(v)| ≤ dis(u, v)``.

    Parameters
    ----------
    node_pairs:
        Pairs to check; defaults to all pairs (quadratic — fine for the graph
        sizes used in tests).

    Raises
    ------
    InvariantViolation
        If the bound fails for any checked pair.
    """
    counts = trace.beep_counts(round_index)
    if node_pairs is None:
        node_pairs = [
            (u, v) for u in topology.nodes() for v in topology.nodes() if u < v
        ]
    for u, v in node_pairs:
        distance = topology.distance(u, v)
        difference = int(abs(counts[u] - counts[v]))
        if difference > distance:
            raise InvariantViolation(
                f"Lemma 11 violated for nodes ({u}, {v}) at round "
                f"{round_index if round_index is not None else trace.num_rounds}: "
                f"|N^beep difference| = {difference} > dis = {distance}"
            )
