"""Cumulative beep counts ``N^beep_t(u)`` and related queries.

The quantity ``N^beep_t(u)`` — the number of rounds ``s ≤ t`` in which node
``u`` beeped — is the bridge between the protocol's local behaviour and the
global flow analysis: Corollary 8 states that the flow along any path equals
the difference of the endpoint beep counts, and Lemma 11 bounds that
difference by the graph distance.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.batch.trace import BatchTrace
from repro.beeping.trace import ExecutionTrace
from repro.graphs.topology import Topology


def beep_count_matrix(trace: ExecutionTrace) -> np.ndarray:
    """``N^beep`` for every node and round: array of shape ``(rounds + 1, n)``.

    ``matrix[t, u]`` equals ``N^beep_t(u)``, the number of rounds ``s ≤ t``
    in which ``u`` beeped.
    """
    rows = []
    counts = np.zeros(trace.n, dtype=np.int64)
    for round_index in trace.rounds():
        counts = counts + trace.beeping_mask(round_index)
        rows.append(counts.copy())
    return np.vstack(rows)


def beep_count_matrix_batch(trace: BatchTrace) -> np.ndarray:
    """``N^beep`` for every replica: array of shape ``(T + 1, R, n)``.

    The batch entry point of :func:`beep_count_matrix`: one cumulative sum
    over the shared beep history.  Rows past a replica's retirement
    accumulate its frozen final configuration; slice with
    :meth:`~repro.batch.trace.BatchTrace.valid_mask` (or compare only rows
    ``t <= rounds_executed[r]``) when exact per-replica prefixes matter.
    """
    return np.cumsum(
        trace.beeping_history().astype(np.int64), axis=0, dtype=np.int64
    )


def beep_counts_at(trace: ExecutionTrace, round_index: int) -> np.ndarray:
    """``N^beep_t`` for all nodes at a single round ``t``."""
    return trace.beep_counts(round_index)


def max_beep_count_nodes(
    trace: ExecutionTrace, round_index: Optional[int] = None
) -> Tuple[int, ...]:
    """The argmax set of ``N^beep_t`` — the nodes with the most beeps so far.

    Lemma 9's proof shows that this set always intersects the current leader
    set; :mod:`repro.analysis.invariants` checks that property on traces.
    """
    counts = trace.beep_counts(round_index)
    maximum = counts.max()
    return tuple(int(node) for node in np.flatnonzero(counts == maximum))


def beep_count_spread(
    trace: ExecutionTrace, round_index: Optional[int] = None
) -> int:
    """``max_u N^beep_t(u) − min_u N^beep_t(u)`` at the given round."""
    counts = trace.beep_counts(round_index)
    return int(counts.max() - counts.min())


def pairwise_beep_difference_bounds(
    trace: ExecutionTrace,
    topology: Topology,
    round_index: Optional[int] = None,
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """For every node pair: ``(|N^beep_t(u) − N^beep_t(v)|, dis(u, v))``.

    Lemma 11 states the first component never exceeds the second.  Intended
    for small graphs (quadratic in ``n``); the invariant checker uses sampled
    pairs on larger graphs.
    """
    counts = trace.beep_counts(round_index)
    results: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for u in topology.nodes():
        distances = topology.distances_from(u)
        for v in topology.nodes():
            if v <= u:
                continue
            difference = int(abs(counts[u] - counts[v]))
            results[(u, v)] = (difference, int(distances[v]))
    return results


def leader_beep_counts(
    trace: ExecutionTrace, round_index: Optional[int] = None
) -> Dict[int, int]:
    """``N^beep_t`` restricted to the nodes that are leaders in round ``t``."""
    if round_index is None:
        round_index = trace.num_rounds
    counts = trace.beep_counts(round_index)
    return {
        int(node): int(counts[node]) for node in trace.leaders(round_index)
    }
